"""Timed cluster events: the vocabulary of online churn.

An event is a frozen description of one environment change at one
simulation time — a node crashing or rejoining, a new node being
provisioned, a link degrading or being repaired, a partition between two
node groups. Events know how to *apply* themselves to a running
:class:`~repro.sim.simulator.Simulation` (via its online primitives) and
whether the change warrants a replanning.

Schedules come in two flavors:

* scripted — hand-written event lists, for reproducing a precise scenario
  (the fig12 "kill a planned node mid-run" benchmark);
* generated — :func:`random_churn` draws failures/recoveries and link
  degradations from exponential processes, for long stochastic soak runs.
  Generators are pure functions of their seed, so a run is reproduced
  exactly by its top-level seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.gpus import GPUSpec
from repro.cluster.node import COORDINATOR
from repro.core.errors import ClusterError
from repro.core.units import GBIT


@dataclass(frozen=True)
class ClusterEvent:
    """Base class: one environment change at ``time`` (seconds)."""

    time: float

    #: Whether the controller should replan after applying this event.
    triggers_replan = True
    #: Whether the event takes capacity away (failures, degradations,
    #: partitions). Recovery-type events replan too but do not count as
    #: disruptions in the :class:`~repro.sim.metrics.DisruptionReport`.
    is_disruptive = True

    def apply(self, sim) -> str:
        """Apply the change to a running simulation; returns a log line."""
        raise NotImplementedError


@dataclass(frozen=True)
class NodeFailure(ClusterEvent):
    """A compute node crashes: KV lost, in-flight work fails."""

    node_id: str = ""

    def apply(self, sim) -> str:
        requeued = sim.fail_node(self.node_id)
        return (
            f"node {self.node_id} failed "
            f"({len(requeued)} in-flight requests requeued)"
        )


@dataclass(frozen=True)
class NodeRecovery(ClusterEvent):
    """A failed node rejoins, cold (no KV, no queued work)."""

    node_id: str = ""
    is_disruptive = False

    def apply(self, sim) -> str:
        sim.restore_node(self.node_id)
        return f"node {self.node_id} recovered"


@dataclass(frozen=True)
class NodeDrain(ClusterEvent):
    """Gracefully remove a node: finish in-flight work, lose nothing.

    The scheduler stops routing new pipelines through the node at once,
    but attempts already flowing through it run to completion — zero
    tokens are lost, unlike :class:`NodeFailure`'s crash path. The node
    counts as a disruption (capacity leaves), and a later
    :class:`NodeRecovery` brings it back — with layer residency enabled,
    *instantly*, since a drained node keeps its weights (warm spare).
    """

    node_id: str = ""

    def apply(self, sim) -> str:
        sim.drain_node(self.node_id)
        return f"node {self.node_id} draining"


@dataclass(frozen=True)
class NodeJoin(ClusterEvent):
    """A brand-new node is provisioned into the cluster.

    The node is added to the topology with symmetric links to ``peers``
    (default: every existing node) and to the coordinator; it carries no
    layers until the next replanning assigns it some. Joins change graph
    *structure*, so the controller rebuilds its incremental flow evaluator.

    Attributes:
        node_id: Id of the new node.
        gpu: GPU model installed.
        num_gpus: GPUs in the node.
        region: Region label.
        bandwidth: Bandwidth of the new links, bytes/second.
        latency: One-way latency of the new links, seconds.
        peers: Node ids to connect to; ``None`` means all current nodes.
    """

    node_id: str = ""
    gpu: GPUSpec | None = None
    num_gpus: int = 1
    region: str = "default"
    bandwidth: float = 10 * GBIT
    latency: float = 0.001
    peers: tuple[str, ...] | None = None

    is_disruptive = False

    def apply(self, sim) -> str:
        if self.gpu is None:
            raise ValueError(f"NodeJoin({self.node_id!r}) needs a gpu spec")
        cluster = sim.cluster
        peers = (
            list(self.peers) if self.peers is not None else cluster.node_ids
        )
        cluster.add_node(
            self.node_id, self.gpu, num_gpus=self.num_gpus, region=self.region
        )
        for peer in peers:
            cluster.connect(self.node_id, peer, self.bandwidth, self.latency)
        cluster.connect(
            COORDINATOR, self.node_id, self.bandwidth, self.latency
        )
        return f"node {self.node_id} joined ({len(peers)} links)"


@dataclass(frozen=True)
class LinkDegradation(ClusterEvent):
    """A link's bandwidth drops to ``factor`` of its original value."""

    src: str = ""
    dst: str = ""
    factor: float = 0.1
    bidirectional: bool = True

    def apply(self, sim) -> str:
        sim.degrade_link(self.src, self.dst, self.factor, self.bidirectional)
        return (
            f"link {self.src}<->{self.dst} degraded to "
            f"{self.factor * 100:.0f}% bandwidth"
        )


@dataclass(frozen=True)
class LinkRecovery(ClusterEvent):
    """A degraded link is repaired to its original bandwidth."""

    src: str = ""
    dst: str = ""
    bidirectional: bool = True
    is_disruptive = False

    def apply(self, sim) -> str:
        sim.restore_link(self.src, self.dst, self.bidirectional)
        return f"link {self.src}<->{self.dst} restored"


@dataclass(frozen=True)
class NetworkPartition(ClusterEvent):
    """Connectivity between two node groups collapses.

    Modeled as severe degradation (``factor`` of original bandwidth) of
    every link crossing the cut, in both directions — traffic *can* still
    crawl through, as over a flapping WAN, but replanning will route
    around it. Heal with a matching :class:`PartitionHeal`.
    """

    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()
    factor: float = 0.02

    def _cut_links(self, sim):
        links = sim.cluster.links
        for a in self.group_a:
            for b in self.group_b:
                if (a, b) in links:
                    yield a, b
                if (b, a) in links:
                    yield b, a

    def apply(self, sim) -> str:
        count = 0
        for a, b in self._cut_links(sim):
            sim.degrade_link(a, b, self.factor, bidirectional=False)
            count += 1
        return (
            f"partition {self.group_a}|{self.group_b}: {count} links at "
            f"{self.factor * 100:.0f}% bandwidth"
        )


@dataclass(frozen=True)
class PartitionHeal(NetworkPartition):
    """Heal a partition created by a matching :class:`NetworkPartition`."""

    is_disruptive = False

    def apply(self, sim) -> str:
        count = 0
        for a, b in self._cut_links(sim):
            sim.restore_link(a, b, bidirectional=False)
            count += 1
        return f"partition {self.group_a}|{self.group_b} healed ({count} links)"


def scripted_schedule(*events: ClusterEvent) -> list[ClusterEvent]:
    """Sort a hand-written scenario into firing order."""
    return sorted(events, key=lambda e: e.time)


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of the seeded random churn generator.

    Attributes:
        duration: Horizon over which to draw events, in seconds.
        mean_time_to_failure: Mean seconds between node failures across
            the whole cluster (per-cluster MTBF, exponential).
        mean_time_to_recovery: Mean seconds a failed node stays down
            (exponential).
        link_mean_time_to_degrade: Mean seconds between link-degradation
            events; 0 disables link churn.
        link_degradation_factor: Bandwidth factor applied when a link
            degrades.
        link_mean_time_to_repair: Mean seconds a degraded link stays slow.
        max_concurrent_failures: Never take more than this many nodes down
            at once (a churn run should stress recovery, not guarantee a
            dead cluster).
        start: Earliest event time — leave room for a clean pre-churn
            baseline window.
    """

    duration: float
    mean_time_to_failure: float
    mean_time_to_recovery: float
    link_mean_time_to_degrade: float = 0.0
    link_degradation_factor: float = 0.1
    link_mean_time_to_repair: float = 20.0
    max_concurrent_failures: int = 1
    start: float = 0.0


def random_churn(
    node_ids: Sequence[str],
    config: ChurnConfig,
    seed: int = 0,
    link_keys: Sequence[tuple[str, str]] = (),
    rng: random.Random | None = None,
) -> list[ClusterEvent]:
    """Draw a reproducible churn schedule from exponential processes.

    Node failures arrive at the cluster-wide MTBF rate, strike a uniformly
    random up node, and heal after an exponential downtime; link
    degradations (if enabled and ``link_keys`` given) follow the same
    pattern on uniformly random links. The same ``(config, seed)`` always
    yields the same schedule; an explicit ``rng`` lets callers thread one
    generator through a whole scenario. Global :mod:`random` state is
    never consulted.
    """
    if not node_ids:
        raise ValueError("random_churn needs at least one node id")
    if rng is None:
        rng = random.Random(seed)
    events: list[ClusterEvent] = []

    down_until: dict[str, float] = {}
    t = config.start
    while True:
        t += rng.expovariate(1.0 / config.mean_time_to_failure)
        if t >= config.start + config.duration:
            break
        up = [nid for nid in node_ids if down_until.get(nid, 0.0) <= t]
        if len(node_ids) - len(up) >= config.max_concurrent_failures or not up:
            continue
        victim = rng.choice(up)
        recover_at = t + rng.expovariate(1.0 / config.mean_time_to_recovery)
        down_until[victim] = recover_at
        events.append(NodeFailure(t, victim))
        events.append(NodeRecovery(recover_at, victim))

    if config.link_mean_time_to_degrade > 0 and link_keys:
        slow_until: dict[tuple[str, str], float] = {}
        t = config.start
        while True:
            t += rng.expovariate(1.0 / config.link_mean_time_to_degrade)
            if t >= config.start + config.duration:
                break
            healthy = [k for k in link_keys if slow_until.get(k, 0.0) <= t]
            if not healthy:
                continue
            src, dst = healthy[rng.randrange(len(healthy))]
            repair_at = t + rng.expovariate(
                1.0 / config.link_mean_time_to_repair
            )
            slow_until[(src, dst)] = repair_at
            events.append(
                LinkDegradation(t, src, dst, config.link_degradation_factor)
            )
            events.append(LinkRecovery(repair_at, src, dst))

    return sorted(events, key=lambda e: e.time)


def validate_schedule(events: Sequence[ClusterEvent], cluster) -> None:
    """Reject a malformed event schedule before the run starts.

    A bad schedule — a typo'd node id, a recovery for a node that never
    fails, partitions that overlap — otherwise surfaces mid-run as a
    confusing simulation error (or worse, silently does nothing). This
    checks the whole schedule up front against the starting cluster and
    raises :class:`~repro.core.errors.ClusterError` naming the offending
    event:

    * no event may carry a negative time;
    * every node event must name a known node (a ``NodeJoin`` makes its
      node known from that point on, and must not collide with one);
    * every link event must name an existing link;
    * a ``NodeRecovery`` must be preceded by something that takes its
      node out of service (``NodeFailure``, a gray node fault, or the
      node starting out down);
    * two ``NetworkPartition``\\ s may not overlap in time on any shared
      node (heal the first before cutting the second).
    """
    from repro.online.faults import FlakyLink, FlakyLinkEnd, GRAY_NODE_FAULTS
    from repro.online.faults import StragglerEnd, StragglerStart

    known_nodes = set(cluster.node_ids)
    failed: set[str] = set(cluster.down_node_ids)
    partitions: list[tuple[NetworkPartition, frozenset[str]]] = []

    def check_node(event: ClusterEvent, node_id: str) -> None:
        if node_id not in known_nodes:
            raise ClusterError(
                f"{type(event).__name__} at t={event.time:g} names unknown "
                f"node {node_id!r}"
            )

    def check_link(event: ClusterEvent, src: str, dst: str) -> None:
        if not cluster.has_link(src, dst):
            raise ClusterError(
                f"{type(event).__name__} at t={event.time:g} names unknown "
                f"link {src!r}->{dst!r}"
            )

    for event in sorted(events, key=lambda e: e.time):
        if event.time < 0:
            raise ClusterError(
                f"{type(event).__name__} scheduled at negative time "
                f"{event.time:g}"
            )
        if isinstance(event, NodeFailure):
            check_node(event, event.node_id)
            failed.add(event.node_id)
        elif isinstance(event, NodeDrain):
            check_node(event, event.node_id)
            failed.add(event.node_id)  # out of service; recovery is legal
        elif isinstance(event, NodeRecovery):
            check_node(event, event.node_id)
            if event.node_id not in failed:
                raise ClusterError(
                    f"NodeRecovery at t={event.time:g} for node "
                    f"{event.node_id!r}, which never failed before it"
                )
            failed.discard(event.node_id)
        elif isinstance(event, NodeJoin):
            if event.node_id in known_nodes:
                raise ClusterError(
                    f"NodeJoin at t={event.time:g} collides with existing "
                    f"node {event.node_id!r}"
                )
            known_nodes.add(event.node_id)
        elif isinstance(event, (StragglerStart, StragglerEnd)):
            check_node(event, event.node_id)
        elif isinstance(event, GRAY_NODE_FAULTS):
            check_node(event, event.node_id)
            failed.add(event.node_id)
        elif isinstance(event, (LinkDegradation, LinkRecovery)):
            check_link(event, event.src, event.dst)
        elif isinstance(event, (FlakyLink, FlakyLinkEnd)):
            check_link(event, event.src, event.dst)
        elif isinstance(event, PartitionHeal):
            groups = (tuple(event.group_a), tuple(event.group_b))
            for index, (partition, _) in enumerate(partitions):
                if (
                    tuple(partition.group_a),
                    tuple(partition.group_b),
                ) == groups:
                    del partitions[index]
                    break
        elif isinstance(event, NetworkPartition):
            for node_id in (*event.group_a, *event.group_b):
                check_node(event, node_id)
            members = frozenset(event.group_a) | frozenset(event.group_b)
            for partition, other in partitions:
                shared = members & other
                if shared:
                    raise ClusterError(
                        f"NetworkPartition at t={event.time:g} overlaps an "
                        f"unhealed partition from t={partition.time:g} on "
                        f"node(s) {sorted(shared)}"
                    )
            partitions.append((event, members))
