"""Backlog-driven elasticity: loan warm spares in, drain idle nodes out.

The :class:`Autoscaler` is a deterministic policy object the
:class:`~repro.online.controller.OnlineController` attaches to the
simulation's event loop. On a fixed tick it watches the outstanding
request count (pending queue + in-flight work) and reacts through the
controller's existing machinery:

* **Scale up**: sustained backlog pops the next node from the spare pool,
  restores it (:meth:`Simulation.restore_node`) and replans. With layer
  residency on, the spare only becomes schedulable after pulling its
  assigned layers through the real network — a *warm* spare (layers
  pre-staged) starts serving immediately, a cold one pays the transfer.
* **Scale down**: sustained idleness gracefully drains the most recently
  loaned node (:meth:`Simulation.drain_node` — zero lost tokens) and
  returns it to the pool. Its resident layers are retained, so the next
  scale-up of that node is warm.

Everything is driven by sim time and counters — no RNG, no wall clock —
so seeded elastic scenarios fingerprint reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscalerConfig:
    """Thresholds and pacing of one autoscaler instance.

    Attributes:
        interval: Seconds between backlog checks (sim time).
        backlog_high: Outstanding-request count (pending + in flight) at
            or above which a tick counts toward scaling up.
        backlog_low: Outstanding-request count at or below which a tick
            may count toward scaling down.
        high_ticks: Consecutive high-backlog ticks required to scale up.
        idle_ticks: Consecutive idle ticks required to scale down.
        idle_in_flight: A tick is *idle* only when total in-flight work
            (active + queued + backoff) is at or below this.
        cooldown: Minimum sim-seconds between two scaling actions.
        min_serving: Never drain below this many serving placement nodes.
        start_after: First tick time (lets the system warm up first).
    """

    interval: float = 1.0
    backlog_high: int = 8
    backlog_low: int = 0
    high_ticks: int = 3
    idle_ticks: int = 8
    idle_in_flight: int = 1
    cooldown: float = 5.0
    min_serving: int = 2
    start_after: float = 0.0


class Autoscaler:
    """Deterministic backlog/goodput-driven node pool manager.

    Args:
        config: Thresholds and pacing.
        spares: Ordered spare node ids. They must exist in the cluster and
            start *down* (``cluster.set_node_available(nid, False)``);
            scale-up restores them in order, scale-down drains the most
            recently loaned one back into the pool (LIFO, so a node's
            still-resident layers get reused first).
    """

    def __init__(self, config: AutoscalerConfig, spares=()) -> None:
        self.config = config
        #: Spares available to loan, in loan order.
        self.pool: list[str] = list(spares)
        #: Nodes currently loaned out (loan order).
        self.loaned: list[str] = []
        #: ``(sim_time, action, node_id)`` rows: ``"add"`` (restored from
        #: the pool), ``"drain"`` (drain started), ``"returned"`` (drain
        #: finished, node back in the pool).
        self.actions: list[tuple[float, str, str]] = []
        self._controller = None
        self._high_streak = 0
        self._idle_streak = 0
        self._last_action = float("-inf")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim, controller) -> None:
        """Hook the periodic tick into a simulation's event loop.

        Called by :meth:`OnlineController.start`; ticks stop by themselves
        at the horizon.
        """
        self._controller = controller
        first = max(self.config.start_after, self.config.interval)
        if first <= sim.max_time:
            sim.schedule_event(first, self._tick)

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def _tick(self, sim) -> None:
        # The scheduler admits arrivals straight into executor batches, so
        # load shows up as in-flight work; the pending queue only grows
        # when no route exists at all. Watch the sum of both.
        backlog = sim.pending_requests + sim.in_flight_requests
        if backlog >= self.config.backlog_high:
            self._high_streak += 1
            self._idle_streak = 0
        elif backlog <= max(self.config.backlog_low, self.config.idle_in_flight):
            self._idle_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._idle_streak = 0

        cooled = sim.now - self._last_action >= self.config.cooldown
        if (
            cooled
            and self._high_streak >= self.config.high_ticks
            and self.pool
        ):
            self._scale_up(sim)
        elif (
            cooled
            and self._idle_streak >= self.config.idle_ticks
            and self.loaned
            and self._serving_count(sim) > self.config.min_serving
        ):
            self._scale_down(sim)

        next_tick = sim.now + self.config.interval
        if next_tick <= sim.max_time:
            sim.schedule_event(next_tick, self._tick)

    def _serving_count(self, sim) -> int:
        """Placement nodes actually able to serve right now."""
        out = sim.down_nodes | sim.draining_nodes | sim.silent_down_nodes
        return sum(
            1 for nid in sim.placement.used_nodes if nid not in out
        )

    def _scale_up(self, sim) -> None:
        spare = self.pool.pop(0)
        if spare not in sim.down_nodes:
            # The pool entry went stale (e.g. a scripted event already
            # restored it); treat the loan as done and move on.
            self.loaned.append(spare)
            return
        sim.restore_node(spare)
        self.loaned.append(spare)
        self.actions.append((sim.now, "add", spare))
        self._last_action = sim.now
        self._high_streak = 0
        # Replanning folds the new node in; with residency on, the swap
        # leaves it warming until its layers land.
        self._controller.react(sim)

    def _scale_down(self, sim) -> None:
        node = self.loaned.pop()

        def returned(s, nid=node):
            self.pool.append(nid)
            self.actions.append((s.now, "returned", nid))

        sim.drain_node(node, on_complete=returned)
        self.actions.append((sim.now, "drain", node))
        self._last_action = sim.now
        self._idle_streak = 0
        # Replan around the draining node so new work routes elsewhere.
        self._controller.react(sim)
