"""Online dynamics: cluster churn, fault injection, and live replanning.

The paper plans a placement once and serves a static cluster; this package
closes the loop for clusters that lose nodes, degrade links, and gain
capacity mid-flight. :mod:`repro.online.events` is the churn vocabulary
(scripted schedules and seeded random generators);
:mod:`repro.online.controller` reacts to each event with the repo's two
incremental machines — a PR-1 :meth:`FlowGraph.reevaluate()
<repro.flow.graph.FlowGraph.reevaluate>` flow rewrite for an immediate
degraded-mode hot-swap, then a PR-2 warm-started incremental LNS
:meth:`replan() <repro.placement.helix_milp.HelixMilpPlanner.replan>` whose
repaired placement is swapped into the scheduler's IWRR selectors.

Quickstart::

    from repro.online import NodeFailure, OnlineController

    controller = OnlineController(model, events=[NodeFailure(10.0, "l4-2")])
    sim = Simulation(cluster, model, placement, scheduler, trace,
                     seed=0, controller=controller)
    metrics = sim.run()
    print(controller.report(sim).summary())
"""

from repro.online.events import (
    ClusterEvent,
    NodeDrain,
    NodeFailure,
    NodeRecovery,
    NodeJoin,
    LinkDegradation,
    LinkRecovery,
    NetworkPartition,
    PartitionHeal,
    ChurnConfig,
    random_churn,
    scripted_schedule,
    validate_schedule,
)
from repro.online.faults import (
    FlakyLink,
    FlakyLinkEnd,
    LinkFault,
    StragglerEnd,
    StragglerStart,
    ZombieNode,
)
from repro.online.autoscale import Autoscaler, AutoscalerConfig
from repro.online.detect import DetectorConfig, FailureDetector
from repro.online.controller import OnlineController, ReplanRecord

__all__ = [
    "ClusterEvent",
    "NodeDrain",
    "NodeFailure",
    "NodeRecovery",
    "NodeJoin",
    "LinkDegradation",
    "LinkRecovery",
    "NetworkPartition",
    "PartitionHeal",
    "ChurnConfig",
    "random_churn",
    "scripted_schedule",
    "validate_schedule",
    "FlakyLink",
    "FlakyLinkEnd",
    "LinkFault",
    "StragglerEnd",
    "StragglerStart",
    "ZombieNode",
    "DetectorConfig",
    "FailureDetector",
    "Autoscaler",
    "AutoscalerConfig",
    "OnlineController",
    "ReplanRecord",
]
