"""Gray-failure vocabulary: stragglers, flaky links, zombie nodes.

Unlike :mod:`repro.online.events` — whose failures are *announced* to the
scheduler the instant they happen — gray faults never announce
themselves. A straggler keeps serving, just slower; a flaky link delivers
most messages, just late or not at all; a zombie accepts work (and keeps
heartbeating) but never finishes a batch. They can only be *detected*
(see :mod:`repro.online.detect`), which is exactly what makes them the
interesting robustness case.

All fault events are :class:`~repro.online.events.ClusterEvent` subclasses
and apply through dedicated ``Simulation`` primitives
(``set_compute_slowdown``, ``set_link_flaky``, ``make_zombie``,
``fail_node(announce=False)``) that are zero-cost when unused: a run with
no gray faults executes the identical hot path, bit for bit, as before
this module existed (the differential suite asserts it).

Randomness (the per-message drop/retransmit draws of a flaky link) comes
from a per-link :class:`random.Random` seeded from the simulation seed
and the link endpoints, never from global state, so a seeded chaos run
reproduces exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.online.events import ClusterEvent


class LinkFault:
    """Runtime lossy-link state attached to one directed channel.

    Data-plane messages are never truly dropped — TCP-style, a "drop"
    costs one ``retransmit_delay`` and the message still arrives, so
    token conservation is trivial — but each message may be hit several
    times in a row (independent draws, geometric retransmit count).
    Control-plane heartbeats *are* truly dropped: a lost heartbeat is
    precisely the signal a failure detector has to cope with.
    """

    __slots__ = (
        "drop_probability", "retransmit_delay", "rng",
        "messages", "drops", "heartbeats_dropped",
    )

    def __init__(
        self,
        drop_probability: float,
        retransmit_delay: float,
        seed: int | str,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1), got {drop_probability}"
            )
        if retransmit_delay < 0:
            raise ValueError(
                f"retransmit delay must be >= 0, got {retransmit_delay}"
            )
        self.drop_probability = drop_probability
        self.retransmit_delay = retransmit_delay
        self.rng = random.Random(seed)
        self.messages = 0
        self.drops = 0
        self.heartbeats_dropped = 0

    def delay(self) -> float:
        """Extra seconds this data message spends being retransmitted."""
        self.messages += 1
        extra = 0.0
        while self.rng.random() < self.drop_probability:
            self.drops += 1
            extra += self.retransmit_delay
        return extra

    def drop_heartbeat(self) -> bool:
        """Whether a heartbeat crossing this link is lost outright."""
        if self.rng.random() < self.drop_probability:
            self.heartbeats_dropped += 1
            return True
        return False


@dataclass(frozen=True)
class StragglerStart(ClusterEvent):
    """A node silently slows down by ``slowdown`` (compute and overhead)."""

    node_id: str = ""
    slowdown: float = 4.0

    triggers_replan = False

    def apply(self, sim) -> str:
        sim.set_compute_slowdown(self.node_id, self.slowdown)
        return f"node {self.node_id} straggling at {self.slowdown:.1f}x"


@dataclass(frozen=True)
class StragglerEnd(ClusterEvent):
    """A straggling node silently returns to full speed."""

    node_id: str = ""

    triggers_replan = False
    is_disruptive = False

    def apply(self, sim) -> str:
        sim.set_compute_slowdown(self.node_id, 1.0)
        return f"node {self.node_id} stopped straggling"


@dataclass(frozen=True)
class FlakyLink(ClusterEvent):
    """A link turns lossy: probabilistic per-message delay/drop."""

    src: str = ""
    dst: str = ""
    drop_probability: float = 0.1
    retransmit_delay: float = 0.1
    bidirectional: bool = True

    triggers_replan = False

    def apply(self, sim) -> str:
        sim.set_link_flaky(
            self.src, self.dst, self.drop_probability,
            self.retransmit_delay, self.bidirectional,
        )
        return (
            f"link {self.src}<->{self.dst} flaky "
            f"(p={self.drop_probability:.2f}, "
            f"retx={self.retransmit_delay * 1000:.0f}ms)"
        )


@dataclass(frozen=True)
class FlakyLinkEnd(ClusterEvent):
    """A flaky link silently heals."""

    src: str = ""
    dst: str = ""
    bidirectional: bool = True

    triggers_replan = False
    is_disruptive = False

    def apply(self, sim) -> str:
        sim.clear_link_flaky(self.src, self.dst, self.bidirectional)
        return f"link {self.src}<->{self.dst} no longer flaky"


@dataclass(frozen=True)
class ZombieNode(ClusterEvent):
    """A node wedges: accepts work and keeps heartbeating, never finishes.

    The canonical gray failure — heartbeat-only detectors never catch it;
    only a progress watchdog (or a TTFT timeout on the stalled requests)
    does. Recover with a normal
    :class:`~repro.online.events.NodeRecovery`.
    """

    node_id: str = ""

    triggers_replan = False

    def apply(self, sim) -> str:
        sim.make_zombie(self.node_id)
        return f"node {self.node_id} went zombie (accepts work, no progress)"


#: Event types that take a node silently out of (full) service — used by
#: schedule validation to know which nodes a NodeRecovery may target.
GRAY_NODE_FAULTS = (ZombieNode,)
