"""The online control loop: observe churn, rewrite flows, replan, hot-swap.

:class:`OnlineController` turns the static plan-once pipeline into a closed
loop. It registers a churn schedule with the simulator's event loop and,
after each event, reacts in two tiers that mirror the repo's two
incremental machines:

1. **Fast path — flow rewrite.** The reference placement restricted to
   surviving nodes is pushed through a persistent
   :meth:`FlowGraph.reevaluate() <repro.flow.graph.FlowGraph.reevaluate>`
   (the PR-1 incremental evaluator: only capacities of changed edges are
   rewritten). If the degraded placement still carries flow, the solution
   is hot-swapped into the scheduler's IWRR selectors whenever a repaired
   placement is not about to land in the same instant — replanning
   disabled, delayed (``replan_delay``), or failed — so serving continues
   on the surviving replicas.
2. **Slow path — warm-started replanning.**
   :meth:`HelixMilpPlanner.replan()
   <repro.placement.helix_milp.HelixMilpPlanner.replan>` runs the PR-2
   incremental LNS loop around the degraded placement on the subcluster of
   available nodes, producing a *repaired* placement that re-spreads the
   lost layers. Its flow solution is hot-swapped the same way; requests
   whose pipelines the swap invalidates are migrated through the pending
   queue.

Replanning happens outside simulated time by default (its wall-clock cost
is recorded as telemetry); set ``replan_delay`` to also charge a
deterministic amount of simulated seconds, keeping seeded runs exactly
reproducible while modeling a control-plane reaction time.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.cluster.profiler import Profiler
from repro.core.errors import ClusterError, PlacementError, SolverError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.models.specs import ModelSpec
from repro.online.detect import DetectorConfig, FailureDetector
from repro.online.events import (
    ClusterEvent,
    LinkDegradation,
    LinkRecovery,
    NetworkPartition,
    NodeFailure,
    NodeJoin,
    NodeRecovery,
    validate_schedule,
)
from repro.sim.metrics import DisruptionReport, disruption_report


@dataclass
class ReplanRecord:
    """Telemetry of one replanning reaction.

    Mutable because a delayed replan (``replan_delay > 0``) fills in
    ``migrated`` only when the deferred swap actually applies.

    Attributes:
        sim_time: Simulation time of the triggering event.
        wall_seconds: Wall-clock cost of the warm-started LNS replan.
        throughput: Max-flow throughput of the repaired placement
            (NaN when the replan failed).
        migrated: Requests migrated when the repaired placement applied.
        status: ``"applied"``, ``"scheduled"`` (a delayed swap that has
            not taken effect yet — it stays that way if the simulation
            horizon cuts it off), ``"degraded-only"`` (fast path worked
            but the replan found nothing servable), or ``"failed"``
            (neither tier produced a servable configuration; requests
            queue until the next recovery event).
    """

    sim_time: float
    wall_seconds: float
    throughput: float
    migrated: int
    status: str


class OnlineController:
    """Reacts to cluster churn by rewriting flows and replanning live.

    Args:
        model: The served model (replanning needs it).
        events: The churn schedule (scripted or generated). Sorted
            internally; events beyond the simulation horizon never fire.
        profiler: Performance model; must match the serving profiler.
        replan: Master switch for the slow path. With it off the
            controller only masks/unmasks nodes and rewrites flows — the
            "no replanning" ablation.
        replan_lns_rounds: LNS rounds per replanning.
        replan_time_limit: Per-round LNS solver budget in seconds.
        replan_delay: Simulated seconds between an event and its repaired
            placement taking effect (0 = instantaneous). Deterministic, so
            seeded runs reproduce exactly.
        partial_inference: Forwarded to the replanner.
        planner_factory: ``factory(subcluster) -> planner`` override; the
            planner must expose ``replan(base, lns_rounds)``. Default
            builds a :class:`~repro.placement.helix_milp.HelixMilpPlanner`
            configured for incremental re-solves.
    """

    def __init__(
        self,
        model: ModelSpec,
        events: Iterable[ClusterEvent] = (),
        profiler: Profiler | None = None,
        replan: bool = True,
        replan_lns_rounds: int = 2,
        replan_time_limit: float = 1.0,
        replan_delay: float = 0.0,
        partial_inference: bool = True,
        planner_factory: Callable | None = None,
        detection_mode: bool = False,
        detector_config: DetectorConfig | None = None,
        replan_retries: int = 2,
        replan_retry_backoff: float = 0.5,
        autoscaler=None,
    ) -> None:
        self.model = model
        self.events = sorted(events, key=lambda e: e.time)
        self.profiler = profiler or Profiler()
        self.replan = replan
        self.replan_lns_rounds = replan_lns_rounds
        self.replan_time_limit = replan_time_limit
        self.replan_delay = replan_delay
        self.partial_inference = partial_inference
        self.planner_factory = planner_factory
        #: With detection on, node failures happen *silently*
        #: (``fail_node(announce=False)``) and the controller reacts only
        #: when its failure detector confirms the node — measuring true
        #: MTTD/MTTR instead of assuming an oracle announcement.
        self.detection_mode = detection_mode
        self.detector_config = detector_config
        self.replan_retries = replan_retries
        self.replan_retry_backoff = replan_retry_backoff
        #: Optional :class:`~repro.online.autoscale.Autoscaler`; attached
        #: to the simulation in :meth:`start` so its periodic backlog
        #: checks ride the same event loop as the churn schedule.
        self.autoscaler = autoscaler
        self.detector: FailureDetector | None = None
        #: One ``(sim_time, node_id, kind, mttd)`` row per confirmed
        #: detection; ``mttd`` is NaN for a false positive.
        self.detections: list[tuple[float, str, str, float]] = []
        self._replan_attempt = 0

        #: ``(sim_time, description)`` log of applied events.
        self.event_log: list[tuple[float, str]] = []
        #: Times of disruptive events (failures, degradations, partitions).
        self.disruption_times: list[float] = []
        #: One :class:`ReplanRecord` per reaction.
        self.replans: list[ReplanRecord] = []
        self._flow_graph: FlowGraph | None = None
        # Planners cached by available-node membership, so a recovery that
        # restores a previously-seen membership replans on the already
        # compiled formulation (the PR-2 incremental path end to end).
        self._planners: dict[frozenset, object] = {}
        # The last *planned* placement (initial plan or applied replan).
        # Tier 1 degrades this, never the already-degraded live placement,
        # so a recovery can restore a node's assignment even with
        # replanning disabled.
        self._reference_placement: ModelPlacement | None = None

    # ------------------------------------------------------------------
    # Simulation hook-in
    # ------------------------------------------------------------------
    def start(self, sim) -> None:
        """Register the churn schedule with a simulation's event loop.

        Called by :meth:`Simulation.run` before the first event pops. The
        schedule is validated against the starting cluster first, so a
        malformed scenario fails here with a clear error instead of
        somewhere mid-run.
        """
        validate_schedule(self.events, sim.cluster)
        for event in self.events:
            sim.schedule_event(
                event.time, lambda s, ev=event: self._handle(s, ev)
            )
        if self.detection_mode:
            self.detector = FailureDetector(
                sim, self.detector_config, on_confirm=self._on_confirmed
            )
            self.detector.start()
        if self.autoscaler is not None:
            self.autoscaler.attach(sim, self)

    def _handle(self, sim, event: ClusterEvent) -> None:
        if self.detection_mode and type(event) is NodeFailure:
            # The crash is silent: only the physical half happens, and the
            # control plane learns nothing until the detector confirms.
            sim.fail_node(event.node_id, announce=False)
            self.event_log.append(
                (sim.now, f"node {event.node_id} failed silently (undetected)")
            )
            self.disruption_times.append(sim.now)
            return
        description = sim.apply_event(event)
        self.event_log.append((sim.now, description))
        if event.is_disruptive:
            self.disruption_times.append(sim.now)
        if isinstance(event, NodeJoin):
            # Structural change: the incremental evaluator's edge registry
            # no longer covers the cluster; rebuild lazily.
            self._flow_graph = None
        if isinstance(
            event,
            (
                NodeJoin,
                NodeRecovery,
                LinkDegradation,
                LinkRecovery,
                NetworkPartition,
            ),
        ):
            # Cached planners snapshot link objects/capacities; any event
            # that changes links (join, degradation, partition, repair —
            # PartitionHeal subclasses NetworkPartition) or the available
            # subcluster itself (join, recovery) invalidates them: a
            # recovery restores a node whose links a cached planner built
            # while it was down.
            self._planners.clear()
        if event.triggers_replan:
            self.react(sim)

    def _on_confirmed(self, sim, node_id: str, kind: str) -> None:
        """Detector callback: complete the failure and replan around it."""
        mttd = sim.confirm_node_failure(node_id)
        self.detections.append((sim.now, node_id, kind, mttd))
        self.event_log.append(
            (
                sim.now,
                f"detector confirmed {node_id} dead ({kind}, "
                f"mttd={mttd:.3f}s)",
            )
        )
        if sim.debug_validate:
            sim.cluster.validate()
        self.react(sim)

    # ------------------------------------------------------------------
    # The two-tier reaction
    # ------------------------------------------------------------------
    def _degraded_placement(self, sim) -> ModelPlacement | None:
        """The reference placement restricted to available nodes.

        The reference is the last *planned* placement, not the live one: a
        tier-1 swap already dropped failed nodes from ``sim.placement``,
        and degrading that again would forget their assignments — a later
        recovery could then never restore them without a full replan.
        """
        reference = self._reference_placement or sim.placement
        intervals = {
            nid: (stage.start, stage.end)
            for nid, stage in reference.assignments.items()
            if sim.cluster.node_available(nid)
        }
        if not intervals:
            return None
        return ModelPlacement.from_intervals(reference.num_layers, intervals)

    def _ensure_flow_graph(
        self, sim, placement: ModelPlacement
    ) -> tuple[FlowGraph, bool]:
        """The persistent incremental evaluator, plus whether it was just
        built (a fresh graph already reflects current link bandwidths, so
        ``refresh_links`` cannot report what changed before it existed)."""
        if self._flow_graph is None:
            self._flow_graph = FlowGraph(
                sim.cluster, self.model, placement, self.profiler,
                self.partial_inference,
            )
            return self._flow_graph, True
        return self._flow_graph, False

    def react(self, sim) -> ReplanRecord:
        """Run both reaction tiers and record the outcome."""
        if self._reference_placement is None:
            self._reference_placement = sim.placement
        # Tier 1: incremental flow rewrite over the surviving replicas.
        degraded = self._degraded_placement(sim)
        degraded_flow = None
        flow_state_changed = False
        if degraded is not None:
            try:
                graph, created = self._ensure_flow_graph(sim, degraded)
                flow_state_changed = created or bool(graph.refresh_links())
                solution = graph.reevaluate(degraded)
                if solution.max_flow > 0:
                    degraded_flow = solution
            except PlacementError:
                degraded_flow = None  # survivors cannot cover the model
        degraded_useful = degraded_flow is not None and (
            flow_state_changed
            or degraded.assignments != sim.placement.assignments
        )
        # Skip the tier-1 hot-swap when nothing changed (e.g. a recovery of
        # a node the current placement does not use) — rebuilding selectors
        # mid-serving discards IWRR interleaving state for no gain — and
        # when an *instantaneous* tier-2 replan will supersede it within
        # this same call anyway (replan on, no delay). With a delay, the
        # degraded swap bridges the gap until the repaired placement lands.
        if degraded_useful and (not self.replan or self.replan_delay > 0):
            sim.apply_placement(degraded, degraded_flow)
            degraded_useful = False  # applied; not available as a fallback

        if not self.replan:
            record = ReplanRecord(
                sim_time=sim.now,
                wall_seconds=0.0,
                throughput=(
                    degraded_flow.max_flow if degraded_flow else math.nan
                ),
                migrated=0,
                status="degraded-only" if degraded_flow else "failed",
            )
            self.replans.append(record)
            return record

        # Tier 2: warm-started incremental LNS replanning on the subcluster.
        start = time.perf_counter()
        result = None
        try:
            membership = frozenset(sim.cluster.available_node_ids)
            planner = self._planners.get(membership)
            if planner is None:
                planner = self._make_planner(sim.cluster.subcluster())
                self._planners[membership] = planner
            residency = getattr(sim, "residency", None)
            if residency is not None and hasattr(
                planner, "set_residency_hint"
            ):
                # Residency-aware replanning: candidates whose layers are
                # already in VRAM score a warm-start bonus, so the repair
                # prefers a pre-warmed spare over a cold one — lower MTTR.
                planner.set_residency_hint(
                    residency.snapshot(),
                    warm_bonus=residency.config.warm_bonus,
                )
            result = planner.replan(
                base=degraded, lns_rounds=self.replan_lns_rounds
            )
        except (ClusterError, PlacementError, SolverError):
            result = None
        wall = time.perf_counter() - start

        if result is None:
            if degraded_useful:
                # The skipped tier-1 swap becomes the fallback: serve on
                # the surviving replicas since no repair materialized.
                sim.apply_placement(degraded, degraded_flow)
            record = ReplanRecord(
                sim_time=sim.now,
                wall_seconds=wall,
                throughput=(
                    degraded_flow.max_flow if degraded_flow else math.nan
                ),
                migrated=0,
                status="degraded-only" if degraded_flow else "failed",
            )
            self.replans.append(record)
            # A failed replan (solver error or no servable repair) retries
            # with exponential backoff instead of giving up until the next
            # event: transient solver failures should not strand the run
            # on a degraded placement forever.
            if self._replan_attempt < self.replan_retries:
                delay = self.replan_retry_backoff * (
                    2.0 ** self._replan_attempt
                )
                self._replan_attempt += 1
                sim.schedule_event(
                    sim.now + delay, lambda s: self.react(s)
                )
            return record
        self._replan_attempt = 0

        placement, flow = result.placement, result.flow
        record = ReplanRecord(
            sim_time=sim.now,
            wall_seconds=wall,
            throughput=flow.max_flow,
            migrated=0,
            status="scheduled",
        )
        if self.replan_delay > 0:

            def apply_deferred(s, record=record):
                record.migrated = len(s.apply_placement(placement, flow))
                record.status = "applied"
                self._reference_placement = placement

            sim.schedule_event(sim.now + self.replan_delay, apply_deferred)
        else:
            record.migrated = len(sim.apply_placement(placement, flow))
            record.status = "applied"
            self._reference_placement = placement
        self.replans.append(record)
        return record

    def _make_planner(self, subcluster):
        if self.planner_factory is not None:
            return self.planner_factory(subcluster)
        from repro.placement.helix_milp import HelixMilpPlanner

        return HelixMilpPlanner(
            subcluster,
            self.model,
            self.profiler,
            partial_inference=self.partial_inference,
            lns_time_limit=self.replan_time_limit,
            mip_rel_gap=0.05,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def applied_replans(self) -> list[ReplanRecord]:
        """The replans whose repaired placement actually took effect."""
        return [r for r in self.replans if r.status == "applied"]

    def report(
        self,
        sim,
        window: float = 2.0,
        recovery_threshold: float = 0.7,
    ) -> DisruptionReport:
        """Assemble the run's :class:`~repro.sim.metrics.DisruptionReport`.

        Pre-disruption goodput is measured before the first disruptive
        event; post-recovery goodput after the last applied replan (plus
        its delay) settled. Call after :meth:`Simulation.run` returns.
        """
        end_time = min(sim.now, sim.max_time)
        timeline = sim.token_timeline
        if self.detection_mode and timeline:
            # The detector's heartbeat ticker keeps the event loop alive
            # all the way to the horizon; goodput windows past the last
            # emitted token would measure that idleness, not recovery.
            end_time = min(end_time, timeline[-1] + window)
        first_disruption = (
            self.disruption_times[0] if self.disruption_times else end_time
        )
        applied = self.applied_replans
        recovered_from = (
            applied[-1].sim_time + self.replan_delay
            if applied
            else first_disruption
        )
        # Control-plane reaction instants: detector confirmations and the
        # moments applied replans took effect. MTTR cannot precede the
        # last of these — goodput measured before the control plane even
        # reacted is survival, not recovery.
        reaction_times = [row[0] for row in self.detections]
        reaction_times.extend(
            r.sim_time + self.replan_delay for r in applied
        )
        records = sim.records
        return disruption_report(
            sim.token_timeline,
            window=window,
            end_time=end_time,
            first_disruption=first_disruption,
            recovered_from=recovered_from,
            requests_retried=sum(1 for r in records if r.retries > 0),
            requests_migrated=sum(1 for r in records if r.migrations > 0),
            tokens_lost=sum(r.tokens_lost for r in records),
            replan_latencies=[r.wall_seconds for r in applied],
            recovery_threshold=recovery_threshold,
            mttd_samples=[row[3] for row in self.detections],
            reaction_times=reaction_times,
            false_positives=(
                self.detector.false_positives if self.detector else 0
            ),
            requests_shed=sim.requests_shed,
            requests_lost=sim.requests_lost,
        )
