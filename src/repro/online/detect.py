"""Failure detection over the simulated network (phi-accrual + watchdog).

The detection loop closes the gray-failure gap: ``repro.online.events``
failures are *announced* (the scheduler learns instantly), but real
clusters only ever observe symptoms — missing heartbeats, stalled
progress. :class:`FailureDetector` runs inside the simulation and sees
exactly what a real coordinator would:

* **Heartbeats through the simulated network.** Every monitored node
  emits a heartbeat each ``heartbeat_interval``; its delivery time is
  computed from the node's live channel to the coordinator (bandwidth +
  propagation latency, so a degraded link slows heartbeats down and
  raises suspicion exactly as it should). Heartbeats ride a control
  plane: they never occupy the data channel's FIFO slot (no mutation of
  channel state, so enabling detection cannot perturb data-plane timing
  — the differential suite depends on this), but a flaky link's
  :class:`~repro.online.faults.LinkFault` *does* drop them outright.
* **Phi-accrual suspicion.** Per node, the detector keeps a window of
  observed inter-arrival times; suspicion level is the classic
  exponential phi — ``0.434 * elapsed / mean_interval`` — and crossing
  ``phi_threshold`` raises a *crash* suspicion. A late heartbeat clears
  it (a flap), doubles that node's threshold (``flap_damping``), and
  counts toward false-positive accounting.
* **Progress watchdog.** A zombie keeps heartbeating, so phi never
  fires; instead the watchdog suspects any node that is busy or has
  queued work but whose batch counter has not advanced for
  ``zombie_timeout`` seconds.
* **Confirmation.** A suspicion sustained for ``confirm_after`` seconds
  confirms: the ``on_confirm`` callback fires (the controller reacts by
  calling ``sim.confirm_node_failure`` and replanning). Confirming a
  healthy node is allowed — that is what a false positive *is* — and the
  simulation charges its full cost.

Everything is driven by the simulation's event loop and the simulation's
seeded fault state; two runs of the same seed and schedule produce the
identical suspicion timeline, MTTD samples, and false-positive count
(asserted in tests).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cluster.node import COORDINATOR

#: log10(e) — converts the exponential survival exponent to phi digits.
_LOG10_E = 0.4342944819032518


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning knobs of one :class:`FailureDetector`.

    Attributes:
        heartbeat_interval: Seconds between heartbeats of one node.
        heartbeat_bytes: Heartbeat payload size (its network time is
            ``bytes / bandwidth + latency`` on the node's coordinator
            link).
        phi_threshold: Suspicion level that raises a crash suspicion.
        min_samples: Heartbeat intervals observed before phi is
            meaningful (no suspicion until then).
        confirm_after: Seconds a suspicion must survive before the node
            is confirmed failed.
        flap_damping: Multiplier applied to a node's phi threshold every
            time a suspicion proves premature (the node heartbeats while
            suspected) — a flapping node gets progressively harder to
            suspect.
        zombie_timeout: Seconds of no batch progress (while busy or
            holding queued work) before a zombie suspicion.
        check_interval: Period of the detector's evaluation tick.
    """

    heartbeat_interval: float = 0.25
    heartbeat_bytes: float = 4096.0
    phi_threshold: float = 8.0
    min_samples: int = 3
    confirm_after: float = 0.5
    flap_damping: float = 2.0
    zombie_timeout: float = 3.0
    check_interval: float = 0.125

    def __post_init__(self) -> None:
        for name in (
            "heartbeat_interval", "confirm_after", "zombie_timeout",
            "check_interval", "phi_threshold", "flap_damping",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.heartbeat_bytes < 0:
            raise ValueError(
                f"heartbeat_bytes must be >= 0, got {self.heartbeat_bytes}"
            )
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )


class _NodeState:
    """Per-node monitoring state."""

    __slots__ = (
        "last_arrival", "intervals", "threshold", "suspect_time",
        "suspect_kind", "last_batches", "last_progress_time",
    )

    def __init__(self, now: float, threshold: float) -> None:
        self.last_arrival = now
        self.intervals: deque[float] = deque(maxlen=16)
        self.threshold = threshold
        self.suspect_time: float | None = None
        self.suspect_kind = ""
        self.last_batches = -1
        self.last_progress_time = now


class FailureDetector:
    """Heartbeat/watchdog failure detector inside one simulation.

    Args:
        sim: The running :class:`~repro.sim.simulator.Simulation`.
        config: Detector tuning.
        on_confirm: ``fn(sim, node_id, kind)`` invoked the moment a
            suspicion is confirmed (``kind`` is ``"crash"`` or
            ``"zombie"``). The detector itself never mutates cluster
            state — reacting is the controller's job.
    """

    def __init__(self, sim, config: DetectorConfig | None = None, on_confirm=None):
        self.sim = sim
        self.config = config or DetectorConfig()
        self.on_confirm = on_confirm
        self._nodes: dict[str, _NodeState] = {}
        self.confirmed: set[str] = set()
        #: Chronological ``(time, event, node_id)`` rows; ``event`` is one
        #: of ``suspect:crash``, ``suspect:zombie``, ``clear:crash``,
        #: ``clear:zombie``, ``confirm:crash``, ``confirm:zombie``.
        self.timeline: list[tuple[float, str, str]] = []
        #: Suspicions raised (or confirmations issued) against nodes with
        #: no actual fault.
        self.false_positives = 0
        self.heartbeats_sent = 0
        self.heartbeats_dropped = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin monitoring every node the placement uses."""
        sim = self.sim
        now = sim.now
        interval = self.config.heartbeat_interval
        for node_id in sorted(sim.executors):
            self._nodes[node_id] = _NodeState(now, self.config.phi_threshold)
            sim.schedule_event(
                now + interval,
                lambda s, nid=node_id: self._emit_heartbeat(nid),
            )
        sim.schedule_event(
            now + self.config.check_interval, lambda s: self._check()
        )

    @property
    def suspected(self) -> dict[str, str]:
        """Currently-suspected nodes and the suspicion kind."""
        return {
            node_id: state.suspect_kind
            for node_id, state in self._nodes.items()
            if state.suspect_time is not None
        }

    # ------------------------------------------------------------------
    def _emit_heartbeat(self, node_id: str) -> None:
        sim = self.sim
        now = sim.now
        sim.schedule_event(
            now + self.config.heartbeat_interval,
            lambda s, nid=node_id: self._emit_heartbeat(nid),
        )
        if node_id in sim.down_nodes or node_id in sim.silent_down_nodes:
            return  # dead processes do not heartbeat (zombies do)
        self.heartbeats_sent += 1
        channel = sim.channels.get((node_id, COORDINATOR))
        if channel is None:
            # No direct coordinator link: assume an out-of-band control
            # network with negligible transfer time.
            delivery = now
        else:
            fault = channel.fault
            if fault is not None and fault.drop_heartbeat():
                self.heartbeats_dropped += 1
                return
            delivery = (
                now
                + self.config.heartbeat_bytes / channel.bandwidth
                + channel.latency
            )
        sim.schedule_event(
            delivery, lambda s, nid=node_id: self._on_heartbeat(nid)
        )

    def _on_heartbeat(self, node_id: str) -> None:
        if node_id in self.confirmed:
            return  # the node was already declared dead; too late
        state = self._nodes.get(node_id)
        if state is None:
            return
        now = self.sim.now
        state.intervals.append(now - state.last_arrival)
        state.last_arrival = now
        if state.suspect_time is not None and state.suspect_kind == "crash":
            # The suspicion was premature: clear it and get harder to
            # convince about this node.
            self._clear(node_id, state, now)

    def _clear(self, node_id: str, state: _NodeState, now: float) -> None:
        kind = state.suspect_kind
        state.suspect_time = None
        state.suspect_kind = ""
        state.threshold *= self.config.flap_damping
        self.timeline.append((now, f"clear:{kind}", node_id))
        if node_id not in self.sim.fault_times:
            self.false_positives += 1

    # ------------------------------------------------------------------
    def _check(self) -> None:
        sim = self.sim
        now = sim.now
        sim.schedule_event(
            now + self.config.check_interval, lambda s: self._check()
        )
        config = self.config
        down = sim.down_nodes
        for node_id in sorted(self._nodes):
            if node_id in self.confirmed or node_id in down:
                continue
            state = self._nodes[node_id]
            executor = sim.executors.get(node_id)
            if executor is not None:
                batches = executor.stats.batches
                advanced = batches != state.last_batches
                # An idle node is not *expected* to make progress, so
                # idleness counts as progress — otherwise a node picking
                # up work after a long quiet spell would be instantly
                # zombie-suspected (its last batch is arbitrarily old).
                if advanced or not (executor.busy or executor.queue):
                    state.last_batches = batches
                    state.last_progress_time = now
                    if (
                        state.suspect_time is not None
                        and state.suspect_kind == "zombie"
                    ):
                        self._clear(node_id, state, now)
            if state.suspect_time is None:
                self._maybe_suspect(node_id, state, executor, now)
            elif now - state.suspect_time >= config.confirm_after:
                self._confirm(node_id, state, now)

    def _maybe_suspect(self, node_id, state, executor, now: float) -> None:
        config = self.config
        if len(state.intervals) >= config.min_samples:
            mean = sum(state.intervals) / len(state.intervals)
            if mean > 0:
                phi = _LOG10_E * (now - state.last_arrival) / mean
                if phi > state.threshold:
                    state.suspect_time = now
                    state.suspect_kind = "crash"
                    self.timeline.append((now, "suspect:crash", node_id))
                    return
        if (
            executor is not None
            and (executor.busy or executor.queue)
            and now - state.last_progress_time > config.zombie_timeout
        ):
            state.suspect_time = now
            state.suspect_kind = "zombie"
            self.timeline.append((now, "suspect:zombie", node_id))

    def _confirm(self, node_id, state, now: float) -> None:
        kind = state.suspect_kind
        state.suspect_time = None
        state.suspect_kind = ""
        self.confirmed.add(node_id)
        self.timeline.append((now, f"confirm:{kind}", node_id))
        if node_id not in self.sim.fault_times:
            self.false_positives += 1
        if self.on_confirm is not None:
            self.on_confirm(self.sim, node_id, kind)
