"""The experiment runner: resumable, process-parallel manifest execution.

``run_experiment`` expands the spec's manifest, skips every cell whose
content hash already has a record in the store, and executes the rest —
inline for ``workers <= 1``, else on a :class:`ProcessPoolExecutor`.
Records are written the moment each cell completes, so killing the run at
any point loses at most the in-flight cells; a re-invocation picks up
exactly the missing ones. Results are aggregated in manifest order, so
the aggregate is identical regardless of worker count or completion
order.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.machine import machine_stamp
from repro.exp.aggregate import AGGREGATORS
from repro.exp.cells import CELL_KINDS
from repro.exp.spec import ExperimentSpec, RunCell
from repro.exp.store import DEFAULT_ROOT, RunStore, update_index


@dataclass
class RunReport:
    """What one ``run_experiment`` invocation did."""

    experiment: str
    total_cells: int
    executed: int
    skipped: int
    failures: int
    wall_seconds: float
    workers: int
    aggregate: dict
    machine: dict = field(default_factory=dict)
    failing_cells: list[dict] = field(default_factory=list)


def execute_cell(cell: RunCell) -> dict:
    """Run one cell in the current process (the worker entry point).

    Cell functions convert their own crashes to ``sweep_crash`` records;
    this wrapper is the last-resort net for cells that don't, so a bad
    cell fails its record instead of tearing down the worker pool.
    """
    params = cell.params_dict
    fn = CELL_KINDS[cell.kind]
    try:
        record = fn(params)
    except Exception:  # noqa: BLE001
        import traceback

        record = {
            "ok": False,
            "violations": [{
                "invariant": "sweep_crash",
                "detail": f"unhandled exception:\n{traceback.format_exc()}",
            }],
        }
    record.setdefault("ok", False)
    return {"kind": cell.kind, "params": params, **record}


def _progress(cell: RunCell, record: dict, done: int, total: int) -> None:
    status = "ok  " if record.get("ok") else "FAIL"
    seconds = record.get("seconds")
    timing = f" {seconds}s" if seconds is not None else ""
    print(f"{status} [{done}/{total}] {cell.label()}{timing}", flush=True)


def run_experiment(
    spec: ExperimentSpec,
    *,
    workers: int = 1,
    results_root: Path | str = DEFAULT_ROOT,
    force: bool = False,
    quiet: bool = False,
) -> RunReport:
    """Execute an experiment's manifest, resuming from completed cells.

    Args:
        spec: The experiment to run.
        workers: Process count; ``<= 1`` executes inline (no pool), which
            is also the fallback the determinism tests compare against.
        results_root: Store root (``benchmarks/results/exp`` by default).
        force: Re-execute every cell even if its record exists.
        quiet: Suppress per-cell progress lines.

    Returns:
        A :class:`RunReport`; ``report.aggregate`` is the experiment's
        headline document (also written to ``aggregate.json``).
    """
    started = time.perf_counter()
    store = RunStore(results_root, spec.name)
    manifest = spec.manifest()
    store.write_manifest(manifest)

    cells = spec.cells()
    completed = set() if force else store.completed_hashes()
    pending = [cell for cell in cells if cell.cell_hash not in completed]
    skipped = len(cells) - len(pending)
    total = len(cells)
    done = skipped

    if pending:
        if workers <= 1:
            for cell in pending:
                record = execute_cell(cell)
                store.write_record(cell.cell_hash, record)
                done += 1
                if not quiet:
                    _progress(cell, record, done, total)
        else:
            # Submit everything up front; write each record as its future
            # lands so a kill only ever loses in-flight cells.
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_cell, cell): cell for cell in pending
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        cell = futures[future]
                        record = future.result()
                        store.write_record(cell.cell_hash, record)
                        done += 1
                        if not quiet:
                            _progress(cell, record, done, total)

    # Aggregate from the store in manifest order: identical output no
    # matter how many workers ran or which invocation finished which cell.
    records = store.read_records(manifest)
    machine = machine_stamp(workers=workers)
    aggregator = AGGREGATORS[spec.aggregate]
    aggregate = aggregator(spec, records)
    aggregate["machine"] = machine
    store.write_aggregate(aggregate)
    store.write_csv(records)
    update_index(Path(results_root))

    failing = [r for r in records if not r.get("ok")]
    return RunReport(
        experiment=spec.name,
        total_cells=total,
        executed=len(pending),
        skipped=skipped,
        failures=len(failing),
        wall_seconds=round(time.perf_counter() - started, 3),
        workers=workers,
        aggregate=aggregate,
        machine=machine,
        failing_cells=[
            {
                "hash": r.get("hash"),
                "kind": r.get("kind"),
                "params": r.get("params"),
                "repro": r.get("repro"),
            }
            for r in failing
        ],
    )
