"""Aggregators: per-run records -> the experiment's headline document.

Each aggregator takes ``(spec, records)`` — records in manifest order —
and returns a JSON document shaped like the report the corresponding
standalone sweep script has always written, so downstream consumers
(perf-tracking diffs, the BENCH_* headline files, plotting scripts) keep
working unchanged.

Aggregates deliberately exclude wall-clock fields (per-cell ``seconds``,
sweep wall time): a resumed run re-executes some cells with different
timings, and the aggregate must come out byte-identical to an
uninterrupted run. Timings stay in the per-run records and ``runs.csv``.
"""

from __future__ import annotations

#: Record keys excluded from aggregate rows (nondeterministic or
#: redundant with the row's own fields).
_VOLATILE_KEYS = ("seconds", "kind", "params")


def _mean(samples: list[float]) -> float | None:
    return round(sum(samples) / len(samples), 4) if samples else None


def _row(record: dict) -> dict:
    return {k: v for k, v in record.items() if k not in _VOLATILE_KEYS}


def _failing(rows: list[dict]) -> list[dict]:
    return [
        {
            "family": r.get("family"),
            "seed": r.get("seed"),
            "repro": r.get("repro"),
        }
        for r in rows if not r.get("ok")
    ]


def _grid_axis(spec, axis: str) -> tuple:
    for name, values in spec.grid:
        if name == axis:
            return values
    return ()


def _split(records: list[dict], kind: str) -> tuple[list[dict], list[dict]]:
    """Partition records into (matching kind, the rest)."""
    matching = [r for r in records if r.get("kind") == kind]
    rest = [r for r in records if r.get("kind") != kind]
    return matching, rest


def _counter_totals(rows: list[dict]) -> dict:
    totals = {"submitted": 0, "finished": 0, "shed": 0, "lost": 0}
    for row in rows:
        counters = row.get("counters") or {}
        for key in totals:
            totals[key] += counters.get(key, 0)
    return totals


def generic_aggregate(spec, records: list[dict]) -> dict:
    rows = [_row(r) for r in records]
    return {
        "experiment": spec.name,
        "total_cells": len(rows),
        "failures": sum(1 for r in rows if not r.get("ok")),
        "failing_addresses": _failing(rows),
        "results": rows,
    }


def scenario_sweep_aggregate(spec, records: list[dict]) -> dict:
    rows = [_row(r) for r in records]
    base = spec.base_dict
    return {
        "experiment": spec.name,
        "size": base.get("size", "full"),
        "seeds_per_family": len(_grid_axis(spec, "seed")),
        "milp_oracles": base.get("milp_oracles", False),
        "total_addresses": len(rows),
        "failures": sum(1 for r in rows if not r.get("ok")),
        "failing_addresses": _failing(rows),
        "results": rows,
    }


def chaos_sweep_aggregate(spec, records: list[dict]) -> dict:
    rows = [_row(r) for r in records]
    mttd_means: list[float] = []
    mttd_maxes: list[float] = []
    mttr_samples: list[float] = []
    recovery_ratios: list[float] = []
    false_positives = 0
    for row in rows:
        disruption = row.get("disruption") or {}
        false_positives += disruption.get("false_positives") or 0
        if disruption.get("mttd_mean_s") is not None:
            mttd_means.append(disruption["mttd_mean_s"])
            mttd_maxes.append(disruption["mttd_max_s"])
        if disruption.get("time_to_recovery_s") is not None:
            mttr_samples.append(disruption["time_to_recovery_s"])
        if disruption.get("recovery_ratio") is not None:
            recovery_ratios.append(disruption["recovery_ratio"])
    totals = _counter_totals(rows)
    submitted = totals["submitted"]
    headline = {
        "addresses": len(rows),
        "failures": sum(1 for r in rows if not r.get("ok")),
        "addresses_with_detections": len(mttd_means),
        "mttd_mean_s": _mean(mttd_means),
        "mttd_max_s": round(max(mttd_maxes), 4) if mttd_maxes else None,
        "mttr_mean_s": _mean(mttr_samples),
        "recovery_ratio_mean": _mean(recovery_ratios),
        "false_positives": false_positives,
        "requests_submitted": submitted,
        "requests_finished": totals["finished"],
        "requests_shed": totals["shed"],
        "requests_lost": totals["lost"],
        "shed_rate": (
            round(totals["shed"] / submitted, 6) if submitted else None
        ),
        "lost_rate": (
            round(totals["lost"] / submitted, 6) if submitted else None
        ),
    }
    return {
        "experiment": spec.name,
        "family": "chaos",
        "size": spec.base_dict.get("size", "full"),
        "seeds": len(_grid_axis(spec, "seed")),
        "failures": headline["failures"],
        "failing_addresses": _failing(rows),
        "headline": headline,
        "results": rows,
    }


def elastic_sweep_aggregate(spec, records: list[dict]) -> dict:
    spare_records, sweep_records = _split(records, "spare_recovery")
    rows = [_row(r) for r in sweep_records]
    mttr_samples: list[float] = []
    recovery_ratios: list[float] = []
    warmups = drains = scale_ups = scale_downs = 0
    warmup_seconds = 0.0
    warmup_bytes = 0
    for row in rows:
        elasticity = row.get("elasticity") or {}
        warmups += elasticity.get("warmups", 0)
        warmup_seconds += elasticity.get("warmup_seconds_total", 0.0)
        warmup_bytes += elasticity.get("warmup_bytes_total", 0)
        drains += elasticity.get("drains", 0)
        actions = elasticity.get("autoscaler_actions", [])
        scale_ups += sum(1 for _, a, _ in actions if a == "add")
        scale_downs += sum(1 for _, a, _ in actions if a == "drain")
        disruption = row.get("disruption") or {}
        if disruption.get("mttr_s") is not None:
            mttr_samples.append(disruption["mttr_s"])
        if disruption.get("recovery_ratio") is not None:
            recovery_ratios.append(disruption["recovery_ratio"])
    totals = _counter_totals(rows)
    submitted = totals["submitted"]

    # Warm-vs-cold contrast from the two hand-placed spare-recovery cells.
    warm = next(
        (_row(r) for r in spare_records if r.get("warm")), {}
    )
    cold = next(
        (_row(r) for r in spare_records if r.get("warm") is False), {}
    )
    speedup = None
    if warm.get("mttr_s") and cold.get("mttr_s"):
        speedup = round(cold["mttr_s"] / warm["mttr_s"], 4)
    recovery = {
        "warm": warm,
        "cold": cold,
        "mttr_warm_s": warm.get("mttr_s"),
        "mttr_cold_s": cold.get("mttr_s"),
        "cold_over_warm_mttr": speedup,
        "goodput_dip_ratio_cold": cold.get("goodput_dip_ratio"),
    }
    headline = {
        "addresses": len(rows),
        "failures": sum(1 for r in rows if not r.get("ok")),
        "warmups": warmups,
        "warmup_seconds_total": round(warmup_seconds, 4),
        "warmup_gbytes_total": round(warmup_bytes / 1e9, 3),
        "drains": drains,
        "autoscaler_scale_ups": scale_ups,
        "autoscaler_scale_downs": scale_downs,
        "mttr_mean_s": _mean(mttr_samples),
        "recovery_ratio_mean": _mean(recovery_ratios),
        "mttr_warm_s": recovery["mttr_warm_s"],
        "mttr_cold_s": recovery["mttr_cold_s"],
        "cold_over_warm_mttr": recovery["cold_over_warm_mttr"],
        "goodput_dip_ratio_cold": recovery["goodput_dip_ratio_cold"],
        "requests_submitted": submitted,
        "requests_finished": totals["finished"],
        "requests_shed": totals["shed"],
        "requests_lost": totals["lost"],
        "shed_rate": (
            round(totals["shed"] / submitted, 6) if submitted else None
        ),
        "lost_rate": (
            round(totals["lost"] / submitted, 6) if submitted else None
        ),
    }
    failures = headline["failures"] + sum(
        1 for r in spare_records if not r.get("ok")
    )
    return {
        "experiment": spec.name,
        "family": "elastic",
        "size": spec.base_dict.get("size", "full"),
        "seeds": len(_grid_axis(spec, "seed")),
        "failures": failures,
        "failing_addresses": _failing(rows),
        "headline": headline,
        "warm_vs_cold": recovery,
        "results": rows,
    }


def tenant_sweep_aggregate(spec, records: list[dict]) -> dict:
    contrast_records, sweep_records = _split(records, "selector_contrast")
    rows = [_row(r) for r in sweep_records]
    fairness_samples: list[float] = []
    slo_pairs = slo_met = starvation_events = 0
    shed_by_priority: dict[str, int] = {}
    for row in rows:
        tenancy = row.get("tenancy") or {}
        if tenancy.get("fairness_index") is not None:
            fairness_samples.append(tenancy["fairness_index"])
        starvation_events += tenancy.get("starvation_events", 0)
        for priority, count in (tenancy.get("shed_by_priority") or {}).items():
            shed_by_priority[priority] = (
                shed_by_priority.get(priority, 0) + count
            )
        slo_pairs += tenancy.get("slo_pairs", 0)
        slo_met += tenancy.get("slo_met", 0)
    totals = _counter_totals(rows)
    submitted = totals["submitted"]

    # Deficit-vs-priority contrast from the two hand-placed cells.
    deficit = next(
        (_row(r) for r in contrast_records
         if r.get("selector") == "deficit"), {}
    )
    priority = next(
        (_row(r) for r in contrast_records
         if r.get("selector") == "priority"), {}
    )
    contrast = {
        "deficit": deficit,
        "priority": priority,
        "starvation_events_deficit": deficit.get("starvation_events"),
        "starvation_events_priority": priority.get("starvation_events"),
        # The control MUST starve and the fair selector MUST not; a sweep
        # where this flips means the invariant lost its teeth.
        "control_demonstrates_starvation": bool(
            (priority.get("starvation_events") or 0) > 0
            and deficit.get("starvation_events") == 0
        ),
    }
    headline = {
        "addresses": len(rows),
        "failures": sum(1 for r in rows if not r.get("ok")),
        "fairness_index_mean": _mean(fairness_samples),
        "fairness_index_min": (
            round(min(fairness_samples), 4) if fairness_samples else None
        ),
        "slo_pairs": slo_pairs,
        "slo_met": slo_met,
        "slo_attainment_rate": (
            round(slo_met / slo_pairs, 4) if slo_pairs else None
        ),
        "starvation_events": starvation_events,
        "shed_by_priority": {
            p: shed_by_priority[p] for p in sorted(shed_by_priority)
        },
        "starvation_events_deficit": contrast["starvation_events_deficit"],
        "starvation_events_priority": contrast["starvation_events_priority"],
        "control_demonstrates_starvation": contrast[
            "control_demonstrates_starvation"
        ],
        "requests_submitted": submitted,
        "requests_finished": totals["finished"],
        "requests_shed": totals["shed"],
        "requests_lost": totals["lost"],
        "shed_rate": (
            round(totals["shed"] / submitted, 6) if submitted else None
        ),
    }
    failures = headline["failures"] + sum(
        1 for r in contrast_records if not r.get("ok")
    )
    return {
        "experiment": spec.name,
        "family": "tenant",
        "size": spec.base_dict.get("size", "full"),
        "seeds": len(_grid_axis(spec, "seed")),
        "failures": failures,
        "failing_addresses": _failing(rows),
        "headline": headline,
        "deficit_vs_priority": contrast,
        "results": rows,
    }


def batch_sweep_aggregate(spec, records: list[dict]) -> dict:
    diurnal_records, sweep_records = _split(records, "diurnal_perf")
    rows = [_row(r) for r in sweep_records]
    failures = sum(1 for r in rows if not r.get("ok"))
    diurnal = _row(diurnal_records[0]) if diurnal_records else {}
    headline = {
        "addresses": len(rows),
        "failures": failures,
        "diurnal_tier": diurnal.get("tier"),
        "diurnal_batch_tokens_per_s": diurnal.get("batch_tokens_per_s"),
        "diurnal_hop_table_tokens_per_s": diurnal.get(
            "hop_table_tokens_per_s"
        ),
        "diurnal_batch_vs_hop": diurnal.get("batch_vs_hop"),
        "diurnal_span_days": diurnal.get("span_days"),
    }
    failures += sum(1 for r in diurnal_records if not r.get("ok"))
    return {
        "experiment": spec.name,
        "families": list(_grid_axis(spec, "family")),
        "size": spec.base_dict.get("size", "full"),
        "seeds": len(_grid_axis(spec, "seed")),
        "failures": failures,
        "failing_addresses": _failing(rows),
        "headline": headline,
        "results": rows,
    }


def policy_compare_aggregate(spec, records: list[dict]) -> dict:
    """Per-scheduler roll-up: same addresses, different policies."""
    rows = [_row(r) for r in records]
    by_policy: dict[str, dict] = {}
    for row in rows:
        policy = row.get("scheduler") or "default"
        bucket = by_policy.setdefault(policy, {
            "addresses": 0,
            "failures": 0,
            "decode_throughput": [],
            "finished": 0,
            "shed": 0,
        })
        bucket["addresses"] += 1
        if not row.get("ok"):
            bucket["failures"] += 1
        if row.get("decode_throughput") is not None:
            bucket["decode_throughput"].append(row["decode_throughput"])
        counters = row.get("counters") or {}
        bucket["finished"] += counters.get("finished", 0)
        bucket["shed"] += counters.get("shed", 0)
    policies = {
        policy: {
            "addresses": bucket["addresses"],
            "failures": bucket["failures"],
            "decode_throughput_mean": _mean(bucket["decode_throughput"]),
            "requests_finished": bucket["finished"],
            "requests_shed": bucket["shed"],
        }
        for policy, bucket in sorted(by_policy.items())
    }
    return {
        "experiment": spec.name,
        "size": spec.base_dict.get("size", "full"),
        "seeds": len(_grid_axis(spec, "seed")),
        "failures": sum(1 for r in rows if not r.get("ok")),
        "failing_addresses": _failing(rows),
        "headline": {"policies": policies},
        "results": rows,
    }


def perf_suite_aggregate(spec, records: list[dict]) -> dict:
    """Single-cell BENCH_* regeneration: surface the derived numbers."""
    rows = [_row(r) for r in records]
    derived = {}
    for row in rows:
        derived.update(row.get("derived") or {})
    return {
        "experiment": spec.name,
        "failures": sum(1 for r in rows if not r.get("ok")),
        "headline": derived,
        "results": rows,
    }


#: Aggregator registry: ``ExperimentSpec.aggregate`` -> callable.
AGGREGATORS = {
    "generic": generic_aggregate,
    "scenario_sweep": scenario_sweep_aggregate,
    "chaos_sweep": chaos_sweep_aggregate,
    "elastic_sweep": elastic_sweep_aggregate,
    "tenant_sweep": tenant_sweep_aggregate,
    "batch_sweep": batch_sweep_aggregate,
    "policy_compare": policy_compare_aggregate,
    "perf_suite": perf_suite_aggregate,
}
