"""Cell functions: the picklable units of work a worker process executes.

Every cell kind is a module-top-level function ``fn(params: dict) -> dict``
registered in :data:`CELL_KINDS`, so :mod:`multiprocessing` can pickle the
call and the returned record is plain JSON for the run store. Cells catch
their own crashes (converting them to ``sweep_crash`` violations) — a bad
address must never take the worker pool down with it.

Two process-local caches make repeated grid cells cheap:

* :func:`_cached_plan` memoizes the placement search per ``(family, seed,
  size)`` address, so a policy-grid experiment that evaluates the same
  scenario under several schedulers plans it once per worker;
* the perf-suite cells reuse the existing ``run_*_bench`` harnesses,
  which already cache profiler tables per process.
"""

from __future__ import annotations

import math
import time
import traceback

from repro.testkit.harness import (
    placement_intervals,
    plan_scenario,
    verify_scenario_record,
)

#: Per-process plan cache: address -> (planner method, intervals). Shared
#: by every policy cell a worker executes; deliberately never invalidated
#: (plans are pure functions of the address).
_PLAN_CACHE: dict[tuple[str, int, str], tuple[str, dict]] = {}


def _crash_record(params: dict) -> dict:
    return {
        **{k: params.get(k) for k in ("family", "seed", "size") if k in params},
        "ok": False,
        "violations": [{
            "invariant": "sweep_crash",
            "detail": f"unhandled exception:\n{traceback.format_exc()}",
        }],
    }


# ----------------------------------------------------------------------
# Scenario-verification cells
# ----------------------------------------------------------------------
def verify_cell(params: dict) -> dict:
    """Full verification of one scenario address (the sweep workhorse)."""
    return verify_scenario_record(
        params["family"], params["seed"], params.get("size", "full"),
        milp_oracles=params.get("milp_oracles", False),
        determinism=params.get("determinism", True),
        flow_differential=params.get("flow_differential", True),
        engine=params.get("engine", "hop"),
    )


def policy_eval_cell(params: dict) -> dict:
    """One address evaluated under an overridden scheduling policy.

    The placement does not depend on the scheduler, so the plan is taken
    from the per-process cache — N policy cells over one address pay for
    one placement search, not N.
    """
    from repro.scenarios import generate_scenario

    family = params["family"]
    seed = params["seed"]
    size = params.get("size", "full")
    key = (family, seed, size)
    try:
        if key not in _PLAN_CACHE:
            method, result = plan_scenario(generate_scenario(*key))
            _PLAN_CACHE[key] = (method, placement_intervals(result))
    except Exception:  # noqa: BLE001 — planning crash = cell failure
        return _crash_record(params)
    method, intervals = _PLAN_CACHE[key]
    record = verify_scenario_record(
        family, seed, size,
        determinism=params.get("determinism", True),
        # The differential oracle is policy-independent; the plain verify
        # grid already covers it per address.
        flow_differential=params.get("flow_differential", False),
        scheduler=params["scheduler"],
        plan=(method, {k: tuple(v) for k, v in intervals.items()}),
    )
    return record


def batch_equivalence_cell(params: dict) -> dict:
    """Hop-table vs. batch engine observable equality on one address."""
    from repro.testkit import check_batch_engine

    family = params["family"]
    seed = params["seed"]
    size = params.get("size", "full")
    started = time.perf_counter()
    try:
        violations = check_batch_engine(family, seed, size)
    except Exception:  # noqa: BLE001
        record = _crash_record(params)
        record["seconds"] = round(time.perf_counter() - started, 3)
        return record
    record = {
        "family": family,
        "seed": seed,
        "size": size,
        "ok": not violations,
        "repro": (
            "PYTHONPATH=src python -c \"from repro.testkit import "
            "check_batch_engine; [print(v) for v in "
            f"check_batch_engine('{family}', {seed}, '{size}')]\""
        ),
        "seconds": round(time.perf_counter() - started, 3),
    }
    if violations:
        record["violations"] = [
            {"invariant": v.invariant, "detail": v.detail}
            for v in violations
        ]
    return record


# ----------------------------------------------------------------------
# Controlled contrast experiments (headline cells of the nightly sweeps)
# ----------------------------------------------------------------------
def spare_recovery_cell(params: dict) -> dict:
    """Warm-vs-cold spare recovery: kill the sole holder of layers [0, 6).

    One leg of the elastic sweep's headline experiment (``warm`` selects
    the leg). The two T4s hold 6 layers each of a model whose per-layer
    footprint a T4 cannot absorb more of, so the repaired placement *must*
    use the restored A100 spare — warm (layers pre-staged) or cold (pulled
    through the same 10 Gb/s links the inference traffic uses).
    """
    from repro.cluster import A100_40G, Cluster, T4
    from repro.core.placement_types import ModelPlacement
    from repro.core.units import GBIT
    from repro.flow.graph import FlowGraph
    from repro.models.specs import ModelSpec
    from repro.online import NodeFailure, NodeRecovery, OnlineController
    from repro.scheduling import HelixScheduler
    from repro.sim import Request, ResidencyConfig, Simulation

    warm = bool(params["warm"])
    started = time.perf_counter()
    try:
        model = ModelSpec(
            name="elastic-wide-12L",
            num_layers=12,
            hidden_size=6656,
            num_heads=52,
            num_kv_heads=52,
            intermediate_size=17920,
        )
        cluster = Cluster(name="bench-elastic-spare")
        cluster.add_node("t4-0", T4, region="region-0")
        cluster.add_node("t4-1", T4, region="region-0")
        cluster.add_node("spare-0", A100_40G, region="region-0")
        cluster.connect_full_mesh(
            ["t4-0", "t4-1", "spare-0"], 10 * GBIT, 0.001,
            include_coordinator=True,
        )
        cluster.set_node_available("spare-0", False)
        cluster.validate()
        placement = ModelPlacement.from_intervals(
            12, {"t4-0": (0, 6), "t4-1": (6, 12)}
        )
        requests = [
            Request(f"r{i}", 16, 4, arrival_time=i * 0.1) for i in range(300)
        ]
        controller = OnlineController(
            model,
            events=[NodeFailure(6.0, "t4-0"), NodeRecovery(7.0, "spare-0")],
            replan=True,
            replan_lns_rounds=0,
        )
        config = ResidencyConfig(
            warm={"spare-0": (0, 12)} if warm else {},
            layer_bytes=5e8,
            warm_bonus=1.0,
        )
        flow = FlowGraph(cluster, model, placement).solve()
        scheduler = HelixScheduler(cluster, model, placement, flow=flow)
        sim = Simulation(
            cluster, model, placement, scheduler, requests,
            max_time=60.0, seed=0, controller=controller, residency=config,
        )
        metrics = sim.run()
        report = controller.report(sim, window=0.5)

        # Goodput during the weight-transfer window, relative to pre-fault:
        # the dip inference traffic pays while layer pulls share its links.
        dip = None
        warmups = [
            r for r in sim.residency.warmup_log if r.node_id == "spare-0"
        ]
        if warmups and not math.isnan(report.pre_disruption_goodput):
            t0 = warmups[0].started
            t1 = t0 + warmups[0].duration
            window = [
                rate for start, rate in report.timeline
                if t0 <= start < t1
            ]
            if window and report.pre_disruption_goodput > 0:
                dip = round(
                    min(window) / report.pre_disruption_goodput, 4
                )
        return {
            "ok": True,
            "warm": warm,
            "mttr_s": (
                round(report.mttr, 4)
                if not math.isnan(report.mttr) else None
            ),
            "warmups": len(sim.residency.warmup_log),
            "warmup_seconds": round(
                sum(r.duration for r in sim.residency.warmup_log), 4
            ),
            "warmup_bytes": int(
                sum(r.bytes_pulled for r in sim.residency.warmup_log)
            ),
            "goodput_dip_ratio": dip,
            "requests_finished": metrics.requests_finished,
            "seconds": round(time.perf_counter() - started, 3),
        }
    except Exception:  # noqa: BLE001
        record = _crash_record(params)
        record["warm"] = warm
        record["seconds"] = round(time.perf_counter() - started, 3)
        return record


def selector_contrast_cell(params: dict) -> dict:
    """One leg of the tenant sweep's deficit-vs-priority contrast.

    200 high-priority arrivals at 50/s vs 8 low-priority stragglers on a
    KV-constrained cluster: the scheduler's expected-output KV charge is
    inflated so only a few requests fit concurrently and the selector
    alone decides whether the low tenant ever runs.
    """
    from repro.cluster import A100_40G, Cluster, L4, T4
    from repro.core.placement_types import ModelPlacement
    from repro.core.units import GBIT
    from repro.flow.graph import FlowGraph
    from repro.models.specs import ModelSpec
    from repro.scheduling import HelixScheduler
    from repro.sim import Request, Simulation
    from repro.tenancy import (
        FairnessConfig,
        TenancyConfig,
        TenantRegistry,
        TenantSpec,
    )

    selector = params["selector"]
    started = time.perf_counter()
    try:
        model = ModelSpec(
            name="tenant-tiny-8L",
            num_layers=8,
            hidden_size=1024,
            num_heads=8,
            num_kv_heads=8,
            intermediate_size=2816,
            nominal_params=8 * (4 * 1024**2 + 3 * 1024 * 2816),
        )
        cluster = Cluster(name="bench-tenant-contended")
        cluster.add_node("a100-0", A100_40G, region="r0")
        cluster.add_node("l4-0", L4, region="r0")
        cluster.add_node("t4-0", T4, region="r0")
        cluster.add_node("t4-1", T4, region="r0")
        cluster.connect_full_mesh(
            ["a100-0", "l4-0", "t4-0", "t4-1"], 10 * GBIT, 0.001,
            include_coordinator=True,
        )
        cluster.validate()
        placement = ModelPlacement.from_intervals(
            8,
            {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)},
        )
        requests = [
            Request(
                f"vip:{i:03d}", 64, 48,
                arrival_time=i * 0.02, tenant_id="vip",
            )
            for i in range(200)
        ] + [
            Request(
                f"lowly:{i}", 64, 48,
                arrival_time=i * 0.02, tenant_id="lowly",
            )
            for i in range(8)
        ]
        requests.sort(key=lambda r: (r.arrival_time, r.request_id))
        registry = TenantRegistry([
            TenantSpec("vip", priority=2, rate_share=1.0),
            TenantSpec("lowly", priority=0, rate_share=1.0),
        ])
        flow = FlowGraph(cluster, model, placement).solve()
        scheduler = HelixScheduler(
            cluster, model, placement, flow=flow,
            expected_output_len=400000.0,
        )
        sim = Simulation(
            cluster, model, placement, scheduler, requests,
            max_time=120.0, seed=0,
            tenancy=TenancyConfig(
                registry,
                fairness=FairnessConfig(
                    mode="W", window=1.0, backlog_windows=3, selector=selector
                ),
            ),
        )
        metrics = sim.run()
        manager = sim.tenancy
        return {
            "ok": True,
            "selector": selector,
            "starvation_events": len(manager.starvation_events),
            "starved_tenants": sorted(
                {e.tenant_id for e in manager.starvation_events}
            ),
            "fairness_index": round(manager.fairness_index(sim.now), 4),
            "tokens_by_tenant": dict(manager.tokens_by_tenant),
            "requests_finished": metrics.requests_finished,
            "seconds": round(time.perf_counter() - started, 3),
        }
    except Exception:  # noqa: BLE001
        record = _crash_record(params)
        record["selector"] = selector
        record["seconds"] = round(time.perf_counter() - started, 3)
        return record


# ----------------------------------------------------------------------
# Perf cells (the BENCH_* regenerators)
# ----------------------------------------------------------------------
def diurnal_perf_cell(params: dict) -> dict:
    """The diurnal hop-vs-batch timing (the batch sweep's headline case)."""
    from repro.bench.perftrack import PerfTracker
    from repro.bench.simbench import bench_sim_diurnal

    tier = params.get("tier", "large")
    started = time.perf_counter()
    try:
        tracker = PerfTracker(label=f"batch-sweep-{tier}")
        derived = bench_sim_diurnal(tracker, tier)
    except Exception:  # noqa: BLE001
        record = _crash_record(params)
        record["tier"] = tier
        record["seconds"] = round(time.perf_counter() - started, 3)
        return record
    prefix = f"sim_diurnal_{tier}"
    return {
        "ok": True,
        "tier": tier,
        "batch_tokens_per_s": round(derived[f"{prefix}_batch_tokens_per_s"], 1),
        "hop_table_tokens_per_s": round(
            derived[f"{prefix}_hop_table_tokens_per_s"], 1
        ),
        "batch_vs_hop": round(derived[f"{prefix}_batch_vs_hop"], 3),
        "span_days": round(derived[f"{prefix}_span_days"], 2),
        "seconds": round(time.perf_counter() - started, 3),
    }


def perf_suite_cell(params: dict) -> dict:
    """Regenerate one ``BENCH_*.json`` artifact (flow/milp/online/sim).

    The artifact is written to its committed repo-root path (or
    ``params["out"]``), exactly what the standalone ``bench_perf_*``
    scripts do — so every headline number is reachable through
    ``python -m repro.exp run bench-<suite>``.
    """
    suite = params["suite"]
    smoke = params.get("smoke", False)
    out = params.get("out")
    started = time.perf_counter()
    try:
        if suite == "flow":
            from repro.bench.perftrack import run_flow_bench
            document = run_flow_bench(smoke=smoke, path=out)
        elif suite == "milp":
            from repro.bench.perftrack import run_milp_bench
            document = run_milp_bench(smoke=smoke, path=out)
        elif suite == "online":
            from repro.bench.perftrack import run_online_bench
            document = run_online_bench(smoke=smoke, path=out)
        elif suite == "sim":
            from repro.bench.simbench import run_sim_bench
            document = run_sim_bench(smoke=smoke, path=out)
        else:
            raise ValueError(f"unknown perf suite {suite!r}")
    except Exception:  # noqa: BLE001
        record = _crash_record(params)
        record["suite"] = suite
        record["seconds"] = round(time.perf_counter() - started, 3)
        return record
    return {
        "ok": True,
        "suite": suite,
        "smoke": smoke,
        "label": document["label"],
        "derived": document["derived"],
        "seconds": round(time.perf_counter() - started, 3),
    }


#: The cell-function registry: manifest ``kind`` -> callable.
CELL_KINDS = {
    "verify": verify_cell,
    "policy_eval": policy_eval_cell,
    "batch_equivalence": batch_equivalence_cell,
    "spare_recovery": spare_recovery_cell,
    "selector_contrast": selector_contrast_cell,
    "diurnal_perf": diurnal_perf_cell,
    "perf_suite": perf_suite_cell,
}
