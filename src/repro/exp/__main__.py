"""CLI: ``python -m repro.exp`` — one command for the perf trajectory.

Subcommands::

    run <name>   execute a named experiment (resumable, --workers N)
    list         print every registered experiment
    index        rebuild the plotting index over the results root
    bench        self-benchmark the orchestrator (writes BENCH_exp.json)

``run`` exits 1 when any cell fails, so CI jobs routed through it keep
their fail-and-upload-artifact behavior.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.exp.experiments import EXPERIMENTS, get_experiment
from repro.exp.runner import run_experiment
from repro.exp.store import DEFAULT_ROOT, update_index, write_json

#: Experiments whose aggregate carries a headline block that legacy
#: ``BENCH_*.json`` consumers read (``--headline-out``).
_HEADLINE_BENCHES = {
    "chaos-sweep": "chaos_sweep",
    "elastic-sweep": "elastic_sweep",
    "tenant-sweep": "tenant_sweep",
    "batch-sweep": "batch_sweep",
    "policy-compare": "policy_compare",
}


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        spec = get_experiment(name)
        print(f"{name:<{width}}  {spec.description}")
    return 0


def _cmd_index(results_dir: str) -> int:
    path = update_index(Path(results_dir))
    print(f"index -> {path}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = get_experiment(
        args.name,
        seeds=args.seeds,
        size=args.size,
        milp_oracles=args.milp_oracles or None,
        diurnal_tier=args.diurnal_tier,
        families=tuple(args.families) if args.families else None,
    )
    report = run_experiment(
        spec,
        workers=args.workers,
        results_root=args.results_dir,
        force=args.force,
        quiet=args.quiet,
    )
    aggregate = report.aggregate

    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        # Legacy full-report path: the aggregate plus this invocation's
        # wall time (kept out of aggregate.json so resumes stay
        # byte-identical).
        write_json(out, {**aggregate, "wall_seconds": report.wall_seconds})
    if args.headline_out:
        bench = _HEADLINE_BENCHES.get(args.name)
        if bench is None or "headline" not in aggregate:
            print(
                f"--headline-out: experiment {args.name!r} has no "
                "headline block", file=sys.stderr,
            )
            return 2
        write_json(Path(args.headline_out), {
            "bench": bench,
            "size": aggregate.get("size"),
            "seeds": aggregate.get("seeds"),
            "derived": aggregate["headline"],
            "machine": report.machine,
        })

    print(
        f"\n{report.experiment}: {report.total_cells} cells "
        f"({report.executed} executed, {report.skipped} resumed), "
        f"{report.failures} failing, {report.wall_seconds}s "
        f"with {report.workers} worker(s)"
    )
    for cell in report.failing_cells:
        print(f"FAIL {cell['kind']} {json.dumps(cell['params'])}")
        if cell.get("repro"):
            print(f"  reproduce: {cell['repro']}")
    return 1 if report.failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.exp.selfbench import run_orchestration_bench

    document = run_orchestration_bench(
        workers=args.workers,
        seeds=args.seeds,
        size=args.size,
        path=args.output,
    )
    derived = document["derived"]
    print(
        f"orchestration: serial {derived['serial_seconds']}s vs "
        f"{args.workers} workers {derived['parallel_seconds']}s "
        f"(x{derived['speedup']}), fingerprints identical: "
        f"{derived['fingerprints_identical']}"
    )
    return 0 if derived["fingerprints_identical"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a named experiment")
    run.add_argument("name", choices=sorted(EXPERIMENTS))
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes (1 = inline, no pool)")
    run.add_argument("--seeds", type=int, default=None,
                     help="override the experiment's seed count")
    run.add_argument("--size", default=None, choices=("smoke", "full"))
    run.add_argument("--milp-oracles", action="store_true",
                     help="also run the MILP differential oracles")
    run.add_argument("--diurnal-tier", default=None,
                     choices=("small", "medium", "large"))
    run.add_argument("--families", nargs="+", default=None,
                     help="restrict the family axis")
    run.add_argument("--results-dir", default=str(DEFAULT_ROOT),
                     help="run-store root (records, manifests, index)")
    run.add_argument("--force", action="store_true",
                     help="re-execute cells even if their records exist")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-cell progress lines")
    run.add_argument("--output", default=None,
                     help="also write the aggregate report to this path")
    run.add_argument("--headline-out", default=None,
                     help="also write the BENCH_*.json headline document")

    sub.add_parser("list", help="print every registered experiment")

    index = sub.add_parser("index", help="rebuild the plotting index")
    index.add_argument("--results-dir", default=str(DEFAULT_ROOT))

    bench = sub.add_parser(
        "bench", help="self-benchmark the orchestrator (BENCH_exp.json)"
    )
    bench.add_argument("--workers", type=int, default=8)
    bench.add_argument("--seeds", type=int, default=25,
                       help="seeds per classic family (25 -> 100 addresses)")
    bench.add_argument("--size", default="full", choices=("smoke", "full"))
    bench.add_argument("--output", default="BENCH_exp.json")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "index":
        return _cmd_index(args.results_dir)
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
