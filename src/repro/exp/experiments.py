"""The named-experiment registry: every headline number has a name here.

``python -m repro.exp run <name>`` looks the name up in
:data:`EXPERIMENTS`; each entry is a factory taking keyword overrides
(``seeds=``, ``size=``, ...) so CI and developers run the same experiment
at different scales without editing code. The factories only *declare*
grids — expansion, hashing, execution, and aggregation live in
:mod:`repro.exp.spec` / :mod:`repro.exp.runner`.
"""

from __future__ import annotations

from repro.exp.spec import ExperimentSpec, RunCell
from repro.scenarios import (
    ALL_FAMILIES,
    CHAOS_FAMILY,
    ELASTIC_FAMILY,
    SCENARIO_FAMILIES,
    TENANT_FAMILY,
)

#: Scheduler methods the policy-comparison grid evaluates.
POLICY_METHODS = ("helix", "swarm", "random", "shortest-queue")


def scenario_sweep(
    seeds: int = 25,
    size: str = "full",
    milp_oracles: bool = False,
    families: tuple[str, ...] = SCENARIO_FAMILIES,
) -> ExperimentSpec:
    """The full verification matrix: every classic family x seed."""
    return ExperimentSpec.make(
        name="scenario-sweep",
        description=(
            "verification matrix: classic families x seeds, determinism "
            "+ flow differential (+ optional MILP oracles)"
        ),
        kind="verify",
        grid={"family": list(families), "seed": list(range(seeds))},
        base={"size": size, "milp_oracles": milp_oracles},
        aggregate="scenario_sweep",
    )


def chaos_sweep(seeds: int = 25, size: str = "full") -> ExperimentSpec:
    """Gray-failure soak: detection MTTD/MTTR headline across seeds."""
    return ExperimentSpec.make(
        name="chaos-sweep",
        description=(
            "chaos family soak: MTTD/MTTR, false positives, shed/lost "
            "rates (BENCH_chaos.json headline)"
        ),
        kind="verify",
        grid={"family": [CHAOS_FAMILY], "seed": list(range(seeds))},
        base={"size": size},
        aggregate="chaos_sweep",
    )


def elastic_sweep(seeds: int = 25, size: str = "full") -> ExperimentSpec:
    """Elasticity soak plus the warm-vs-cold spare recovery contrast."""
    return ExperimentSpec.make(
        name="elastic-sweep",
        description=(
            "elastic family soak + warm-vs-cold spare recovery MTTR "
            "(BENCH_elastic.json headline)"
        ),
        kind="verify",
        grid={"family": [ELASTIC_FAMILY], "seed": list(range(seeds))},
        base={"size": size},
        extra_cells=(
            RunCell.make("spare_recovery", {"warm": True}),
            RunCell.make("spare_recovery", {"warm": False}),
        ),
        aggregate="elastic_sweep",
    )


def tenant_sweep(seeds: int = 25, size: str = "full") -> ExperimentSpec:
    """Tenancy soak plus the deficit-vs-priority starvation contrast."""
    return ExperimentSpec.make(
        name="tenant-sweep",
        description=(
            "tenant family soak + deficit-vs-priority selector contrast "
            "(BENCH_tenant.json headline)"
        ),
        kind="verify",
        grid={"family": [TENANT_FAMILY], "seed": list(range(seeds))},
        base={"size": size},
        extra_cells=(
            RunCell.make("selector_contrast", {"selector": "deficit"}),
            RunCell.make("selector_contrast", {"selector": "priority"}),
        ),
        aggregate="tenant_sweep",
    )


def batch_sweep(
    seeds: int = 10,
    size: str = "full",
    diurnal_tier: str = "large",
) -> ExperimentSpec:
    """Batch-engine equivalence soak plus the diurnal perf headline."""
    return ExperimentSpec.make(
        name="batch-sweep",
        description=(
            "hop-vs-batch engine equivalence over all families + the "
            "diurnal tokens/s headline (BENCH_batch.json)"
        ),
        kind="batch_equivalence",
        grid={"family": list(ALL_FAMILIES), "seed": list(range(seeds))},
        base={"size": size},
        extra_cells=(
            RunCell.make("diurnal_perf", {"tier": diurnal_tier}),
        ),
        aggregate="batch_sweep",
    )


def policy_compare(
    seeds: int = 5,
    size: str = "full",
    families: tuple[str, ...] = SCENARIO_FAMILIES,
    policies: tuple[str, ...] = POLICY_METHODS,
) -> ExperimentSpec:
    """Same addresses under every scheduler: the policy-grid showcase.

    The grid repeats each (family, seed) cell once per policy; the plan
    cache in :mod:`repro.exp.cells` makes the repeats cheap (one
    placement search per address per worker).
    """
    return ExperimentSpec.make(
        name="policy-compare",
        description=(
            "every scheduling policy on the same scenario addresses; "
            "placement planned once per address"
        ),
        kind="policy_eval",
        grid={
            "family": list(families),
            "seed": list(range(seeds)),
            "scheduler": list(policies),
        },
        base={"size": size},
        aggregate="policy_compare",
    )


def _perf(name: str, suite: str, smoke: bool = False) -> ExperimentSpec:
    return ExperimentSpec.make(
        name=name,
        description=(
            f"regenerate BENCH_{suite}.json via the {suite} perf suite"
        ),
        kind="perf_suite",
        extra_cells=(
            RunCell.make("perf_suite", {"suite": suite, "smoke": smoke}),
        ),
        aggregate="perf_suite",
    )


def bench_flow(smoke: bool = False) -> ExperimentSpec:
    return _perf("bench-flow", "flow", smoke)


def bench_milp(smoke: bool = False) -> ExperimentSpec:
    return _perf("bench-milp", "milp", smoke)


def bench_online(smoke: bool = False) -> ExperimentSpec:
    return _perf("bench-online", "online", smoke)


def bench_sim(smoke: bool = False) -> ExperimentSpec:
    return _perf("bench-sim", "sim", smoke)


#: name -> factory(**overrides). ``python -m repro.exp list`` prints this.
EXPERIMENTS = {
    "scenario-sweep": scenario_sweep,
    "chaos-sweep": chaos_sweep,
    "elastic-sweep": elastic_sweep,
    "tenant-sweep": tenant_sweep,
    "batch-sweep": batch_sweep,
    "policy-compare": policy_compare,
    "bench-flow": bench_flow,
    "bench-milp": bench_milp,
    "bench-online": bench_online,
    "bench-sim": bench_sim,
}


def get_experiment(name: str, **overrides) -> ExperimentSpec:
    """Build a named experiment, applying only the overrides it accepts."""
    try:
        factory = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {name!r}; known: {known}"
        ) from None
    import inspect

    accepted = set(inspect.signature(factory).parameters)
    kwargs = {
        key: value for key, value in overrides.items()
        if key in accepted and value is not None
    }
    return factory(**kwargs)
