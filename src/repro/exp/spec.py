"""Experiment specifications: named grids expanded to content-hashed cells.

An *experiment* is a name plus a deterministic run manifest: the cartesian
product of a parameter grid (axes like family, seed, scheduling policy)
over a base configuration, optionally joined by hand-placed extra cells
(controlled contrast experiments that don't fit a grid). Every cell is
identified by a content hash of its ``(kind, params)`` — the hash is the
record's filename in the run store, the resume key after a kill, and the
dedup key when two experiments share a cell.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field


def _canonical(value):
    """Normalize params to a JSON-stable shape (tuples -> lists, etc.)."""
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    raise TypeError(
        f"cell params must be plain JSON data, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class RunCell:
    """One unit of work: a cell kind plus its JSON-plain parameters.

    Attributes:
        kind: Key into the cell-function registry
            (:data:`repro.exp.cells.CELL_KINDS`).
        params: Parameters passed to the cell function, as a sorted tuple
            of ``(key, json-string)`` pairs so the cell is hashable and
            order-independent.
    """

    kind: str
    params: tuple[tuple[str, str], ...]

    @classmethod
    def make(cls, kind: str, params: dict) -> "RunCell":
        return cls(
            kind=kind,
            params=tuple(sorted(
                (key, json.dumps(_canonical(value), sort_keys=True))
                for key, value in params.items()
            )),
        )

    @property
    def params_dict(self) -> dict:
        """The params as a plain dict (JSON round-tripped)."""
        return {key: json.loads(value) for key, value in self.params}

    @property
    def cell_hash(self) -> str:
        """Content hash of ``(kind, params)`` — the cell's stable identity.

        20 hex chars of SHA-256: filename-friendly and far beyond any
        realistic collision risk for manifest sizes in the thousands.
        """
        payload = json.dumps(
            {"kind": self.kind, "params": self.params_dict}, sort_keys=True
        ).encode()
        return hashlib.sha256(payload).hexdigest()[:20]

    def label(self) -> str:
        """Short human-readable cell description for progress lines."""
        params = self.params_dict
        parts = [
            str(params[key])
            for key in ("family", "seed", "scheduler", "suite", "tier")
            if key in params
        ]
        return f"{self.kind}:{'/'.join(parts)}" if parts else self.kind


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment: grid x base params -> deterministic manifest.

    Attributes:
        name: The experiment's registry name (``python -m repro.exp run
            <name>``).
        description: One line for ``python -m repro.exp list``.
        kind: Cell kind every grid cell runs as.
        grid: Ordered axes; the manifest is their cartesian product in
            declaration order (axis values keep their given order), so
            the manifest is deterministic and diffable.
        base: Constant params merged into every grid cell.
        extra_cells: Hand-placed cells appended after the grid
            (controlled contrast experiments, headline perf cases).
        aggregate: Key into the aggregator registry
            (:data:`repro.exp.aggregate.AGGREGATORS`).
    """

    name: str
    description: str
    kind: str
    grid: tuple[tuple[str, tuple], ...] = ()
    base: tuple[tuple[str, str], ...] = ()
    extra_cells: tuple[RunCell, ...] = ()
    aggregate: str = "generic"

    @classmethod
    def make(
        cls,
        name: str,
        description: str,
        kind: str,
        grid: dict | None = None,
        base: dict | None = None,
        extra_cells: tuple[RunCell, ...] = (),
        aggregate: str = "generic",
    ) -> "ExperimentSpec":
        return cls(
            name=name,
            description=description,
            kind=kind,
            grid=tuple(
                (axis, tuple(values)) for axis, values in (grid or {}).items()
            ),
            base=tuple(sorted(
                (key, json.dumps(_canonical(value), sort_keys=True))
                for key, value in (base or {}).items()
            )),
            extra_cells=tuple(extra_cells),
            aggregate=aggregate,
        )

    @property
    def base_dict(self) -> dict:
        return {key: json.loads(value) for key, value in self.base}

    def cells(self) -> list[RunCell]:
        """Expand the manifest: grid product (declaration order) + extras."""
        axes = [axis for axis, _ in self.grid]
        expanded: list[RunCell] = []
        if axes:
            value_lists = [values for _, values in self.grid]
            for combo in itertools.product(*value_lists):
                params = dict(self.base_dict)
                params.update(dict(zip(axes, combo)))
                expanded.append(RunCell.make(self.kind, params))
        expanded.extend(self.extra_cells)
        return expanded

    def manifest(self) -> dict:
        """The JSON manifest document: every cell with its content hash."""
        cells = self.cells()
        return {
            "experiment": self.name,
            "description": self.description,
            "aggregate": self.aggregate,
            "total_cells": len(cells),
            "cells": [
                {
                    "hash": cell.cell_hash,
                    "kind": cell.kind,
                    "params": cell.params_dict,
                }
                for cell in cells
            ],
        }
