"""The resumable run store: content-hash-keyed records plus indexes.

Layout under the store root (default ``benchmarks/results/exp``)::

    <root>/index.json                      plotting index over experiments
    <root>/<experiment>/manifest.json      the expanded cell manifest
    <root>/<experiment>/runs/<hash>.json   one record per completed cell
    <root>/<experiment>/runs.csv           flat per-run table for plotting
    <root>/<experiment>/aggregate.json     the experiment's headline doc

Records land atomically (tmp file + ``os.replace``) the moment a cell
finishes, so a killed sweep leaves only whole records behind; the next
invocation reads ``runs/`` and executes only the missing hashes.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

DEFAULT_ROOT = Path("benchmarks/results/exp")

#: Columns of runs.csv; every record key outside these goes into `extra`.
_CSV_COLUMNS = (
    "hash", "kind", "family", "seed", "size", "scheduler", "suite",
    "tier", "ok", "seconds", "fingerprint", "planner",
)


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def write_json(path: Path, document: dict) -> None:
    """Atomically write a JSON document with a stable layout."""
    _atomic_write_text(path, json.dumps(document, indent=2) + "\n")


class RunStore:
    """Filesystem store for one experiment's manifest, runs, and aggregate."""

    def __init__(self, root: Path | str, experiment: str):
        self.root = Path(root)
        self.experiment = experiment
        self.exp_dir = self.root / experiment
        self.runs_dir = self.exp_dir / "runs"

    # -- manifest ------------------------------------------------------
    def write_manifest(self, manifest: dict) -> Path:
        path = self.exp_dir / "manifest.json"
        write_json(path, manifest)
        return path

    def read_manifest(self) -> dict | None:
        path = self.exp_dir / "manifest.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- run records ---------------------------------------------------
    def run_path(self, cell_hash: str) -> Path:
        return self.runs_dir / f"{cell_hash}.json"

    def completed_hashes(self) -> set[str]:
        if not self.runs_dir.is_dir():
            return set()
        return {p.stem for p in self.runs_dir.glob("*.json")}

    def write_record(self, cell_hash: str, record: dict) -> Path:
        path = self.run_path(cell_hash)
        write_json(path, record)
        return path

    def read_record(self, cell_hash: str) -> dict | None:
        path = self.run_path(cell_hash)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def read_records(self, manifest: dict) -> list[dict]:
        """All completed records in manifest order (missing cells skipped).

        Manifest order — not directory order — so aggregates built from
        the records are byte-stable regardless of which worker finished
        which cell first.
        """
        records = []
        for entry in manifest["cells"]:
            record = self.read_record(entry["hash"])
            if record is not None:
                records.append({"hash": entry["hash"], **record})
        return records

    # -- derived artifacts ---------------------------------------------
    def write_csv(self, records: list[dict]) -> Path:
        """Flat per-run table (one row per record) for plotting scripts."""
        path = self.exp_dir / "runs.csv"
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(_CSV_COLUMNS)
            for record in records:
                writer.writerow([
                    "" if record.get(col) is None else record.get(col)
                    for col in _CSV_COLUMNS
                ])
        os.replace(tmp, path)
        return path

    def write_aggregate(self, aggregate: dict) -> Path:
        path = self.exp_dir / "aggregate.json"
        write_json(path, aggregate)
        return path

    def read_aggregate(self) -> dict | None:
        path = self.exp_dir / "aggregate.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())


def update_index(root: Path | str) -> Path:
    """Rebuild ``<root>/index.json``: experiment -> runs -> aggregate.

    The plotting entry point: a figure script loads the index, follows an
    experiment's ``runs_csv`` / ``aggregate`` paths, and never needs to
    know how the grid was expanded.
    """
    root = Path(root)
    experiments = {}
    for manifest_path in sorted(root.glob("*/manifest.json")):
        exp_dir = manifest_path.parent
        manifest = json.loads(manifest_path.read_text())
        name = manifest["experiment"]
        store = RunStore(root, name)
        completed = store.completed_hashes()
        wanted = {entry["hash"] for entry in manifest["cells"]}
        experiments[name] = {
            "description": manifest.get("description", ""),
            "manifest": str(manifest_path.relative_to(root)),
            "total_cells": manifest["total_cells"],
            "completed_cells": len(wanted & completed),
            "runs_dir": str((exp_dir / "runs").relative_to(root)),
            "runs_csv": (
                str((exp_dir / "runs.csv").relative_to(root))
                if (exp_dir / "runs.csv").exists() else None
            ),
            "aggregate": (
                str((exp_dir / "aggregate.json").relative_to(root))
                if (exp_dir / "aggregate.json").exists() else None
            ),
        }
    path = root / "index.json"
    write_json(path, {"experiments": experiments})
    return path
