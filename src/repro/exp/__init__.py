"""Process-parallel, resumable experiment orchestration.

One command for the whole perf trajectory: an *experiment* is a named
parameter grid (families x seeds x policies) expanded into a
deterministic manifest of content-hashed cells, executed by a worker
pool, with every completed cell's record persisted immediately so a
killed sweep resumes exactly where it stopped (``python -m repro.exp run
<name> --workers N``). Aggregators rebuild the legacy sweep-report and
``BENCH_*.json`` shapes from the records, and an index over all
experiments feeds plotting scripts.
"""

from repro.exp.aggregate import AGGREGATORS
from repro.exp.cells import CELL_KINDS
from repro.exp.experiments import EXPERIMENTS, get_experiment
from repro.exp.runner import RunReport, execute_cell, run_experiment
from repro.exp.spec import ExperimentSpec, RunCell
from repro.exp.store import DEFAULT_ROOT, RunStore, update_index

__all__ = [
    "AGGREGATORS",
    "CELL_KINDS",
    "DEFAULT_ROOT",
    "EXPERIMENTS",
    "ExperimentSpec",
    "RunCell",
    "RunReport",
    "RunStore",
    "execute_cell",
    "get_experiment",
    "run_experiment",
    "update_index",
]
