"""Self-benchmark: serial vs process-parallel orchestration, same grid.

Runs the classic 4-family scenario grid twice into throwaway stores —
once with ``--workers 1`` (inline) and once with the requested worker
count — asserts the per-cell determinism fingerprints are identical, and
writes ``BENCH_exp.json`` with the speedup and the machine stamp. On a
single-core container the speedup is honestly ~1x (and the stamp's
``cpu_count`` says why); the multi-core CI runner is where the parallel
path earns its keep.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.core.machine import machine_stamp
from repro.exp.experiments import scenario_sweep
from repro.exp.runner import run_experiment
from repro.exp.store import RunStore, write_json

DEFAULT_OUTPUT = Path("BENCH_exp.json")


def _fingerprints(store: RunStore, manifest: dict) -> dict[str, str]:
    return {
        record["hash"]: record.get("fingerprint", "")
        for record in store.read_records(manifest)
    }


def run_orchestration_bench(
    workers: int = 8,
    seeds: int = 25,
    size: str = "full",
    path: str | Path | None = DEFAULT_OUTPUT,
) -> dict:
    """Benchmark the orchestrator itself; returns the BENCH document."""
    spec = scenario_sweep(seeds=seeds, size=size)
    with tempfile.TemporaryDirectory(prefix="exp-bench-") as tmp:
        serial_root = Path(tmp) / "serial"
        parallel_root = Path(tmp) / "parallel"

        t0 = time.perf_counter()
        serial = run_experiment(
            spec, workers=1, results_root=serial_root, quiet=True
        )
        serial_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = run_experiment(
            spec, workers=workers, results_root=parallel_root, quiet=True
        )
        parallel_seconds = time.perf_counter() - t0

        manifest = spec.manifest()
        serial_fp = _fingerprints(RunStore(serial_root, spec.name), manifest)
        parallel_fp = _fingerprints(
            RunStore(parallel_root, spec.name), manifest
        )
        identical = serial_fp == parallel_fp and len(serial_fp) == len(
            manifest["cells"]
        )
        mismatched = sorted(
            h for h in set(serial_fp) | set(parallel_fp)
            if serial_fp.get(h) != parallel_fp.get(h)
        )
        aggregates_identical = json.dumps(
            {**serial.aggregate, "machine": None}, sort_keys=True
        ) == json.dumps(
            {**parallel.aggregate, "machine": None}, sort_keys=True
        )

    document = {
        "bench": "exp_orchestration",
        "size": size,
        "seeds_per_family": seeds,
        "derived": {
            "addresses": len(manifest["cells"]),
            "workers": workers,
            "serial_seconds": round(serial_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "speedup": (
                round(serial_seconds / parallel_seconds, 3)
                if parallel_seconds else None
            ),
            "fingerprints_identical": identical,
            "mismatched_cells": mismatched,
            "aggregates_identical": aggregates_identical,
            "serial_failures": serial.failures,
            "parallel_failures": parallel.failures,
        },
        "machine": machine_stamp(workers=workers),
    }
    if path:
        write_json(Path(path), document)
    return document
