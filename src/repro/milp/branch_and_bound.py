"""Best-first branch-and-bound over HiGHS LP relaxations.

scipy's ``milp`` wrapper exposes neither MIP warm starts nor incumbent
callbacks, but two of the paper's experiments need exactly those:

* §4.5 seeds the solver with heuristic placements ("initial values"
  ablation, Fig. 11b) — here the heuristic solution becomes the initial
  incumbent, pruning every subtree whose LP bound cannot beat it;
* §6.9 (Fig. 12) plots the best incumbent and best proven bound against
  solving time — here every incumbent/bound improvement is recorded in a
  trajectory.

The solver is a best-first B&B with the standard complement of MIP
machinery layered on top of the textbook skeleton:

* **delta-encoded node bounds** — a node stores only its ``(index, lo,
  hi)`` tightenings plus a parent pointer; full bound arrays are
  materialized transiently for the LP call instead of being copied into
  every node (the old solver kept two O(n) arrays per open node);
* **pseudocost branching** — per-variable up/down objective-degradation
  estimates pick the branching variable, falling back to most-fractional
  until a variable has history;
* **integer bound propagation** — before a child's LP is solved, its
  branched bound is propagated through the constraint activity bounds,
  often tightening other integer variables or proving the child
  infeasible without an LP call;
* **root reduced-cost fixing** — with a warm-started incumbent, root LP
  reduced costs permanently fix integer variables whose movement can
  never beat the incumbent;
* **LP rounding + diving** — each LP solution is rounded and checked
  feasible (cheap: one sparse mat-vec), and a bounded depth-first dive
  fixes fractional variables one at a time so good incumbents appear
  early, matching the paper's early-incumbent observation.

Every feature has an independent switch so ablations can measure its
node/LP-count contribution (``benchmarks/bench_perf_milp.py`` does).
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.milp.model import MilpProblem
from repro.milp.solution import MilpSolution, SolveStatus

_INTEGRALITY_TOL = 1e-6
_BOUND_EPS = 1e-9


@dataclass(frozen=True)
class TrajectoryPoint:
    """One improvement event during the solve.

    Attributes:
        elapsed: Seconds since the solve started.
        incumbent: Best feasible objective so far (NaN if none).
        bound: Best proven bound on the optimum so far.
        node_count: Nodes explored when the event happened.
    """

    elapsed: float
    incumbent: float
    bound: float
    node_count: int


@dataclass
class SolveStats:
    """Counters for one :meth:`BranchAndBoundSolver.solve` call.

    Attributes:
        lp_solves: LP relaxations solved (nodes, dives, and the root).
        dive_calls: Diving-heuristic invocations.
        dive_incumbents: Incumbents found by rounding/diving.
        propagation_prunes: Children pruned by bound propagation alone.
        fixed_at_root: Integer variables fixed by reduced cost at the root.
        time_to_first_incumbent: Seconds until the first feasible solution
            (0.0 when warm-started, NaN if none was ever found).
    """

    lp_solves: int = 0
    dive_calls: int = 0
    dive_incumbents: int = 0
    propagation_prunes: int = 0
    fixed_at_root: int = 0
    time_to_first_incumbent: float = float("nan")


class _Node:
    """A B&B node: bound deltas against the parent, not full arrays."""

    __slots__ = ("sequence", "parent", "deltas", "depth")

    def __init__(
        self,
        sequence: int,
        parent: "_Node | None",
        deltas: list[tuple[int, float, float]],
    ) -> None:
        self.sequence = sequence
        self.parent = parent
        self.deltas = deltas
        self.depth = 0 if parent is None else parent.depth + 1


class BranchAndBoundSolver:
    """Best-first branch-and-bound for :class:`MilpProblem`.

    Args:
        problem: The problem (maximization or minimization).
        time_limit: Wall-clock budget in seconds.
        node_limit: Maximum B&B nodes to explore.
        gap_tolerance: Stop when ``|bound - incumbent|`` is within this
            relative tolerance.
        early_stop_bound: Known bound on the optimum (the paper's
            "compute-sum" early-stop criterion, §4.5); the solve stops as
            soon as the incumbent is within ``gap_tolerance`` of it.
        stall_time: Optional incumbent-stall cutoff: stop once an incumbent
            exists and no improvement has been seen for this many seconds.
        pseudocost: Branch on pseudocost scores (most-fractional otherwise).
        diving: Run the LP-rounding/diving primal heuristic.
        propagation: Propagate integer bounds before each child LP.
        reduced_cost_fixing: Fix integer variables at the root from the
            root LP's reduced costs (needs an incumbent to compare against).
        dive_interval: Re-run the diving heuristic every this many nodes.
        dive_lp_budget: Maximum LP solves per dive.
    """

    def __init__(
        self,
        problem: MilpProblem,
        time_limit: float = 60.0,
        node_limit: int = 200_000,
        gap_tolerance: float = 1e-6,
        early_stop_bound: float | None = None,
        stall_time: float | None = None,
        pseudocost: bool = True,
        diving: bool = True,
        propagation: bool = True,
        reduced_cost_fixing: bool = True,
        dive_interval: int = 64,
        dive_lp_budget: int = 40,
    ) -> None:
        self.problem = problem
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.gap_tolerance = gap_tolerance
        self.early_stop_bound = early_stop_bound
        self.stall_time = stall_time
        self.use_pseudocost = pseudocost
        self.use_diving = diving
        self.use_propagation = propagation
        self.use_reduced_cost_fixing = reduced_cost_fixing
        self.dive_interval = max(1, dive_interval)
        self.dive_lp_budget = dive_lp_budget
        self.trajectory: list[TrajectoryPoint] = []
        self.stats = SolveStats()
        self._compiled = problem.compile()
        # Max-sense objective constant: ``compiled.c`` drops the affine
        # constant, but incumbents evaluated through the expression
        # (warm starts) include it — every internal value must agree.
        self._obj_constant = (
            self._compiled.objective_constant
            if problem.maximize
            else -self._compiled.objective_constant
        )
        self._integer_indices = np.nonzero(self._compiled.integrality)[0]
        self._is_integer = self._compiled.integrality.astype(bool)
        self._a_ub, self._b_ub, self._a_eq, self._b_eq = self._split_constraints()
        # Column view of the constraint matrix for propagation (var -> rows).
        a_csc = self._compiled.a_matrix.tocsc()
        self._col_indptr = a_csc.indptr
        self._col_rows = a_csc.indices
        n = len(self._compiled.c)
        # Pseudocost state: summed per-unit degradations and update counts,
        # [:, 0] for down (floor) branches and [:, 1] for up (ceil).
        self._pc_sum = np.zeros((n, 2))
        self._pc_cnt = np.zeros((n, 2), dtype=np.int64)
        # Running per-direction totals so branching does not re-reduce the
        # full (n, 2) arrays on every node expansion.
        self._pc_total_sum = np.zeros(2)
        self._pc_total_cnt = np.zeros(2, dtype=np.int64)

    def _split_constraints(self):
        """Convert two-sided row bounds into linprog's A_ub/A_eq form.

        Boolean-mask sparse slicing: three row selections on the CSR matrix
        instead of an O(rows) loop of single-row slices.
        """
        compiled = self._compiled
        a = compiled.a_matrix
        lower, upper = compiled.constraint_lower, compiled.constraint_upper
        eq_mask = lower == upper
        le_mask = ~eq_mask & np.isfinite(upper)
        ge_mask = ~eq_mask & np.isfinite(lower)

        a_eq = a[eq_mask] if eq_mask.any() else None
        b_eq = upper[eq_mask] if eq_mask.any() else None
        ub_blocks = []
        ub_rhs = []
        if le_mask.any():
            ub_blocks.append(a[le_mask])
            ub_rhs.append(upper[le_mask])
        if ge_mask.any():
            ub_blocks.append(-a[ge_mask])
            ub_rhs.append(-lower[ge_mask])
        if ub_blocks:
            a_ub = (
                ub_blocks[0]
                if len(ub_blocks) == 1
                else sparse.vstack(ub_blocks, format="csr")
            )
            b_ub = np.concatenate(ub_rhs)
        else:
            a_ub, b_ub = None, None
        return a_ub, b_ub, a_eq, b_eq

    # ------------------------------------------------------------------
    # Node bounds
    # ------------------------------------------------------------------
    def _node_bounds(self, node: _Node | None) -> tuple[np.ndarray, np.ndarray]:
        """Materialize a node's bound arrays from its delta chain."""
        lower = self._root_lower.copy()
        upper = self._root_upper.copy()
        chain = []
        while node is not None:
            chain.append(node)
            node = node.parent
        for ancestor in reversed(chain):
            for index, lo, hi in ancestor.deltas:
                if lo > lower[index]:
                    lower[index] = lo
                if hi < upper[index]:
                    upper[index] = hi
        return lower, upper

    # ------------------------------------------------------------------
    def solve(
        self, initial_incumbent: dict[str, float] | None = None
    ) -> MilpSolution:
        """Run B&B, optionally warm-started from a feasible assignment.

        Args:
            initial_incumbent: A feasible variable assignment (e.g. from a
                heuristic placement). Infeasible assignments are rejected
                with a ``ValueError`` so silent mis-seeding cannot skew the
                ablation results.
        """
        compiled = self._compiled
        start = time.perf_counter()
        deadline = start + self.time_limit
        counter = itertools.count()
        self.stats = SolveStats()
        self._best_values: dict[str, float] | None = None
        self._best_objective = -math.inf  # in maximization sense internally
        self._last_improvement = start
        self._start = start
        # Live counters so heuristic-found incumbents record trajectory
        # points with the same units as the main loop's.
        self._node_count = 0
        self._current_bound = math.inf

        if initial_incumbent is not None:
            violated = self.problem.check_feasible(initial_incumbent, tol=1e-5)
            if violated:
                raise ValueError(
                    f"initial incumbent violates constraints: {violated[:5]}"
                )
            self._best_values = dict(initial_incumbent)
            self._best_objective = self._objective_of(initial_incumbent)
            self.stats.time_to_first_incumbent = 0.0
            self._record(start, self._best_objective, math.inf, 0)

        self._root_lower = compiled.lower.astype(np.float64, copy=True)
        self._root_upper = compiled.upper.astype(np.float64, copy=True)
        root = _Node(sequence=next(counter), parent=None, deltas=[])
        root_relax = self._solve_relaxation(self._root_lower, self._root_upper)
        node_count = 0
        if root_relax is None:
            if self._best_values is not None:
                return self._finish(
                    self._best_objective, self._best_objective, start, node_count
                )
            return MilpSolution(
                status=SolveStatus.INFEASIBLE,
                solve_time=time.perf_counter() - start,
            )

        root_bound, root_x, root_result = root_relax
        self._current_bound = root_bound
        if (
            self.use_reduced_cost_fixing
            and math.isfinite(self._best_objective)
        ):
            self._fix_at_root(root_bound, root_x, root_result)
        if self.use_diving:
            self._try_rounding(root_x)
            self._dive(self._root_lower, self._root_upper, root_x, deadline)

        # Heap entries: (priority, sequence, node, bound, lp solution).
        heap: list[tuple[float, int, _Node, float, np.ndarray]] = []
        heapq.heappush(heap, (-root_bound, root.sequence, root, root_bound, root_x))
        global_bound = root_bound
        self._record(start, self._best_objective, global_bound, node_count)

        while heap:
            now = time.perf_counter()
            if now > deadline:
                break
            if node_count >= self.node_limit:
                break
            if (
                self.stall_time is not None
                and self._best_values is not None
                and now - self._last_improvement > self.stall_time
            ):
                break
            _, _, node, bound, x = heapq.heappop(heap)
            # Global bound = best remaining node bound (heap is best-first).
            global_bound = bound
            self._current_bound = bound
            if bound <= self._best_objective + self._abs_gap(self._best_objective):
                # Nothing left can beat the incumbent: proven optimal.
                global_bound = self._best_objective
                break
            if self._early_stop_reached(self._best_objective):
                break

            node_count += 1
            self._node_count = node_count
            branch_index = self._select_branch_variable(x)
            if branch_index is None:
                # Integral relaxation: new incumbent.
                if bound > self._best_objective:
                    self._adopt_incumbent_from_array(x, bound)
                    self._record(start, self._best_objective, global_bound, node_count)
                continue

            if (
                self.use_diving
                and node_count % self.dive_interval == 0
                and time.perf_counter() < deadline
            ):
                lower, upper = self._node_bounds(node)
                self.stats.dive_calls += 1
                self._dive(lower, upper, x, deadline)

            value = x[branch_index]
            floor_value = math.floor(value)
            frac = value - floor_value
            parent_lower, parent_upper = self._node_bounds(node)
            for branch in ("floor", "ceil"):
                if branch == "floor":
                    delta = (branch_index, -math.inf, float(floor_value))
                    frac_dist = frac
                    direction = 0
                else:
                    delta = (branch_index, float(floor_value + 1), math.inf)
                    frac_dist = 1.0 - frac
                    direction = 1
                lower = parent_lower.copy()
                upper = parent_upper.copy()
                if delta[1] > lower[branch_index]:
                    lower[branch_index] = delta[1]
                if delta[2] < upper[branch_index]:
                    upper[branch_index] = delta[2]
                if lower[branch_index] > upper[branch_index]:
                    continue
                deltas = [
                    (branch_index, lower[branch_index], upper[branch_index])
                ]
                if self.use_propagation:
                    extra = self._propagate(lower, upper, branch_index)
                    if extra is None:
                        self.stats.propagation_prunes += 1
                        continue
                    deltas.extend(extra)
                relax = self._solve_relaxation(lower, upper)
                if relax is None:
                    self._update_pseudocost(
                        branch_index, direction, frac_dist, bound - self._best_objective
                    )
                    continue
                child_bound, child_x, _ = relax
                self._update_pseudocost(
                    branch_index, direction, frac_dist, bound - child_bound
                )
                if child_bound <= self._best_objective + self._abs_gap(
                    self._best_objective
                ):
                    continue
                child = _Node(
                    sequence=next(counter), parent=node, deltas=deltas
                )
                heapq.heappush(
                    heap,
                    (-child_bound, child.sequence, child, child_bound, child_x),
                )

        if not heap:
            global_bound = self._best_objective
        if self._best_values is None:
            return MilpSolution(
                status=SolveStatus.NO_SOLUTION,
                bound=self._to_problem_sense(global_bound),
                solve_time=time.perf_counter() - start,
                node_count=node_count,
            )
        return self._finish(self._best_objective, global_bound, start, node_count)

    # ------------------------------------------------------------------
    # Incumbents
    # ------------------------------------------------------------------
    def _adopt_incumbent_from_array(self, x: np.ndarray, objective: float) -> None:
        """Install ``x`` (max-sense value ``objective``) as the incumbent."""
        if math.isnan(self.stats.time_to_first_incumbent):
            self.stats.time_to_first_incumbent = time.perf_counter() - self._start
        self._best_objective = objective
        self._best_values = {
            var.name: self._round_if_integer(x[var.index], var.is_integer)
            for var in self.problem.variables
        }
        self._last_improvement = time.perf_counter()

    def _candidate_objective(self, x: np.ndarray) -> float:
        """Max-sense objective of an array assignment.

        ``compiled.c`` is the min-sense cost vector (already negated for
        maximization), so the internal max-sense value is ``-(c @ x)``
        plus the objective's affine constant.
        """
        return -float(self._compiled.c @ x) + self._obj_constant

    def _try_rounding(self, x: np.ndarray) -> bool:
        """Round the integer part of an LP solution and adopt it if feasible.

        One sparse mat-vec against the compiled arrays — cheap enough to
        try on every dive step.
        """
        compiled = self._compiled
        candidate = x.copy()
        rounded = np.rint(candidate[self._integer_indices])
        candidate[self._integer_indices] = rounded
        np.clip(candidate, self._root_lower, self._root_upper, out=candidate)
        activity = compiled.a_matrix @ candidate
        tol = 1e-6
        feasible = bool(
            np.all(activity <= compiled.constraint_upper + tol)
            and np.all(activity >= compiled.constraint_lower - tol)
        )
        if not feasible:
            return False
        objective = self._candidate_objective(candidate)
        if objective <= self._best_objective + _BOUND_EPS:
            return False
        self.stats.dive_incumbents += 1
        self._adopt_incumbent_from_array(candidate, objective)
        self._record(
            self._start, self._best_objective, self._current_bound, self._node_count
        )
        return True

    def _dive(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        x: np.ndarray,
        deadline: float,
    ) -> None:
        """Depth-first dive: fix the most fractional variable, re-solve.

        Bounded by ``dive_lp_budget`` LP solves; every intermediate LP
        solution also gets the cheap rounding check, so the dive usually
        produces an incumbent well before reaching an integral LP.
        """
        lower = lower.copy()
        upper = upper.copy()
        x = x.copy()
        budget = self.dive_lp_budget
        while budget > 0 and time.perf_counter() < deadline:
            if self._try_rounding(x):
                return
            index = self._most_fractional(x)
            if index is None:
                objective = self._candidate_objective(x)
                if objective > self._best_objective + _BOUND_EPS:
                    self.stats.dive_incumbents += 1
                    self._adopt_incumbent_from_array(x, objective)
                    self._record(
                        self._start,
                        self._best_objective,
                        self._current_bound,
                        self._node_count,
                    )
                return
            target = float(np.rint(x[index]))
            target = min(max(target, lower[index]), upper[index])
            saved = (lower[index], upper[index])
            lower[index] = upper[index] = target
            relax = self._solve_relaxation(lower, upper)
            budget -= 1
            if relax is None:
                # Flip once to the other side of the fraction.
                other = float(
                    math.floor(x[index])
                    if target > x[index]
                    else math.ceil(x[index])
                )
                other = min(max(other, saved[0]), saved[1])
                if other == target:
                    return
                lower[index] = upper[index] = other
                relax = self._solve_relaxation(lower, upper)
                budget -= 1
                if relax is None:
                    return
            bound, x, _ = relax
            if bound <= self._best_objective + self._abs_gap(self._best_objective):
                return  # this dive can no longer beat the incumbent

    # ------------------------------------------------------------------
    # Root reduced-cost fixing
    # ------------------------------------------------------------------
    def _fix_at_root(
        self, root_bound: float, x: np.ndarray, result
    ) -> None:
        """Fix integer variables the root reduced costs prove immovable.

        With incumbent ``z`` and root bound ``U`` (max sense), moving a
        nonbasic integer variable one unit off its bound degrades the LP
        bound by at least its reduced cost ``d``; if ``U - d < z`` no
        improving solution can move it, so its bound becomes permanent.
        """
        lower_info = getattr(result, "lower", None)
        upper_info = getattr(result, "upper", None)
        reduced_lower = getattr(lower_info, "marginals", None)
        reduced_upper = getattr(upper_info, "marginals", None)
        if reduced_lower is None or reduced_upper is None:
            return
        slack = root_bound - (
            self._best_objective + self._abs_gap(self._best_objective)
        )
        if slack < 0:
            return
        lo, hi = self._root_lower, self._root_upper
        for index in self._integer_indices:
            if hi[index] - lo[index] < 0.5:
                continue
            at_lower = abs(x[index] - lo[index]) <= _INTEGRALITY_TOL
            at_upper = abs(x[index] - hi[index]) <= _INTEGRALITY_TOL
            if at_lower and reduced_lower[index] > slack + _BOUND_EPS:
                hi[index] = lo[index]
                self.stats.fixed_at_root += 1
            elif at_upper and -reduced_upper[index] > slack + _BOUND_EPS:
                lo[index] = hi[index]
                self.stats.fixed_at_root += 1

    # ------------------------------------------------------------------
    # Bound propagation
    # ------------------------------------------------------------------
    def _propagate(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        seed_index: int,
        row_budget: int = 2000,
    ) -> list[tuple[int, float, float]] | None:
        """Tighten integer bounds implied by a branching decision.

        Standard activity-based domain propagation over the rows touching
        each changed variable. Mutates ``lower``/``upper`` in place and
        returns the list of extra ``(index, lo, hi)`` deltas, or ``None``
        when a row's activity bounds prove the child infeasible.
        """
        compiled = self._compiled
        a = compiled.a_matrix
        indptr, indices, data = a.indptr, a.indices, a.data
        cl, cu = compiled.constraint_lower, compiled.constraint_upper
        queue = deque([seed_index])
        queued = {seed_index}
        deltas: list[tuple[int, float, float]] = []

        def tighten(col: int, implied: float, is_upper: bool) -> bool:
            """Apply one implied bound; False when the domain empties."""
            current = upper[col] if is_upper else lower[col]
            improves = implied < current - 1e-9 if is_upper else implied > current + 1e-9
            if not improves:
                return True
            if is_upper:
                upper[col] = float(implied)
            else:
                lower[col] = float(implied)
            if lower[col] > upper[col]:
                return False
            deltas.append((col, lower[col], upper[col]))
            if col not in queued:
                queue.append(col)
                queued.add(col)
            return True

        while queue and row_budget > 0:
            var_index = queue.popleft()
            queued.discard(var_index)
            row_start = self._col_indptr[var_index]
            row_end = self._col_indptr[var_index + 1]
            for row in self._col_rows[row_start:row_end]:
                row_budget -= 1
                if row_budget <= 0:
                    break
                cols = indices[indptr[row]:indptr[row + 1]]
                coefs = data[indptr[row]:indptr[row + 1]]
                positive = coefs > 0
                lo_c = np.where(positive, lower[cols], upper[cols])
                hi_c = np.where(positive, upper[cols], lower[cols])
                min_activity = float(coefs @ lo_c)
                max_activity = float(coefs @ hi_c)
                if (
                    min_activity > cu[row] + 1e-7
                    or max_activity < cl[row] - 1e-7
                ):
                    return None
                tighten_upper = np.isfinite(cu[row]) and np.isfinite(min_activity)
                tighten_lower = np.isfinite(cl[row]) and np.isfinite(max_activity)
                if not (tighten_upper or tighten_lower):
                    continue
                for position, col in enumerate(cols):
                    if not self._is_integer[col]:
                        continue
                    coef = coefs[position]
                    if tighten_upper:
                        # row @ x <= cu: the col term may use at most the
                        # slack the other terms' minimum activity leaves.
                        residual = min_activity - coef * (
                            lower[col] if coef > 0 else upper[col]
                        )
                        slack = cu[row] - residual
                        if coef > 0:
                            ok = tighten(
                                col, math.floor(slack / coef + 1e-9), True
                            )
                        else:
                            ok = tighten(
                                col, math.ceil(slack / coef - 1e-9), False
                            )
                        if not ok:
                            return None
                    if tighten_lower:
                        # row @ x >= cl, symmetric with the maximum activity.
                        residual = max_activity - coef * (
                            upper[col] if coef > 0 else lower[col]
                        )
                        slack = cl[row] - residual
                        if coef > 0:
                            ok = tighten(
                                col, math.ceil(slack / coef - 1e-9), False
                            )
                        else:
                            ok = tighten(
                                col, math.floor(slack / coef + 1e-9), True
                            )
                        if not ok:
                            return None
        return deltas

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------
    def _fractional_candidates(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Integer indices with fractional LP values, and their fractions."""
        if len(self._integer_indices) == 0:
            return None
        xi = x[self._integer_indices]
        frac = xi - np.floor(xi)
        score = np.minimum(frac, 1.0 - frac)
        mask = score > _INTEGRALITY_TOL
        if not mask.any():
            return None
        return self._integer_indices[mask], frac[mask]

    def _select_branch_variable(self, x: np.ndarray) -> int | None:
        """Pseudocost-scored branching variable (None if x is integral)."""
        candidates = self._fractional_candidates(x)
        if candidates is None:
            return None
        if not self.use_pseudocost:
            return self._most_fractional(x)
        indices, frac = candidates
        counts = self._pc_cnt[indices]
        sums = self._pc_sum[indices]
        total_cnt = self._pc_total_cnt
        total_sum = self._pc_total_sum
        # Global average pseudocost stands in for unseen variables.
        default_down = total_sum[0] / total_cnt[0] if total_cnt[0] else 1.0
        default_up = total_sum[1] / total_cnt[1] if total_cnt[1] else 1.0
        down = np.where(
            counts[:, 0] > 0,
            sums[:, 0] / np.maximum(counts[:, 0], 1),
            default_down,
        )
        up = np.where(
            counts[:, 1] > 0,
            sums[:, 1] / np.maximum(counts[:, 1], 1),
            default_up,
        )
        eps = 1e-6
        score = np.maximum(down * frac, eps) * np.maximum(up * (1.0 - frac), eps)
        # Break score ties toward the most fractional variable.
        score = score * (1.0 + np.minimum(frac, 1.0 - frac))
        return int(indices[int(np.argmax(score))])

    def _update_pseudocost(
        self, index: int, direction: int, frac_dist: float, degradation: float
    ) -> None:
        """Record an observed per-unit objective degradation for a branch."""
        if not self.use_pseudocost:
            return
        if not math.isfinite(degradation):
            return
        degradation = max(0.0, degradation)
        unit = degradation / max(frac_dist, 1e-6)
        self._pc_sum[index, direction] += unit
        self._pc_cnt[index, direction] += 1
        self._pc_total_sum[direction] += unit
        self._pc_total_cnt[direction] += 1

    def _most_fractional(self, x: np.ndarray) -> int | None:
        """Index of the integer variable farthest from integrality."""
        candidates = self._fractional_candidates(x)
        if candidates is None:
            return None
        indices, frac = candidates
        score = np.minimum(frac, 1.0 - frac)
        return int(indices[int(np.argmax(score))])

    # ------------------------------------------------------------------
    def _finish(self, objective, bound, start, node_count) -> MilpSolution:
        elapsed = time.perf_counter() - start
        optimal = abs(bound - objective) <= self._abs_gap(objective)
        self._record(start, objective, bound, node_count)
        return MilpSolution(
            status=SolveStatus.OPTIMAL if optimal else SolveStatus.FEASIBLE,
            objective=self._to_problem_sense(objective),
            values=self._best_values,
            bound=self._to_problem_sense(bound),
            solve_time=elapsed,
            node_count=node_count,
        )

    def _abs_gap(self, objective: float) -> float:
        return self.gap_tolerance * max(1.0, abs(objective))

    def _early_stop_reached(self, best_objective: float) -> bool:
        if self.early_stop_bound is None or not math.isfinite(best_objective):
            return False
        target = self.early_stop_bound
        return best_objective >= target - self._abs_gap(target)

    def _to_problem_sense(self, value: float) -> float:
        """Convert an internal max-sense value back to the problem's sense."""
        return value if self.problem.maximize else -value

    def _objective_of(self, values: dict[str, float]) -> float:
        objective = self.problem.objective.evaluate(values)
        return objective if self.problem.maximize else -objective

    def _solve_relaxation(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> tuple[float, np.ndarray, object] | None:
        """LP-relax under the given bounds.

        Returns ``(bound in max sense, solution, raw result)`` or ``None``
        when infeasible. ``compiled.c`` is already negated for maximization
        problems, so linprog always minimizes and ``-result.fun`` plus the
        objective's affine constant is the max-sense bound.
        """
        self.stats.lp_solves += 1
        result = linprog(
            c=self._compiled.c,
            A_ub=self._a_ub,
            b_ub=self._b_ub,
            A_eq=self._a_eq,
            b_eq=self._b_eq,
            bounds=np.column_stack([lower, upper]),
            method="highs",
        )
        if not result.success:
            return None
        return -result.fun + self._obj_constant, result.x, result

    def _round_if_integer(self, value: float, is_integer: bool) -> float:
        return float(round(value)) if is_integer else float(value)

    def _record(self, start: float, incumbent: float, bound: float, nodes: int) -> None:
        self.trajectory.append(
            TrajectoryPoint(
                elapsed=time.perf_counter() - start,
                incumbent=incumbent if math.isfinite(incumbent) else float("nan"),
                bound=bound,
                node_count=nodes,
            )
        )
