"""Best-first branch-and-bound over HiGHS LP relaxations.

scipy's ``milp`` wrapper exposes neither MIP warm starts nor incumbent
callbacks, but two of the paper's experiments need exactly those:

* §4.5 seeds the solver with heuristic placements ("initial values"
  ablation, Fig. 11b) — here the heuristic solution becomes the initial
  incumbent, pruning every subtree whose LP bound cannot beat it;
* §6.9 (Fig. 12) plots the best incumbent and best proven bound against
  solving time — here every incumbent/bound improvement is recorded in a
  trajectory.

The solver is a textbook best-first B&B: solve the LP relaxation, pick the
most fractional integer variable, branch floor/ceil, explore nodes in order
of their relaxation bound. It is not Gurobi-fast, but the Fig. 12 cluster
(10 nodes) solves in seconds and the algorithmic behaviour — early
high-quality incumbents, slowly tightening bound — matches the paper's
observation.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.milp.model import MilpProblem
from repro.milp.solution import MilpSolution, SolveStatus

_INTEGRALITY_TOL = 1e-6


@dataclass(frozen=True)
class TrajectoryPoint:
    """One improvement event during the solve.

    Attributes:
        elapsed: Seconds since the solve started.
        incumbent: Best feasible objective so far (NaN if none).
        bound: Best proven bound on the optimum so far.
        node_count: Nodes explored when the event happened.
    """

    elapsed: float
    incumbent: float
    bound: float
    node_count: int


@dataclass(order=True)
class _Node:
    """A B&B node ordered by its relaxation bound (best-first)."""

    priority: float
    sequence: int
    lower_bounds: np.ndarray = field(compare=False)
    upper_bounds: np.ndarray = field(compare=False)


class BranchAndBoundSolver:
    """Best-first branch-and-bound for :class:`MilpProblem`.

    Args:
        problem: The problem (maximization or minimization).
        time_limit: Wall-clock budget in seconds.
        node_limit: Maximum B&B nodes to explore.
        gap_tolerance: Stop when ``|bound - incumbent|`` is within this
            relative tolerance.
        early_stop_bound: Known bound on the optimum (the paper's
            "compute-sum" early-stop criterion, §4.5); the solve stops as
            soon as the incumbent is within ``gap_tolerance`` of it.
    """

    def __init__(
        self,
        problem: MilpProblem,
        time_limit: float = 60.0,
        node_limit: int = 200_000,
        gap_tolerance: float = 1e-6,
        early_stop_bound: float | None = None,
    ) -> None:
        self.problem = problem
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.gap_tolerance = gap_tolerance
        self.early_stop_bound = early_stop_bound
        self.trajectory: list[TrajectoryPoint] = []
        self._compiled = problem.compile()
        self._integer_indices = np.nonzero(self._compiled.integrality)[0]
        self._a_ub, self._b_ub, self._a_eq, self._b_eq = self._split_constraints()

    def _split_constraints(self):
        """Convert two-sided row bounds into linprog's A_ub/A_eq form."""
        compiled = self._compiled
        a = compiled.a_matrix
        lower, upper = compiled.constraint_lower, compiled.constraint_upper
        ub_rows, ub_rhs = [], []
        eq_rows, eq_rhs = [], []
        for row in range(a.shape[0]):
            row_matrix = a.getrow(row)
            if lower[row] == upper[row]:
                eq_rows.append(row_matrix)
                eq_rhs.append(upper[row])
                continue
            if np.isfinite(upper[row]):
                ub_rows.append(row_matrix)
                ub_rhs.append(upper[row])
            if np.isfinite(lower[row]):
                ub_rows.append(-row_matrix)
                ub_rhs.append(-lower[row])
        from scipy import sparse as _sparse

        a_ub = _sparse.vstack(ub_rows).tocsr() if ub_rows else None
        a_eq = _sparse.vstack(eq_rows).tocsr() if eq_rows else None
        return (
            a_ub,
            np.array(ub_rhs) if ub_rhs else None,
            a_eq,
            np.array(eq_rhs) if eq_rhs else None,
        )

    # ------------------------------------------------------------------
    def solve(
        self, initial_incumbent: dict[str, float] | None = None
    ) -> MilpSolution:
        """Run B&B, optionally warm-started from a feasible assignment.

        Args:
            initial_incumbent: A feasible variable assignment (e.g. from a
                heuristic placement). Infeasible assignments are rejected
                with a ``ValueError`` so silent mis-seeding cannot skew the
                ablation results.
        """
        compiled = self._compiled
        sign = -1.0 if compiled.maximize else 1.0
        start = time.perf_counter()
        counter = itertools.count()

        best_values: dict[str, float] | None = None
        best_objective = -math.inf  # in maximization sense internally

        if initial_incumbent is not None:
            violated = self.problem.check_feasible(initial_incumbent, tol=1e-5)
            if violated:
                raise ValueError(
                    f"initial incumbent violates constraints: {violated[:5]}"
                )
            best_values = dict(initial_incumbent)
            best_objective = self._objective_of(initial_incumbent)
            self._record(start, best_objective, math.inf, 0)

        root = _Node(
            priority=0.0,
            sequence=next(counter),
            lower_bounds=compiled.lower.copy(),
            upper_bounds=compiled.upper.copy(),
        )
        root_relax = self._solve_relaxation(root)
        node_count = 0
        if root_relax is None:
            if best_values is not None:
                return self._finish(
                    best_values, best_objective, best_objective, start, node_count
                )
            return MilpSolution(
                status=SolveStatus.INFEASIBLE,
                solve_time=time.perf_counter() - start,
            )

        heap: list[_Node] = []
        root_bound, root_x = root_relax
        root.priority = -root_bound  # heapq is a min-heap; negate for best-first
        heapq.heappush(heap, root)
        node_bounds = {root.sequence: root_bound}
        node_solutions = {root.sequence: root_x}
        global_bound = root_bound
        self._record(start, best_objective, global_bound, node_count)

        while heap:
            if time.perf_counter() - start > self.time_limit:
                break
            if node_count >= self.node_limit:
                break
            node = heapq.heappop(heap)
            bound = node_bounds.pop(node.sequence)
            x = node_solutions.pop(node.sequence)
            # Global bound = best remaining node bound (heap is best-first).
            global_bound = bound
            if bound <= best_objective + self._abs_gap(best_objective):
                # Nothing left can beat the incumbent: proven optimal.
                global_bound = best_objective
                break
            if self._early_stop_reached(best_objective):
                break

            node_count += 1
            frac_index = self._most_fractional(x)
            if frac_index is None:
                # Integral relaxation: new incumbent.
                if bound > best_objective:
                    best_objective = bound
                    best_values = {
                        var.name: self._round_if_integer(x[var.index], var.is_integer)
                        for var in self.problem.variables
                    }
                    self._record(start, best_objective, global_bound, node_count)
                continue

            value = x[frac_index]
            for branch in ("floor", "ceil"):
                lower = node.lower_bounds.copy()
                upper = node.upper_bounds.copy()
                if branch == "floor":
                    upper[frac_index] = math.floor(value)
                else:
                    lower[frac_index] = math.ceil(value)
                if lower[frac_index] > upper[frac_index]:
                    continue
                child = _Node(
                    priority=0.0,
                    sequence=next(counter),
                    lower_bounds=lower,
                    upper_bounds=upper,
                )
                relax = self._solve_relaxation(child)
                if relax is None:
                    continue
                child_bound, child_x = relax
                if child_bound <= best_objective + self._abs_gap(best_objective):
                    continue
                child.priority = -child_bound
                heapq.heappush(heap, child)
                node_bounds[child.sequence] = child_bound
                node_solutions[child.sequence] = child_x

        if not heap:
            global_bound = best_objective
        if best_values is None:
            return MilpSolution(
                status=SolveStatus.NO_SOLUTION,
                bound=self._to_problem_sense(global_bound),
                solve_time=time.perf_counter() - start,
                node_count=node_count,
            )
        return self._finish(best_values, best_objective, global_bound, start, node_count)

    # ------------------------------------------------------------------
    def _finish(self, values, objective, bound, start, node_count) -> MilpSolution:
        elapsed = time.perf_counter() - start
        optimal = abs(bound - objective) <= self._abs_gap(objective)
        self._record(start, objective, bound, node_count)
        return MilpSolution(
            status=SolveStatus.OPTIMAL if optimal else SolveStatus.FEASIBLE,
            objective=self._to_problem_sense(objective),
            values=values,
            bound=self._to_problem_sense(bound),
            solve_time=elapsed,
            node_count=node_count,
        )

    def _abs_gap(self, objective: float) -> float:
        return self.gap_tolerance * max(1.0, abs(objective))

    def _early_stop_reached(self, best_objective: float) -> bool:
        if self.early_stop_bound is None or not math.isfinite(best_objective):
            return False
        target = self.early_stop_bound
        return best_objective >= target - self._abs_gap(target)

    def _to_problem_sense(self, value: float) -> float:
        """Convert an internal max-sense value back to the problem's sense."""
        return value if self.problem.maximize else -value

    def _objective_of(self, values: dict[str, float]) -> float:
        objective = self.problem.objective.evaluate(values)
        return objective if self.problem.maximize else -objective

    def _solve_relaxation(self, node: _Node) -> tuple[float, np.ndarray] | None:
        """LP-relax the node; returns (bound in max sense, solution) or None.

        ``compiled.c`` is already negated for maximization problems, so
        linprog always minimizes and ``-result.fun`` is the max-sense bound.
        """
        result = linprog(
            c=self._compiled.c,
            A_ub=self._a_ub,
            b_ub=self._b_ub,
            A_eq=self._a_eq,
            b_eq=self._b_eq,
            bounds=np.column_stack([node.lower_bounds, node.upper_bounds]),
            method="highs",
        )
        if not result.success:
            return None
        return -result.fun, result.x

    def _most_fractional(self, x: np.ndarray) -> int | None:
        """Index of the integer variable farthest from integrality."""
        best_index = None
        best_score = _INTEGRALITY_TOL
        for index in self._integer_indices:
            frac_part = x[index] - math.floor(x[index])
            score = min(frac_part, 1.0 - frac_part)
            if score > best_score:
                best_score = score
                best_index = int(index)
        return best_index

    def _round_if_integer(self, value: float, is_integer: bool) -> float:
        return float(round(value)) if is_integer else float(value)

    def _record(self, start: float, incumbent: float, bound: float, nodes: int) -> None:
        self.trajectory.append(
            TrajectoryPoint(
                elapsed=time.perf_counter() - start,
                incumbent=incumbent if math.isfinite(incumbent) else float("nan"),
                bound=bound,
                node_count=nodes,
            )
        )
