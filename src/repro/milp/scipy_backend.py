"""Solve :class:`~repro.milp.model.MilpProblem` with scipy's HiGHS MILP."""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.errors import SolverError
from repro.milp.model import MilpProblem
from repro.milp.solution import MilpSolution, SolveStatus

# scipy.optimize.milp status codes (see scipy docs).
_STATUS_OPTIMAL = 0
_STATUS_INFEASIBLE = 2
_STATUS_UNBOUNDED = 3
_STATUS_TIME_OR_ITER = 1


def solve_with_highs(
    problem: MilpProblem,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
    objective_cutoff: float | None = None,
) -> MilpSolution:
    """Solve a problem with HiGHS via ``scipy.optimize.milp``.

    Args:
        problem: The problem to solve.
        time_limit: Optional wall-clock limit in seconds.
        mip_rel_gap: Optional relative MIP gap at which to stop early (the
            paper's early-stop criterion uses the compute-sum upper bound;
            planners translate it into a gap/cutoff here).
        objective_cutoff: Optional known lower bound on the optimum (for
            maximization). Injected as a linear cut ``objective >= cutoff``,
            emulating a heuristic warm start by pruning the tree below the
            heuristic's value.

    Returns:
        A :class:`MilpSolution`; ``status`` reflects optimality or an early
        stop with/without an incumbent.
    """
    work = problem
    if objective_cutoff is not None:
        work = _with_cutoff(problem, objective_cutoff)

    compiled = work.compile()
    options: dict[str, object] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)

    constraints = None
    if compiled.a_matrix.shape[0] > 0:
        constraints = LinearConstraint(
            compiled.a_matrix, compiled.constraint_lower, compiled.constraint_upper
        )

    start = time.perf_counter()
    result = milp(
        c=compiled.c,
        constraints=constraints,
        integrality=compiled.integrality,
        bounds=Bounds(compiled.lower, compiled.upper),
        options=options or None,
    )
    elapsed = time.perf_counter() - start

    sign = -1.0 if compiled.maximize else 1.0
    if result.status == _STATUS_INFEASIBLE:
        # With a cutoff cut, "infeasible" only means "nothing better than
        # the cutoff exists", which the caller must disambiguate.
        return MilpSolution(status=SolveStatus.INFEASIBLE, solve_time=elapsed)
    if result.status == _STATUS_UNBOUNDED:
        return MilpSolution(status=SolveStatus.UNBOUNDED, solve_time=elapsed)
    if result.x is None:
        return MilpSolution(status=SolveStatus.NO_SOLUTION, solve_time=elapsed)
    if result.status not in (_STATUS_OPTIMAL, _STATUS_TIME_OR_ITER):
        raise SolverError(f"HiGHS returned unexpected status {result.status}: {result.message}")

    values = {
        var.name: float(result.x[var.index]) for var in problem.variables
    }
    objective = sign * float(result.fun) + compiled.objective_constant
    bound = _extract_bound(result, sign, compiled.objective_constant, objective)
    status = (
        SolveStatus.OPTIMAL
        if result.status == _STATUS_OPTIMAL
        else SolveStatus.FEASIBLE
    )
    node_count = int(getattr(result, "mip_node_count", 0) or 0)
    return MilpSolution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        solve_time=elapsed,
        node_count=node_count,
    )


def _extract_bound(result, sign: float, constant: float, objective: float) -> float:
    """Best proven bound in the problem's own sense."""
    dual = getattr(result, "mip_dual_bound", None)
    if dual is None or not np.isfinite(dual):
        return objective if result.status == _STATUS_OPTIMAL else sign * float("inf")
    return sign * float(dual) + constant


def _with_cutoff(problem: MilpProblem, cutoff: float) -> MilpProblem:
    """Clone-by-reference with an extra ``objective >= cutoff`` cut.

    The clone shares Variable objects, so solution values map back to the
    original problem's variable names directly.
    """
    clone = MilpProblem(name=f"{problem.name}+cutoff")
    clone.variables = problem.variables
    clone._names = problem._names
    clone.constraints = list(problem.constraints)
    clone.objective = problem.objective
    clone.maximize = problem.maximize
    if problem.maximize:
        clone.constraints.append(problem.objective >= cutoff)
    else:
        clone.constraints.append(problem.objective <= cutoff)
    return clone
