"""Solver-independent solution container."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped early (time/gap) with an incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NO_SOLUTION = "no_solution"  # stopped early without an incumbent

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class MilpSolution:
    """A (possibly suboptimal) MILP solution.

    Attributes:
        status: Solve outcome.
        objective: Objective value of the incumbent (in the problem's own
            sense — already negated back for maximization problems).
        values: Variable name -> value for the incumbent.
        bound: Best proven bound on the optimum (upper bound when
            maximizing). ``inf``/-``inf`` when unknown.
        solve_time: Wall-clock seconds spent solving.
        node_count: Branch-and-bound nodes explored, when known.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: dict[str, float] = field(default_factory=dict)
    bound: float = float("inf")
    solve_time: float = 0.0
    node_count: int = 0

    @property
    def gap(self) -> float:
        """Relative optimality gap ``|bound - objective| / max(1, |obj|)``."""
        if not self.status.has_solution:
            return float("inf")
        return abs(self.bound - self.objective) / max(1.0, abs(self.objective))
