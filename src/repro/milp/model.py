"""A minimal MILP modeling layer.

Supports exactly what the Helix placement formulation needs: bounded
continuous/integer/binary variables, linear expressions with operator
overloading, ``<=``/``>=``/``==`` constraints, and one linear objective.
Problems compile to the sparse arrays scipy's HiGHS interface consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Union

import numpy as np
from scipy import sparse

Number = Union[int, float]


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Variable:
    """A decision variable. Create via :meth:`MilpProblem.add_var`."""

    __slots__ = ("name", "lower", "upper", "is_integer", "index")

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        is_integer: bool,
        index: int,
    ) -> None:
        if lower > upper:
            raise ValueError(f"variable {name!r}: lower {lower} > upper {upper}")
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.is_integer = is_integer
        self.index = index

    # Arithmetic lifts a Variable into a LinExpr.
    def _expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other):
        return self._expr() + other

    def __radd__(self, other):
        return self._expr() + other

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-1.0) * self._expr() + other

    def __mul__(self, coefficient: Number):
        return self._expr() * coefficient

    def __rmul__(self, coefficient: Number):
        return self._expr() * coefficient

    def __neg__(self):
        return self._expr() * -1.0

    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self._expr() == other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        kind = "int" if self.is_integer else "cont"
        return f"Variable({self.name!r}, [{self.lower}, {self.upper}], {kind})"


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0
    ) -> None:
        self.terms: dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    @staticmethod
    def _coerce(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot use {type(value).__name__} in a linear expression")

    def __add__(self, other) -> "LinExpr":
        other = self._coerce(other)
        result = self.copy()
        for var, coef in other.terms.items():
            result.terms[var] = result.terms.get(var, 0.0) + coef
        result.constant += other.constant
        return result

    def __radd__(self, other) -> "LinExpr":
        return self + other

    def __sub__(self, other) -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, coefficient: Number) -> "LinExpr":
        if not isinstance(coefficient, (int, float)):
            raise TypeError("expressions can only be scaled by numbers")
        return LinExpr(
            {var: coef * coefficient for var, coef in self.terms.items()},
            self.constant * coefficient,
        )

    def __rmul__(self, coefficient: Number) -> "LinExpr":
        return self * coefficient

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, Sense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, Sense.GE)

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, Sense.EQ)

    def __hash__(self) -> int:
        return id(self)

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Evaluate under a ``{variable name: value}`` assignment."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * values[var.name]
        return total

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


def lin_sum(items: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers into one LinExpr (like ``sum``)."""
    total = LinExpr()
    for item in items:
        total = total + item
    return total


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalized form."""

    expr: LinExpr
    sense: Sense
    name: str = ""

    def violated_by(self, values: Mapping[str, float], tol: float = 1e-6) -> bool:
        """Whether an assignment violates the constraint beyond ``tol``."""
        lhs = self.expr.evaluate(values)
        if self.sense is Sense.LE:
            return lhs > tol
        if self.sense is Sense.GE:
            return lhs < -tol
        return abs(lhs) > tol


@dataclass
class CompiledArrays:
    """Sparse form: minimize ``c @ x`` s.t. ``cl <= A @ x <= cu``, bounds."""

    c: np.ndarray
    a_matrix: sparse.csr_matrix
    constraint_lower: np.ndarray
    constraint_upper: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    maximize: bool
    objective_constant: float


class MilpProblem:
    """A MILP: variables, constraints, and a single linear objective."""

    def __init__(self, name: str = "milp") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.maximize: bool = True
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
        integer: bool = False,
    ) -> Variable:
        """Create and register a variable; names must be unique."""
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(name, lower, upper, integer, index=len(self.variables))
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_binary(self, name: str) -> Variable:
        """Create a 0/1 variable."""
        return self.add_var(name, 0.0, 1.0, integer=True)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built via expression comparison."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (use <=, >=, == on "
                f"expressions), got {type(constraint).__name__}"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr, maximize: bool = True) -> None:
        """Set the linear objective."""
        self.objective = LinExpr._coerce(expr)
        self.maximize = maximize

    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self.variables if v.is_integer)

    def compile(self) -> CompiledArrays:
        """Compile to the sparse arrays scipy's HiGHS interface consumes."""
        n = self.num_variables
        c = np.zeros(n)
        for var, coef in self.objective.terms.items():
            c[var.index] += coef
        sign = -1.0 if self.maximize else 1.0
        c = sign * c

        rows, cols, data = [], [], []
        constraint_lower = np.empty(len(self.constraints))
        constraint_upper = np.empty(len(self.constraints))
        for row, constraint in enumerate(self.constraints):
            rhs = -constraint.expr.constant
            for var, coef in constraint.expr.terms.items():
                if coef == 0.0:
                    continue
                rows.append(row)
                cols.append(var.index)
                data.append(coef)
            if constraint.sense is Sense.LE:
                constraint_lower[row] = -np.inf
                constraint_upper[row] = rhs
            elif constraint.sense is Sense.GE:
                constraint_lower[row] = rhs
                constraint_upper[row] = np.inf
            else:
                constraint_lower[row] = rhs
                constraint_upper[row] = rhs

        a_matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self.constraints), n)
        )
        lower = np.array([v.lower for v in self.variables])
        upper = np.array([v.upper for v in self.variables])
        integrality = np.array(
            [1 if v.is_integer else 0 for v in self.variables], dtype=int
        )
        return CompiledArrays(
            c=c,
            a_matrix=a_matrix,
            constraint_lower=constraint_lower,
            constraint_upper=constraint_upper,
            lower=lower,
            upper=upper,
            integrality=integrality,
            maximize=self.maximize,
            objective_constant=self.objective.constant,
        )

    def check_feasible(self, values: Mapping[str, float], tol: float = 1e-5) -> list[str]:
        """Names/indices of constraints an assignment violates."""
        violated = []
        for i, constraint in enumerate(self.constraints):
            if constraint.violated_by(values, tol):
                violated.append(constraint.name or f"constraint[{i}]")
        return violated
