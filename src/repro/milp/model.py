"""A minimal MILP modeling layer.

Supports exactly what the Helix placement formulation needs: bounded
continuous/integer/binary variables, linear expressions with operator
overloading, ``<=``/``>=``/``==`` constraints, and one linear objective.
Problems compile to the sparse arrays scipy's HiGHS interface consumes.

Compilation is incremental: each constraint caches its sparse row once,
and the problem caches the assembled constraint matrix. Appending or
truncating constraints (the planner's LNS loop does both every round)
only compiles the delta; variable bounds are re-gathered on every
:meth:`MilpProblem.compile` call so bound tightening never needs a
structural recompile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Union

import numpy as np
from scipy import sparse

Number = Union[int, float]


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Variable:
    """A decision variable. Create via :meth:`MilpProblem.add_var`."""

    __slots__ = ("name", "lower", "upper", "is_integer", "index")

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        is_integer: bool,
        index: int,
    ) -> None:
        if lower > upper:
            raise ValueError(f"variable {name!r}: lower {lower} > upper {upper}")
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.is_integer = is_integer
        self.index = index

    # Arithmetic lifts a Variable into a LinExpr.
    def _expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other):
        return self._expr() + other

    def __radd__(self, other):
        return self._expr() + other

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-1.0) * self._expr() + other

    def __mul__(self, coefficient: Number):
        return self._expr() * coefficient

    def __rmul__(self, coefficient: Number):
        return self._expr() * coefficient

    def __neg__(self):
        return self._expr() * -1.0

    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self._expr() == other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        kind = "int" if self.is_integer else "cont"
        return f"Variable({self.name!r}, [{self.lower}, {self.upper}], {kind})"


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant", "_arrays")

    def __init__(
        self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0
    ) -> None:
        self.terms: dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)
        self._arrays: tuple | None = None

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    @staticmethod
    def _coerce(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot use {type(value).__name__} in a linear expression")

    def __add__(self, other) -> "LinExpr":
        other = self._coerce(other)
        result = self.copy()
        for var, coef in other.terms.items():
            result.terms[var] = result.terms.get(var, 0.0) + coef
        result.constant += other.constant
        return result

    def __radd__(self, other) -> "LinExpr":
        return self + other

    def __sub__(self, other) -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, coefficient: Number) -> "LinExpr":
        if not isinstance(coefficient, (int, float)):
            raise TypeError("expressions can only be scaled by numbers")
        return LinExpr(
            {var: coef * coefficient for var, coef in self.terms.items()},
            self.constant * coefficient,
        )

    def __rmul__(self, coefficient: Number) -> "LinExpr":
        return self * coefficient

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, Sense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, Sense.GE)

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, Sense.EQ)

    def __hash__(self) -> int:
        return id(self)

    def term_arrays(self) -> tuple[tuple[str, ...], np.ndarray, np.ndarray]:
        """Cached ``(names, variable indices, coefficients)`` arrays.

        The cache keys on the term count, which catches every mutation the
        expression API can produce (operators always build fresh objects;
        only in-place ``terms`` edits of an already-compiled expression
        could go stale, and nothing in the codebase does that).
        """
        cached = self._arrays
        if cached is not None and cached[0] == len(self.terms):
            return cached[1], cached[2], cached[3]
        count = len(self.terms)
        names = tuple(var.name for var in self.terms)
        indices = np.fromiter(
            (var.index for var in self.terms), dtype=np.int64, count=count
        )
        coefs = np.fromiter(self.terms.values(), dtype=np.float64, count=count)
        self._arrays = (count, names, indices, coefs)
        return names, indices, coefs

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Evaluate under a ``{variable name: value}`` assignment."""
        names, _, coefs = self.term_arrays()
        if len(names) < 16:  # small expressions: the plain loop is faster
            total = self.constant
            for name, coef in zip(names, coefs):
                total += coef * values[name]
            return float(total)
        vals = np.fromiter(
            (values[name] for name in names), dtype=np.float64, count=len(names)
        )
        return float(self.constant + coefs @ vals)

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


def lin_sum(items: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers into one LinExpr (like ``sum``)."""
    total = LinExpr()
    for item in items:
        total = total + item
    return total


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalized form."""

    expr: LinExpr
    sense: Sense
    name: str = ""
    _row: tuple | None = field(default=None, init=False, repr=False, compare=False)

    def violated_by(self, values: Mapping[str, float], tol: float = 1e-6) -> bool:
        """Whether an assignment violates the constraint beyond ``tol``."""
        lhs = self.expr.evaluate(values)
        if self.sense is Sense.LE:
            return lhs > tol
        if self.sense is Sense.GE:
            return lhs < -tol
        return abs(lhs) > tol

    def row(self) -> tuple[np.ndarray, np.ndarray, float, float]:
        """Cached sparse row ``(columns, coefficients, lower, upper)``.

        Zero coefficients are dropped; the two-sided row bounds encode the
        sense (``lower <= row @ x <= upper``).
        """
        if self._row is None:
            _, indices, coefs = self.expr.term_arrays()
            nonzero = coefs != 0.0
            if not nonzero.all():
                indices, coefs = indices[nonzero], coefs[nonzero]
            rhs = -self.expr.constant
            if self.sense is Sense.LE:
                lower, upper = -np.inf, rhs
            elif self.sense is Sense.GE:
                lower, upper = rhs, np.inf
            else:
                lower = upper = rhs
            self._row = (indices, coefs, lower, upper)
        return self._row


@dataclass
class CompiledArrays:
    """Sparse form: minimize ``c @ x`` s.t. ``cl <= A @ x <= cu``, bounds.

    ``c``, ``a_matrix``, and the constraint bound arrays may be shared with
    the problem's compile cache — treat them as read-only. ``lower``/
    ``upper``/``integrality`` are fresh per compile and safe to mutate.
    """

    c: np.ndarray
    a_matrix: sparse.csr_matrix
    constraint_lower: np.ndarray
    constraint_upper: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    maximize: bool
    objective_constant: float


@dataclass
class _CompiledStructure:
    """Cached constraint matrix + objective, keyed by constraint identity."""

    ids: tuple[int, ...]  # id() of each constraint, in row order
    num_vars: int
    objective_id: int
    objective_terms: int
    maximize: bool
    c: np.ndarray
    a_matrix: sparse.csr_matrix
    constraint_lower: np.ndarray
    constraint_upper: np.ndarray
    objective_constant: float


class MilpProblem:
    """A MILP: variables, constraints, and a single linear objective."""

    def __init__(self, name: str = "milp") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.maximize: bool = True
        self._names: set[str] = set()
        self._structure: _CompiledStructure | None = None

    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
        integer: bool = False,
    ) -> Variable:
        """Create and register a variable; names must be unique."""
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(name, lower, upper, integer, index=len(self.variables))
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_binary(self, name: str) -> Variable:
        """Create a 0/1 variable."""
        return self.add_var(name, 0.0, 1.0, integer=True)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built via expression comparison."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (use <=, >=, == on "
                f"expressions), got {type(constraint).__name__}"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr, maximize: bool = True) -> None:
        """Set the linear objective."""
        self.objective = LinExpr._coerce(expr)
        self.maximize = maximize

    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self.variables if v.is_integer)

    def invalidate(self) -> None:
        """Drop every compile cache (problem structure and constraint rows)."""
        self._structure = None
        for constraint in self.constraints:
            constraint._row = None

    def _assemble_rows(
        self, constraints: list[Constraint]
    ) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
        """Stack cached constraint rows into a CSR block."""
        m = len(constraints)
        rows = [c.row() for c in constraints]
        lengths = np.fromiter((len(r[0]) for r in rows), dtype=np.int64, count=m)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if m:
            indices = np.concatenate([r[0] for r in rows])
            data = np.concatenate([r[1] for r in rows])
        else:
            indices = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.float64)
        a_matrix = sparse.csr_matrix(
            (data, indices, indptr), shape=(m, self.num_variables)
        )
        lower = np.fromiter((r[2] for r in rows), dtype=np.float64, count=m)
        upper = np.fromiter((r[3] for r in rows), dtype=np.float64, count=m)
        return a_matrix, lower, upper

    def _compile_structure(self) -> _CompiledStructure:
        """Constraint matrix + objective, reusing the cache when possible.

        The cache keys on constraint object identity, so the planner's LNS
        loop — which appends a handful of rows, solves, and truncates them
        again — only ever compiles the delta.
        """
        ids = tuple(map(id, self.constraints))
        cached = self._structure
        reusable = (
            cached is not None
            and cached.num_vars == self.num_variables
            and cached.objective_id == id(self.objective)
            and cached.objective_terms == len(self.objective.terms)
            and cached.maximize == self.maximize
        )
        if reusable and cached.ids == ids:
            return cached

        a_matrix = constraint_lower = constraint_upper = None
        if reusable:
            old = len(cached.ids)
            if len(ids) > old and ids[:old] == cached.ids:
                block, lo, hi = self._assemble_rows(self.constraints[old:])
                a_matrix = sparse.vstack(
                    [cached.a_matrix, block], format="csr"
                )
                constraint_lower = np.concatenate([cached.constraint_lower, lo])
                constraint_upper = np.concatenate([cached.constraint_upper, hi])
            elif len(ids) < old and cached.ids[: len(ids)] == ids:
                a_matrix = cached.a_matrix[: len(ids)]
                constraint_lower = cached.constraint_lower[: len(ids)]
                constraint_upper = cached.constraint_upper[: len(ids)]
        if a_matrix is None:
            a_matrix, constraint_lower, constraint_upper = self._assemble_rows(
                self.constraints
            )

        if reusable:
            c = cached.c
            objective_constant = cached.objective_constant
        else:
            c = np.zeros(self.num_variables)
            _, obj_indices, obj_coefs = self.objective.term_arrays()
            np.add.at(c, obj_indices, obj_coefs)
            if self.maximize:
                c = -c
            objective_constant = self.objective.constant

        self._structure = _CompiledStructure(
            ids=ids,
            num_vars=self.num_variables,
            objective_id=id(self.objective),
            objective_terms=len(self.objective.terms),
            maximize=self.maximize,
            c=c,
            a_matrix=a_matrix,
            constraint_lower=constraint_lower,
            constraint_upper=constraint_upper,
            objective_constant=objective_constant,
        )
        return self._structure

    def compile(self) -> CompiledArrays:
        """Compile to the sparse arrays scipy's HiGHS interface consumes.

        The constraint matrix and objective come from an incremental cache;
        variable bounds and integrality are gathered fresh on every call so
        bound mutations (LNS fixing, branch-and-bound) are always honored.
        """
        structure = self._compile_structure()
        n = self.num_variables
        lower = np.fromiter((v.lower for v in self.variables), np.float64, count=n)
        upper = np.fromiter((v.upper for v in self.variables), np.float64, count=n)
        integrality = np.fromiter(
            (1 if v.is_integer else 0 for v in self.variables), np.int64, count=n
        )
        return CompiledArrays(
            c=structure.c,
            a_matrix=structure.a_matrix,
            constraint_lower=structure.constraint_lower,
            constraint_upper=structure.constraint_upper,
            lower=lower,
            upper=upper,
            integrality=integrality,
            maximize=self.maximize,
            objective_constant=structure.objective_constant,
        )

    def check_feasible(self, values: Mapping[str, float], tol: float = 1e-5) -> list[str]:
        """Names/indices of constraints an assignment violates.

        Vectorized: one sparse mat-vec over the compiled structure instead
        of a Python loop per constraint. Assignments that do not cover
        every variable fall back to the per-constraint reference path.
        """
        if not self.constraints:
            return []
        try:
            x = np.fromiter(
                (values[v.name] for v in self.variables),
                np.float64,
                count=self.num_variables,
            )
        except KeyError:
            return [
                constraint.name or f"constraint[{i}]"
                for i, constraint in enumerate(self.constraints)
                if constraint.violated_by(values, tol)
            ]
        structure = self._compile_structure()
        activity = structure.a_matrix @ x
        bad = np.nonzero(
            (activity > structure.constraint_upper + tol)
            | (activity < structure.constraint_lower - tol)
        )[0]
        return [
            self.constraints[i].name or f"constraint[{i}]" for i in bad
        ]
