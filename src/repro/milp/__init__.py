"""Mixed-integer linear programming layer.

The paper solves its placement MILP with Gurobi; offline we rely on two
interchangeable solvers behind one modeling API:

* :mod:`repro.milp.scipy_backend` — scipy's HiGHS-based
  ``scipy.optimize.milp`` (the workhorse);
* :mod:`repro.milp.branch_and_bound` — our own best-first branch-and-bound
  over HiGHS LP relaxations, which exposes warm starts (heuristic
  incumbents) and an incumbent/bound trajectory, the two Gurobi features
  the paper's §4.5/§6.9 experiments rely on that scipy does not surface.

The modeling layer (:mod:`repro.milp.model`) is deliberately tiny: linear
expressions over named variables, ``<=``/``>=``/``==`` constraints, and a
single linear objective.
"""

from repro.milp.model import (
    Variable,
    LinExpr,
    Constraint,
    MilpProblem,
    Sense,
    lin_sum,
)
from repro.milp.solution import MilpSolution, SolveStatus
from repro.milp.scipy_backend import solve_with_highs
from repro.milp.branch_and_bound import (
    BranchAndBoundSolver,
    TrajectoryPoint,
)

__all__ = [
    "Variable",
    "LinExpr",
    "Constraint",
    "MilpProblem",
    "Sense",
    "lin_sum",
    "MilpSolution",
    "SolveStatus",
    "solve_with_highs",
    "BranchAndBoundSolver",
    "TrajectoryPoint",
]
