"""Performance tracking for the flow kernel, MILP stack, and planner.

The repo's north star is running as fast as the hardware allows, so perf
needs a trajectory, not anecdotes. This module provides:

* :class:`PerfTracker` — a tiny timing harness that records named timings
  plus derived metrics (speedups) and serializes them to JSON;
* flow scenarios — the repeated placement-evaluation microbenchmark
  (incremental :meth:`~repro.flow.graph.FlowGraph.reevaluate` vs. a
  rebuild-per-candidate baseline), a raw kernel-reuse microbenchmark
  (:meth:`~repro.flow.maxflow.FlowNetwork.set_capacity` + re-solve vs.
  rebuilding the network), and an end-to-end Helix planner run with the
  incremental evaluator on and off;
* MILP scenarios — incremental formulation compile vs. full recompile
  across an LNS-like constraint churn stream, vectorized feasibility
  checking vs. the per-constraint loop, branch-and-bound with pseudocost
  branching/diving/propagation on vs. off (node, LP, and
  time-to-first-incumbent counts), and end-to-end Helix MILP planning in
  the pre-optimization configuration vs. the adaptive/incremental path on
  both solver backends;
* online scenarios — the scripted fig12-small churn scenario (kill the
  planned node carrying the most flow mid-run; measure the windowed
  goodput recovery ratio and the warm-started replanning latency) and a
  seeded random-churn soak;
* :func:`run_flow_bench` / :func:`run_milp_bench` / :func:`run_online_bench`
  — run everything and write ``BENCH_flow.json`` / ``BENCH_milp.json`` /
  ``BENCH_online.json`` at the repo root so future PRs can compare
  against a recorded baseline.

``benchmarks/bench_perf_flow.py``, ``benchmarks/bench_perf_milp.py``, and
``benchmarks/bench_online_churn.py`` drive the full-size configurations;
the tier-1 suite runs the same harnesses at smoke sizes (``smoke=True``)
on every test run so the JSON artifact generation never rots.
"""

from __future__ import annotations

import json
import math
import platform
import random
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.cluster import Cluster, Profiler, A100_40G, L4, T4
from repro.core.placement_types import ModelPlacement
from repro.core.units import GBIT
from repro.flow.graph import FlowGraph
from repro.flow.maxflow import FlowNetwork
from repro.models.specs import LLAMA_70B, ModelSpec

SCHEMA_VERSION = 1
REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_flow.json"
DEFAULT_MILP_OUTPUT = REPO_ROOT / "BENCH_milp.json"
DEFAULT_ONLINE_OUTPUT = REPO_ROOT / "BENCH_online.json"

#: A small model whose formulations our pure-Python branch-and-bound can
#: solve to proven optimality in benchmark time.
TINY_BENCH_MODEL = ModelSpec(
    name="tiny-8L",
    num_layers=8,
    hidden_size=1024,
    num_heads=8,
    num_kv_heads=8,
    intermediate_size=2816,
    nominal_params=8 * (4 * 1024**2 + 3 * 1024 * 2816),
)


def _json_safe(value):
    """Replace non-finite floats with ``None`` recursively.

    Metrics may legitimately be NaN (e.g. ``time_to_recovery`` when goodput
    never re-reached the threshold); ``json.dumps`` would emit a bare
    ``NaN`` token, which strict RFC-8259 parsers (jq, most non-Python
    tooling) reject in the CI-uploaded ``BENCH_*.json`` artifacts.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


@dataclass
class Timing:
    """One timed workload: ``repeats`` measured laps of a callable."""

    name: str
    repeats: int
    total_s: float
    mean_s: float
    best_s: float
    meta: dict = field(default_factory=dict)


class PerfTracker:
    """Collects named timings and derived metrics, writes them as JSON."""

    def __init__(self, label: str = "flow-perf") -> None:
        self.label = label
        self.timings: list[Timing] = []
        self.derived: dict[str, float] = {}

    def time(self, name: str, fn, repeats: int = 3, **meta) -> Timing:
        """Time ``repeats`` calls of ``fn()`` and record the laps."""
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        laps = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            laps.append(time.perf_counter() - start)
        timing = Timing(
            name=name,
            repeats=repeats,
            total_s=sum(laps),
            mean_s=sum(laps) / len(laps),
            best_s=min(laps),
            meta=dict(meta),
        )
        self.timings.append(timing)
        return timing

    def record(self, name: str, value: float) -> None:
        """Record a derived scalar metric (a speedup, a count, ...)."""
        self.derived[name] = value

    def speedup(self, name: str, baseline: Timing, fast: Timing) -> float:
        """Record and return ``baseline / fast`` on best-lap times."""
        value = baseline.best_s / fast.best_s if fast.best_s > 0 else float("inf")
        self.derived[name] = value
        return value

    def to_dict(self) -> dict:
        from repro.core.machine import machine_stamp

        # Perf numbers are only comparable on the machine that produced
        # them; the stamp (CPU model, core count, worker count) makes
        # cross-run diffs honest.
        return _json_safe({
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": machine_stamp(),
            "timings": [asdict(t) for t in self.timings],
            "derived": dict(self.derived),
        })

    def write(self, path: Path | str | None = None) -> Path:
        """Serialize to ``path`` (default: ``BENCH_flow.json`` at repo root)."""
        target = Path(path) if path is not None else DEFAULT_OUTPUT
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------
def bench_cluster(num_nodes: int) -> Cluster:
    """A heterogeneous full-mesh cluster (A100/L4/T4 round-robin)."""
    cluster = Cluster(name=f"bench-{num_nodes}")
    gpus = (A100_40G, L4, T4)
    node_ids = []
    for i in range(num_nodes):
        node_id = f"n{i:03d}"
        cluster.add_node(node_id, gpus[i % len(gpus)], region="r0")
        node_ids.append(node_id)
    cluster.connect_full_mesh(node_ids, 10 * GBIT, 0.001, include_coordinator=True)
    cluster.validate()
    return cluster


def candidate_placements(
    cluster: Cluster,
    model: ModelSpec,
    num_candidates: int,
    num_stages: int = 8,
    moves_per_step: int = 3,
    seed: int = 0,
) -> list[ModelPlacement]:
    """An LNS-like stream of valid placements differing by a few nodes each.

    Starts from a round-robin assignment of nodes to ``num_stages`` equal
    layer chunks, then randomly re-stages ``moves_per_step`` nodes per
    candidate while never emptying a stage, so every candidate keeps full
    layer coverage — the same neighborhood structure the planner's LNS
    explores.
    """
    num_layers = model.num_layers
    # Every stage keeps >= 2 replicas so single-node moves stay legal.
    num_stages = max(2, min(num_stages, num_layers, len(cluster.node_ids) // 2))
    rng = random.Random(seed)
    bounds = [
        (k * num_layers // num_stages, (k + 1) * num_layers // num_stages)
        for k in range(num_stages)
    ]
    node_ids = cluster.node_ids
    assign = {nid: i % num_stages for i, nid in enumerate(node_ids)}
    counts = [0] * num_stages
    for stage in assign.values():
        counts[stage] += 1
    placements = []
    for _ in range(num_candidates):
        for _ in range(moves_per_step):
            nid = node_ids[rng.randrange(len(node_ids))]
            src = assign[nid]
            dst = rng.randrange(num_stages)
            if dst == src or counts[src] <= 1:
                continue
            counts[src] -= 1
            counts[dst] += 1
            assign[nid] = dst
        placements.append(
            ModelPlacement.from_intervals(
                num_layers, {nid: bounds[s] for nid, s in assign.items()}
            )
        )
    return placements


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
def bench_kernel_reuse(
    tracker: PerfTracker,
    num_edges: int = 2000,
    num_solves: int = 30,
    repeats: int = 3,
    seed: int = 1,
) -> float:
    """Raw kernel: ``set_capacity`` + re-solve vs. rebuild-per-solve.

    A layered random network is solved ``num_solves`` times with a handful
    of capacities retuned between solves — once rebuilding the network from
    its edge list every time, once reusing the same network. Returns the
    recorded speedup.
    """
    rng = random.Random(seed)
    num_nodes = max(8, num_edges // 8)
    edges = []
    for i in range(num_edges):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v:
            continue
        edges.append((f"v{min(u, v)}", f"v{max(u, v)}", rng.uniform(1.0, 50.0)))
    edges.append(("s", "v0", 100.0))
    edges.append((f"v{num_nodes - 1}", "t", 100.0))
    retunes = [
        (rng.randrange(len(edges)), rng.uniform(1.0, 50.0))
        for _ in range(num_solves * 4)
    ]

    def rebuild_per_solve() -> None:
        caps = [cap for (_, _, cap) in edges]
        cursor = 0
        for _ in range(num_solves):
            for _ in range(4):
                idx, cap = retunes[cursor]
                cursor += 1
                caps[idx] = cap
            net = FlowNetwork()
            for (u, v, _), cap in zip(edges, caps):
                net.add_edge(u, v, cap)
            net.max_flow("s", "t")

    def reuse_network() -> None:
        net = FlowNetwork()
        ids = [net.add_edge(u, v, cap) for u, v, cap in edges]
        cursor = 0
        for _ in range(num_solves):
            for _ in range(4):
                idx, cap = retunes[cursor]
                cursor += 1
                net.set_capacity(ids[idx], cap)
            net.max_flow("s", "t")

    baseline = tracker.time(
        "kernel_rebuild_per_solve", rebuild_per_solve, repeats=repeats,
        num_edges=len(edges), num_solves=num_solves,
    )
    fast = tracker.time(
        "kernel_reuse", reuse_network, repeats=repeats,
        num_edges=len(edges), num_solves=num_solves,
    )
    return tracker.speedup("kernel_reuse_speedup", baseline, fast)


def bench_placement_evaluation(
    tracker: PerfTracker,
    num_nodes: int = 42,
    num_candidates: int = 60,
    repeats: int = 3,
    model: ModelSpec = LLAMA_70B,
) -> float:
    """The headline microbenchmark: repeated candidate-placement evaluation.

    Baseline reconstructs a :class:`FlowGraph` per candidate (what the
    planner did before the incremental path); the fast path re-targets one
    evaluator via :meth:`FlowGraph.reevaluate`. Max-flow values are
    cross-checked to agree. Returns the recorded speedup.
    """
    cluster = bench_cluster(num_nodes)
    profiler = Profiler()
    candidates = candidate_placements(cluster, model, num_candidates)

    def rebuild_per_candidate() -> list[float]:
        return [
            FlowGraph(cluster, model, p, profiler, True).solve().max_flow
            for p in candidates
        ]

    evaluator = FlowGraph(cluster, model, candidates[0], profiler, True)

    def incremental() -> list[float]:
        return [evaluator.reevaluate(p).max_flow for p in candidates]

    base_values = rebuild_per_candidate()  # warm profiler caches for both
    fast_values = incremental()
    scale = max(1.0, max(base_values))
    mismatches = [
        (a, b) for a, b in zip(base_values, fast_values)
        if abs(a - b) > 1e-6 * scale
    ]
    if mismatches:
        raise AssertionError(
            f"incremental evaluation diverged from rebuild: {mismatches[:3]}"
        )

    baseline = tracker.time(
        "eval_rebuild_per_candidate", rebuild_per_candidate, repeats=repeats,
        num_nodes=num_nodes, num_candidates=num_candidates, model=model.name,
    )
    fast = tracker.time(
        "eval_incremental", incremental, repeats=repeats,
        num_nodes=num_nodes, num_candidates=num_candidates, model=model.name,
    )
    return tracker.speedup("placement_eval_speedup", baseline, fast)


def bench_planner(
    tracker: PerfTracker,
    time_limit: float = 10.0,
    lns_rounds: int = 3,
) -> dict[str, float]:
    """End-to-end Helix planner run, incremental evaluator on vs. off.

    Uses the paper's Fig. 12 small cluster with LLaMA-30B (the same
    configuration the figure benchmarks plan on). MILP solving dominates
    the planner's wall clock, so the end-to-end delta is modest; the
    per-evaluation telemetry shows where the flow-side time went. Returns
    the recorded planner metrics.
    """
    from repro.cluster import small_cluster_fig12
    from repro.models.specs import LLAMA_30B
    from repro.placement.helix_milp import HelixMilpPlanner

    cluster = small_cluster_fig12()
    model = LLAMA_30B

    def plan(incremental: bool):
        planner = HelixMilpPlanner(
            cluster, model, Profiler(),
            time_limit=time_limit, lns_rounds=lns_rounds,
            lns_time_limit=max(1.0, time_limit / 2), mip_rel_gap=0.05,
        )
        planner.incremental_flow = incremental
        result = planner.plan()
        return planner, result

    start = time.perf_counter()
    baseline_planner, baseline_result = plan(incremental=False)
    baseline_s = time.perf_counter() - start
    start = time.perf_counter()
    fast_planner, fast_result = plan(incremental=True)
    fast_s = time.perf_counter() - start

    # Both runs are recorded rather than asserted equal: a timed-out MILP
    # may return different incumbents run-to-run independent of the flow
    # path (the eval-path equivalence is asserted in the microbenchmark).
    metrics = {
        "planner_rebuild_throughput": baseline_result.max_throughput,
        "planner_rebuild_s": baseline_s,
        "planner_incremental_s": fast_s,
        "planner_eval_rebuild_s": baseline_planner.flow_eval_seconds,
        "planner_eval_incremental_s": fast_planner.flow_eval_seconds,
        "planner_eval_count": float(fast_planner.flow_eval_count),
        "planner_max_throughput": fast_result.max_throughput,
    }
    for name, value in metrics.items():
        tracker.record(name, value)
    if fast_planner.flow_eval_seconds > 0:
        tracker.record(
            "planner_eval_speedup",
            baseline_planner.flow_eval_seconds / fast_planner.flow_eval_seconds,
        )
    return metrics


# ----------------------------------------------------------------------
# MILP benchmarks
# ----------------------------------------------------------------------
def helix_formulation(num_nodes: int, model: ModelSpec = TINY_BENCH_MODEL):
    """A Helix MILP formulation (and its planner) on a bench cluster."""
    from repro.placement.helix_milp import HelixMilpPlanner

    cluster = bench_cluster(num_nodes)
    planner = HelixMilpPlanner(cluster, model, Profiler())
    return planner, planner.build_formulation()


def bench_milp_compile(
    tracker: PerfTracker,
    num_nodes: int = 16,
    rounds: int = 20,
    repeats: int = 3,
    model: ModelSpec = TINY_BENCH_MODEL,
) -> float:
    """Formulation compile under LNS-like churn: incremental vs. full.

    Each round appends a handful of fixing constraints plus a cutoff (what
    every LNS round does), compiles, and truncates them again. The
    baseline invalidates the problem's compile cache each round — the
    historical compile-from-scratch cost; the fast path reuses the cached
    constraint rows and structure, so each round only compiles its delta.
    Returns the recorded speedup.
    """
    planner, formulation = helix_formulation(num_nodes, model)
    problem = formulation.problem
    node_ids = list(formulation.s_vars)

    def run_rounds(invalidate: bool) -> list:
        shapes = []
        for round_index in range(rounds):
            base_len = len(problem.constraints)
            for nid in node_ids[round_index % 3 :: 3]:
                problem.add_constraint(
                    formulation.s_vars[nid] == 0.0,
                    name=f"bench_fix[{nid}]",
                )
            problem.add_constraint(
                problem.objective >= float(round_index), name="bench_cutoff"
            )
            if invalidate:
                problem.invalidate()
            shapes.append(problem.compile().a_matrix.shape)
            del problem.constraints[base_len:]
        problem.compile()  # restore the truncated cached structure
        return shapes

    base_shapes = run_rounds(invalidate=True)
    fast_shapes = run_rounds(invalidate=False)
    if base_shapes != fast_shapes:
        raise AssertionError("incremental compile diverged from full recompile")

    baseline = tracker.time(
        "milp_compile_full", lambda: run_rounds(True), repeats=repeats,
        num_nodes=num_nodes, rounds=rounds,
        num_constraints=problem.num_constraints,
    )
    fast = tracker.time(
        "milp_compile_incremental", lambda: run_rounds(False), repeats=repeats,
        num_nodes=num_nodes, rounds=rounds,
        num_constraints=problem.num_constraints,
    )
    return tracker.speedup("milp_compile_speedup", baseline, fast)


def bench_milp_feascheck(
    tracker: PerfTracker,
    num_nodes: int = 16,
    checks: int = 40,
    repeats: int = 3,
    model: ModelSpec = TINY_BENCH_MODEL,
) -> float:
    """Feasibility checking: per-constraint loop vs. one sparse mat-vec."""
    planner, formulation = helix_formulation(num_nodes, model)
    problem = formulation.problem
    hints = planner.heuristic_hints(planner.cluster)
    if not hints:
        raise AssertionError("no heuristic hint available for the bench cluster")
    values = planner.assignment_from_placement(
        formulation, hints[0], planner.cluster
    )

    def loop_check() -> list[str]:
        violated = []
        for _ in range(checks):
            violated = [
                c.name or f"constraint[{i}]"
                for i, c in enumerate(problem.constraints)
                if c.violated_by(values, 1e-5)
            ]
        return violated

    def vector_check() -> list[str]:
        violated = []
        for _ in range(checks):
            violated = problem.check_feasible(values)
        return violated

    if loop_check() != vector_check():
        raise AssertionError("vectorized check_feasible diverged from the loop")

    baseline = tracker.time(
        "milp_feascheck_loop", loop_check, repeats=repeats,
        num_constraints=problem.num_constraints, checks=checks,
    )
    fast = tracker.time(
        "milp_feascheck_vectorized", vector_check, repeats=repeats,
        num_constraints=problem.num_constraints, checks=checks,
    )
    return tracker.speedup("milp_feascheck_speedup", baseline, fast)


def bench_milp_bnb(
    tracker: PerfTracker,
    num_nodes: int = 6,
    repeats: int = 2,
    model: ModelSpec = TINY_BENCH_MODEL,
) -> dict[str, float]:
    """Branch-and-bound ablation: pseudocost + diving + propagation on/off.

    Solves the same Helix formulation to proven optimality both ways and
    records nodes explored, LP solves, time-to-first-incumbent, and solve
    time. Objectives are cross-checked to agree. Returns the recorded
    metrics.
    """
    from repro.milp.branch_and_bound import BranchAndBoundSolver

    _, formulation = helix_formulation(num_nodes, model)
    problem = formulation.problem

    results: dict[str, dict[str, float]] = {}

    def solve(label: str, **options):
        solver = BranchAndBoundSolver(problem, time_limit=120, **options)
        solution = solver.solve()
        results[label] = {
            "objective": solution.objective,
            "nodes": float(solution.node_count),
            "lp_solves": float(solver.stats.lp_solves),
            "time_to_first_incumbent": solver.stats.time_to_first_incumbent,
        }
        return solution

    plain_options = dict(
        pseudocost=False, diving=False, propagation=False,
        reduced_cost_fixing=False,
    )
    baseline = tracker.time(
        "bnb_plain", lambda: solve("plain", **plain_options), repeats=repeats,
        num_nodes=num_nodes, model=model.name,
    )
    fast = tracker.time(
        "bnb_smart", lambda: solve("smart"), repeats=repeats,
        num_nodes=num_nodes, model=model.name,
    )
    plain, smart = results["plain"], results["smart"]
    scale = max(1.0, abs(plain["objective"]))
    if abs(plain["objective"] - smart["objective"]) > 1e-6 * scale:
        raise AssertionError(
            "bnb feature ablation changed the optimum: "
            f"{plain['objective']} vs {smart['objective']}"
        )
    metrics = {
        "bnb_plain_nodes": plain["nodes"],
        "bnb_smart_nodes": smart["nodes"],
        "bnb_plain_lp_solves": plain["lp_solves"],
        "bnb_smart_lp_solves": smart["lp_solves"],
        "bnb_plain_first_incumbent_s": plain["time_to_first_incumbent"],
        "bnb_smart_first_incumbent_s": smart["time_to_first_incumbent"],
        "bnb_node_factor": plain["nodes"] / max(1.0, smart["nodes"]),
    }
    for name, value in metrics.items():
        tracker.record(name, value)
    tracker.speedup("bnb_solve_speedup", baseline, fast)
    return metrics


def bench_milp_planner(
    tracker: PerfTracker,
    time_limit: float = 10.0,
    lns_rounds: int = 3,
    lns_time_limit: float = 5.0,
    mip_rel_gap: float = 0.05,
) -> dict[str, float]:
    """End-to-end Helix MILP planning: pre-optimization vs. current path.

    Uses the paper's Fig. 12 small cluster with LLaMA-30B (the ROADMAP's
    reference "MILP-bound" configuration). The legacy run reproduces the
    pre-PR-2 behaviour — one full-budget HiGHS solve plus
    rebuild-and-recompile LNS rounds at the historical window size; the
    fast runs use adaptive budget slicing and incremental bounds-tightened
    LNS re-solves, once per backend. Final placement throughputs are
    cross-checked for parity. Returns the recorded metrics.
    """
    from repro.cluster import small_cluster_fig12
    from repro.models.specs import LLAMA_30B
    from repro.placement.helix_milp import HelixMilpPlanner

    cluster = small_cluster_fig12()
    model = LLAMA_30B

    def plan(**kwargs):
        planner = HelixMilpPlanner(
            cluster, model, Profiler(),
            time_limit=time_limit, lns_rounds=lns_rounds,
            lns_time_limit=lns_time_limit, mip_rel_gap=mip_rel_gap,
            **kwargs,
        )
        start = time.perf_counter()
        result = planner.plan()
        elapsed = time.perf_counter() - start
        return planner, result, elapsed

    _, legacy_result, legacy_s = plan(
        adaptive_budget=False, lns_mode="rebuild"
    )
    _, fast_result, fast_s = plan()
    _, bnb_result, bnb_s = plan(backend="bnb")

    metrics = {
        "milp_planner_legacy_s": legacy_s,
        "milp_planner_fast_s": fast_s,
        "milp_planner_bnb_s": bnb_s,
        "milp_planner_legacy_throughput": legacy_result.max_throughput,
        "milp_planner_fast_throughput": fast_result.max_throughput,
        "milp_planner_bnb_throughput": bnb_result.max_throughput,
        "milp_planner_speedup": legacy_s / fast_s,
        "milp_planner_bnb_speedup": legacy_s / bnb_s,
        "milp_planner_backend_parity": abs(
            fast_result.max_throughput - bnb_result.max_throughput
        ),
        "milp_planner_legacy_parity": abs(
            fast_result.max_throughput - legacy_result.max_throughput
        ),
    }
    for name, value in metrics.items():
        tracker.record(name, value)
    return metrics


# ----------------------------------------------------------------------
# Online-dynamics benchmarks
# ----------------------------------------------------------------------
def _fig12_online_scenario(
    num_requests: int,
    seed: int,
    trace_scale: float,
    plan_time_limit: float,
):
    """Shared setup of the online scenarios: plan LLaMA-30B on the Fig. 12
    cluster and build the flooded serving configuration.

    KV capacity scales with the trace so per-node concurrency matches the
    full-scale system; the scheduler's expected output length matches the
    scaled trace mean. Returns
    ``(cluster, model, profiler, plan_result, trace, scheduler)``.
    """
    from repro.cluster import small_cluster_fig12
    from repro.models.specs import LLAMA_30B
    from repro.placement.helix_milp import HelixMilpPlanner
    from repro.scheduling.helix import HelixScheduler
    from repro.trace import offline_arrivals
    from repro.trace.azure import (
        AZURE_MEAN_OUTPUT, AzureTraceConfig, synthesize_azure_trace,
    )

    cluster = small_cluster_fig12()
    model = LLAMA_30B
    profiler = Profiler(kv_capacity_scale=trace_scale)
    planner = HelixMilpPlanner(
        cluster, model, profiler,
        time_limit=plan_time_limit, mip_rel_gap=0.05,
    )
    result = planner.plan()
    trace = offline_arrivals(
        synthesize_azure_trace(
            AzureTraceConfig(
                num_requests=num_requests, seed=seed, scale=trace_scale
            )
        )
    )
    scheduler = HelixScheduler(
        cluster, model, result.placement, profiler, flow=result.flow,
        expected_output_len=AZURE_MEAN_OUTPUT * trace_scale,
    )
    return cluster, model, profiler, result, trace, scheduler


def bench_online_churn(
    tracker: PerfTracker,
    num_requests: int = 200,
    fail_at: float = 12.0,
    horizon: float = 36.0,
    window: float = 3.0,
    seed: int = 0,
    trace_scale: float = 0.25,
    plan_time_limit: float = 8.0,
    replan_lns_rounds: int = 2,
    replan_time_limit: float = 1.0,
) -> dict[str, float]:
    """The scripted fig12-small churn scenario: kill a planned node mid-run.

    Plans LLaMA-30B on the Fig. 12 cluster, floods it with a scaled Azure
    trace (offline setting, KV capacity scaled with the trace so per-node
    concurrency matches the full-scale system), then kills the node
    carrying the most max-flow at ``fail_at``. The online controller
    rewrites flows incrementally, runs the warm-started LNS replan, and
    hot-swaps the repaired placement; the recorded metrics are the
    windowed-goodput recovery ratio, the replanning wall-clock latency,
    and the disruption counters. Given ``seed``, the run is deterministic
    up to the replanner's solver time limits — which its LNS rounds finish
    well under on this instance — so the recorded ratio is stable.
    """
    from repro.online import NodeFailure, OnlineController
    from repro.sim.simulator import Simulation

    start = time.perf_counter()
    cluster, model, profiler, result, trace, scheduler = (
        _fig12_online_scenario(num_requests, seed, trace_scale, plan_time_limit)
    )
    plan_s = time.perf_counter() - start

    # Kill the planned node carrying the most flow — the worst single loss.
    node_flows = result.flow.node_flows
    victim = max(
        result.placement.used_nodes,
        key=lambda nid: node_flows.get(nid, 0.0),
    )

    controller = OnlineController(
        model,
        events=[NodeFailure(fail_at, victim)],
        profiler=profiler,
        replan_lns_rounds=replan_lns_rounds,
        replan_time_limit=replan_time_limit,
    )
    simulation = Simulation(
        cluster, model, result.placement, scheduler, trace,
        profiler=profiler, max_batch_tokens=2048, max_time=horizon,
        seed=seed, controller=controller,
    )
    start = time.perf_counter()
    serving = simulation.run()
    sim_s = time.perf_counter() - start

    applied = controller.applied_replans
    if not applied:
        raise AssertionError(
            f"churn scenario produced no applied replan: {controller.replans}"
        )
    report = controller.report(simulation, window=window)

    metrics = {
        "online_plan_s": plan_s,
        "online_sim_wall_s": sim_s,
        "online_pre_goodput": report.pre_disruption_goodput,
        "online_post_goodput": report.post_recovery_goodput,
        "online_recovery_ratio": report.recovery_ratio,
        "online_time_to_recovery_s": report.time_to_recovery,
        "online_replan_count": float(len(applied)),
        "online_replan_wall_s": max(r.wall_seconds for r in applied),
        "online_replanned_max_flow": applied[-1].throughput,
        "online_requests_retried": float(serving.requests_retried),
        "online_requests_migrated": float(serving.requests_migrated),
        "online_tokens_lost": float(serving.tokens_lost),
        "online_kv_overflows": float(serving.kv_overflow_events),
    }
    for name, value in metrics.items():
        tracker.record(name, value)
    return metrics


def bench_online_soak(
    tracker: PerfTracker,
    duration: float = 120.0,
    num_requests: int = 400,
    seed: int = 0,
    trace_scale: float = 0.25,
    mean_time_to_failure: float = 18.0,
    mean_time_to_recovery: float = 10.0,
) -> dict[str, float]:
    """Seeded random churn soak on the fig12 cluster.

    Nodes fail and recover stochastically for ``duration`` simulated
    seconds while the controller keeps replanning; records how much
    serving survived (goodput mean over the churn window vs. the pre-churn
    baseline) and the replanning latency distribution.
    """
    from repro.online import ChurnConfig, OnlineController, random_churn
    from repro.sim.metrics import goodput_timeline
    from repro.sim.simulator import Simulation

    cluster, model, profiler, result, trace, scheduler = (
        _fig12_online_scenario(num_requests, seed, trace_scale, 8.0)
    )

    churn_start = 12.0
    events = random_churn(
        cluster.node_ids,
        ChurnConfig(
            duration=duration - churn_start,
            mean_time_to_failure=mean_time_to_failure,
            mean_time_to_recovery=mean_time_to_recovery,
            start=churn_start,
        ),
        seed=seed,
    )
    controller = OnlineController(
        model, events=events, profiler=profiler,
        replan_lns_rounds=2, replan_time_limit=1.0,
    )
    simulation = Simulation(
        cluster, model, result.placement, scheduler, trace,
        profiler=profiler, max_batch_tokens=2048, max_time=duration,
        seed=seed, controller=controller,
    )
    start = time.perf_counter()
    serving = simulation.run()
    sim_s = time.perf_counter() - start

    end_time = min(simulation.now, duration)
    timeline = goodput_timeline(simulation.token_timeline, 3.0, end_time)
    baseline = [r for t, r in timeline[1:] if t + 3.0 <= churn_start]
    churn_window = [r for t, r in timeline if t >= churn_start]
    applied = controller.applied_replans
    metrics = {
        "soak_sim_wall_s": sim_s,
        "soak_events": float(len(events)),
        "soak_replans_applied": float(len(applied)),
        "soak_replan_wall_max_s": (
            max(r.wall_seconds for r in applied) if applied else 0.0
        ),
        "soak_baseline_goodput": (
            sum(baseline) / len(baseline) if baseline else 0.0
        ),
        "soak_churn_goodput": (
            sum(churn_window) / len(churn_window) if churn_window else 0.0
        ),
        "soak_requests_retried": float(serving.requests_retried),
        "soak_requests_migrated": float(serving.requests_migrated),
        "soak_tokens_lost": float(serving.tokens_lost),
    }
    for name, value in metrics.items():
        tracker.record(name, value)
    return metrics


def run_online_bench(
    smoke: bool = False, path: Path | str | None = None
) -> dict:
    """Run the online-dynamics benchmarks and write ``BENCH_online.json``.

    Both sizes run the *same* fig12-small kill-a-planned-node scenario
    (the subsystem's acceptance scenario); smoke shortens the trace and
    horizon and skips the random-churn soak.

    Args:
        smoke: Tier-1-sized run (seconds-scale total).
        path: Output path override; defaults to the repo root artifact.

    Returns:
        The serialized benchmark document (also written to disk).
    """
    tracker = PerfTracker(label="online-smoke" if smoke else "online-full")
    if smoke:
        bench_online_churn(
            tracker, num_requests=150, fail_at=12.0, horizon=30.0
        )
    else:
        bench_online_churn(tracker)
        bench_online_soak(tracker)
    tracker.write(path if path is not None else DEFAULT_ONLINE_OUTPUT)
    return tracker.to_dict()


def run_milp_bench(
    smoke: bool = False, path: Path | str | None = None
) -> dict:
    """Run all MILP benchmarks and write ``BENCH_milp.json``.

    Args:
        smoke: Use tiny sizes (seconds-scale total, exercised by tier-1
            tests) instead of the full configuration.
        path: Output path override; defaults to the repo root artifact.

    Returns:
        The serialized benchmark document (also written to disk).
    """
    tracker = PerfTracker(label="milp-smoke" if smoke else "milp-full")
    if smoke:
        bench_milp_compile(tracker, num_nodes=8, rounds=6, repeats=2)
        bench_milp_feascheck(tracker, num_nodes=8, checks=8, repeats=2)
        bench_milp_bnb(tracker, num_nodes=4, repeats=1)
    else:
        bench_milp_compile(tracker)
        bench_milp_feascheck(tracker)
        bench_milp_bnb(tracker)
        bench_milp_planner(tracker)
    tracker.write(path if path is not None else DEFAULT_MILP_OUTPUT)
    return tracker.to_dict()


def run_flow_bench(
    smoke: bool = False, path: Path | str | None = None
) -> dict:
    """Run all flow benchmarks and write ``BENCH_flow.json``.

    Args:
        smoke: Use tiny sizes (seconds-scale total, exercised by tier-1
            tests) instead of the full configuration.
        path: Output path override; defaults to the repo root artifact.

    Returns:
        The serialized benchmark document (also written to disk).
    """
    tracker = PerfTracker(label="flow-smoke" if smoke else "flow-full")
    if smoke:
        bench_kernel_reuse(tracker, num_edges=120, num_solves=4, repeats=2)
        bench_placement_evaluation(
            tracker, num_nodes=8, num_candidates=6, repeats=2
        )
    else:
        bench_kernel_reuse(tracker)
        bench_placement_evaluation(tracker)
        bench_planner(tracker)
    tracker.write(path)
    return tracker.to_dict()
