"""Performance tracking for the flow kernel and placement planner.

The repo's north star is running as fast as the hardware allows, so perf
needs a trajectory, not anecdotes. This module provides:

* :class:`PerfTracker` — a tiny timing harness that records named timings
  plus derived metrics (speedups) and serializes them to JSON;
* scenario benchmarks — the repeated placement-evaluation microbenchmark
  (incremental :meth:`~repro.flow.graph.FlowGraph.reevaluate` vs. a
  rebuild-per-candidate baseline), a raw kernel-reuse microbenchmark
  (:meth:`~repro.flow.maxflow.FlowNetwork.set_capacity` + re-solve vs.
  rebuilding the network), and an end-to-end Helix planner run with the
  incremental evaluator on and off;
* :func:`run_flow_bench` — runs everything and writes ``BENCH_flow.json``
  at the repo root so future PRs can compare against a recorded baseline.

``benchmarks/bench_perf_flow.py`` drives the full-size configuration; the
tier-1 suite runs the same harness at smoke sizes (``smoke=True``) on every
test run so the JSON artifact generation never rots.
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.cluster import Cluster, Profiler, A100_40G, L4, T4
from repro.core.placement_types import ModelPlacement
from repro.core.units import GBIT
from repro.flow.graph import FlowGraph
from repro.flow.maxflow import FlowNetwork
from repro.models.specs import LLAMA_70B, ModelSpec

SCHEMA_VERSION = 1
REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_flow.json"


@dataclass
class Timing:
    """One timed workload: ``repeats`` measured laps of a callable."""

    name: str
    repeats: int
    total_s: float
    mean_s: float
    best_s: float
    meta: dict = field(default_factory=dict)


class PerfTracker:
    """Collects named timings and derived metrics, writes them as JSON."""

    def __init__(self, label: str = "flow-perf") -> None:
        self.label = label
        self.timings: list[Timing] = []
        self.derived: dict[str, float] = {}

    def time(self, name: str, fn, repeats: int = 3, **meta) -> Timing:
        """Time ``repeats`` calls of ``fn()`` and record the laps."""
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        laps = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            laps.append(time.perf_counter() - start)
        timing = Timing(
            name=name,
            repeats=repeats,
            total_s=sum(laps),
            mean_s=sum(laps) / len(laps),
            best_s=min(laps),
            meta=dict(meta),
        )
        self.timings.append(timing)
        return timing

    def record(self, name: str, value: float) -> None:
        """Record a derived scalar metric (a speedup, a count, ...)."""
        self.derived[name] = value

    def speedup(self, name: str, baseline: Timing, fast: Timing) -> float:
        """Record and return ``baseline / fast`` on best-lap times."""
        value = baseline.best_s / fast.best_s if fast.best_s > 0 else float("inf")
        self.derived[name] = value
        return value

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "timings": [asdict(t) for t in self.timings],
            "derived": dict(self.derived),
        }

    def write(self, path: Path | str | None = None) -> Path:
        """Serialize to ``path`` (default: ``BENCH_flow.json`` at repo root)."""
        target = Path(path) if path is not None else DEFAULT_OUTPUT
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------
def bench_cluster(num_nodes: int) -> Cluster:
    """A heterogeneous full-mesh cluster (A100/L4/T4 round-robin)."""
    cluster = Cluster(name=f"bench-{num_nodes}")
    gpus = (A100_40G, L4, T4)
    node_ids = []
    for i in range(num_nodes):
        node_id = f"n{i:03d}"
        cluster.add_node(node_id, gpus[i % len(gpus)], region="r0")
        node_ids.append(node_id)
    cluster.connect_full_mesh(node_ids, 10 * GBIT, 0.001, include_coordinator=True)
    cluster.validate()
    return cluster


def candidate_placements(
    cluster: Cluster,
    model: ModelSpec,
    num_candidates: int,
    num_stages: int = 8,
    moves_per_step: int = 3,
    seed: int = 0,
) -> list[ModelPlacement]:
    """An LNS-like stream of valid placements differing by a few nodes each.

    Starts from a round-robin assignment of nodes to ``num_stages`` equal
    layer chunks, then randomly re-stages ``moves_per_step`` nodes per
    candidate while never emptying a stage, so every candidate keeps full
    layer coverage — the same neighborhood structure the planner's LNS
    explores.
    """
    num_layers = model.num_layers
    # Every stage keeps >= 2 replicas so single-node moves stay legal.
    num_stages = max(2, min(num_stages, num_layers, len(cluster.node_ids) // 2))
    rng = random.Random(seed)
    bounds = [
        (k * num_layers // num_stages, (k + 1) * num_layers // num_stages)
        for k in range(num_stages)
    ]
    node_ids = cluster.node_ids
    assign = {nid: i % num_stages for i, nid in enumerate(node_ids)}
    counts = [0] * num_stages
    for stage in assign.values():
        counts[stage] += 1
    placements = []
    for _ in range(num_candidates):
        for _ in range(moves_per_step):
            nid = node_ids[rng.randrange(len(node_ids))]
            src = assign[nid]
            dst = rng.randrange(num_stages)
            if dst == src or counts[src] <= 1:
                continue
            counts[src] -= 1
            counts[dst] += 1
            assign[nid] = dst
        placements.append(
            ModelPlacement.from_intervals(
                num_layers, {nid: bounds[s] for nid, s in assign.items()}
            )
        )
    return placements


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
def bench_kernel_reuse(
    tracker: PerfTracker,
    num_edges: int = 2000,
    num_solves: int = 30,
    repeats: int = 3,
    seed: int = 1,
) -> float:
    """Raw kernel: ``set_capacity`` + re-solve vs. rebuild-per-solve.

    A layered random network is solved ``num_solves`` times with a handful
    of capacities retuned between solves — once rebuilding the network from
    its edge list every time, once reusing the same network. Returns the
    recorded speedup.
    """
    rng = random.Random(seed)
    num_nodes = max(8, num_edges // 8)
    edges = []
    for i in range(num_edges):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v:
            continue
        edges.append((f"v{min(u, v)}", f"v{max(u, v)}", rng.uniform(1.0, 50.0)))
    edges.append(("s", "v0", 100.0))
    edges.append((f"v{num_nodes - 1}", "t", 100.0))
    retunes = [
        (rng.randrange(len(edges)), rng.uniform(1.0, 50.0))
        for _ in range(num_solves * 4)
    ]

    def rebuild_per_solve() -> None:
        caps = [cap for (_, _, cap) in edges]
        cursor = 0
        for _ in range(num_solves):
            for _ in range(4):
                idx, cap = retunes[cursor]
                cursor += 1
                caps[idx] = cap
            net = FlowNetwork()
            for (u, v, _), cap in zip(edges, caps):
                net.add_edge(u, v, cap)
            net.max_flow("s", "t")

    def reuse_network() -> None:
        net = FlowNetwork()
        ids = [net.add_edge(u, v, cap) for u, v, cap in edges]
        cursor = 0
        for _ in range(num_solves):
            for _ in range(4):
                idx, cap = retunes[cursor]
                cursor += 1
                net.set_capacity(ids[idx], cap)
            net.max_flow("s", "t")

    baseline = tracker.time(
        "kernel_rebuild_per_solve", rebuild_per_solve, repeats=repeats,
        num_edges=len(edges), num_solves=num_solves,
    )
    fast = tracker.time(
        "kernel_reuse", reuse_network, repeats=repeats,
        num_edges=len(edges), num_solves=num_solves,
    )
    return tracker.speedup("kernel_reuse_speedup", baseline, fast)


def bench_placement_evaluation(
    tracker: PerfTracker,
    num_nodes: int = 42,
    num_candidates: int = 60,
    repeats: int = 3,
    model: ModelSpec = LLAMA_70B,
) -> float:
    """The headline microbenchmark: repeated candidate-placement evaluation.

    Baseline reconstructs a :class:`FlowGraph` per candidate (what the
    planner did before the incremental path); the fast path re-targets one
    evaluator via :meth:`FlowGraph.reevaluate`. Max-flow values are
    cross-checked to agree. Returns the recorded speedup.
    """
    cluster = bench_cluster(num_nodes)
    profiler = Profiler()
    candidates = candidate_placements(cluster, model, num_candidates)

    def rebuild_per_candidate() -> list[float]:
        return [
            FlowGraph(cluster, model, p, profiler, True).solve().max_flow
            for p in candidates
        ]

    evaluator = FlowGraph(cluster, model, candidates[0], profiler, True)

    def incremental() -> list[float]:
        return [evaluator.reevaluate(p).max_flow for p in candidates]

    base_values = rebuild_per_candidate()  # warm profiler caches for both
    fast_values = incremental()
    scale = max(1.0, max(base_values))
    mismatches = [
        (a, b) for a, b in zip(base_values, fast_values)
        if abs(a - b) > 1e-6 * scale
    ]
    if mismatches:
        raise AssertionError(
            f"incremental evaluation diverged from rebuild: {mismatches[:3]}"
        )

    baseline = tracker.time(
        "eval_rebuild_per_candidate", rebuild_per_candidate, repeats=repeats,
        num_nodes=num_nodes, num_candidates=num_candidates, model=model.name,
    )
    fast = tracker.time(
        "eval_incremental", incremental, repeats=repeats,
        num_nodes=num_nodes, num_candidates=num_candidates, model=model.name,
    )
    return tracker.speedup("placement_eval_speedup", baseline, fast)


def bench_planner(
    tracker: PerfTracker,
    time_limit: float = 10.0,
    lns_rounds: int = 3,
) -> dict[str, float]:
    """End-to-end Helix planner run, incremental evaluator on vs. off.

    Uses the paper's Fig. 12 small cluster with LLaMA-30B (the same
    configuration the figure benchmarks plan on). MILP solving dominates
    the planner's wall clock, so the end-to-end delta is modest; the
    per-evaluation telemetry shows where the flow-side time went. Returns
    the recorded planner metrics.
    """
    from repro.cluster import small_cluster_fig12
    from repro.models.specs import LLAMA_30B
    from repro.placement.helix_milp import HelixMilpPlanner

    cluster = small_cluster_fig12()
    model = LLAMA_30B

    def plan(incremental: bool):
        planner = HelixMilpPlanner(
            cluster, model, Profiler(),
            time_limit=time_limit, lns_rounds=lns_rounds,
            lns_time_limit=max(1.0, time_limit / 2), mip_rel_gap=0.05,
        )
        planner.incremental_flow = incremental
        result = planner.plan()
        return planner, result

    start = time.perf_counter()
    baseline_planner, baseline_result = plan(incremental=False)
    baseline_s = time.perf_counter() - start
    start = time.perf_counter()
    fast_planner, fast_result = plan(incremental=True)
    fast_s = time.perf_counter() - start

    # Both runs are recorded rather than asserted equal: a timed-out MILP
    # may return different incumbents run-to-run independent of the flow
    # path (the eval-path equivalence is asserted in the microbenchmark).
    metrics = {
        "planner_rebuild_throughput": baseline_result.max_throughput,
        "planner_rebuild_s": baseline_s,
        "planner_incremental_s": fast_s,
        "planner_eval_rebuild_s": baseline_planner.flow_eval_seconds,
        "planner_eval_incremental_s": fast_planner.flow_eval_seconds,
        "planner_eval_count": float(fast_planner.flow_eval_count),
        "planner_max_throughput": fast_result.max_throughput,
    }
    for name, value in metrics.items():
        tracker.record(name, value)
    if fast_planner.flow_eval_seconds > 0:
        tracker.record(
            "planner_eval_speedup",
            baseline_planner.flow_eval_seconds / fast_planner.flow_eval_seconds,
        )
    return metrics


def run_flow_bench(
    smoke: bool = False, path: Path | str | None = None
) -> dict:
    """Run all flow benchmarks and write ``BENCH_flow.json``.

    Args:
        smoke: Use tiny sizes (seconds-scale total, exercised by tier-1
            tests) instead of the full configuration.
        path: Output path override; defaults to the repo root artifact.

    Returns:
        The serialized benchmark document (also written to disk).
    """
    tracker = PerfTracker(label="flow-smoke" if smoke else "flow-full")
    if smoke:
        bench_kernel_reuse(tracker, num_edges=120, num_solves=4, repeats=2)
        bench_placement_evaluation(
            tracker, num_nodes=8, num_candidates=6, repeats=2
        )
    else:
        bench_kernel_reuse(tracker)
        bench_placement_evaluation(tracker)
        bench_planner(tracker)
    tracker.write(path)
    return tracker.to_dict()
