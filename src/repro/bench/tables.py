"""Static-table regeneration (paper Tables 1 and 3) and report formatting."""

from __future__ import annotations

from repro.cluster.gpus import GPU_CATALOG, A100_40G, H100, L4
from repro.models.memory import min_gpus_required
from repro.models.specs import (
    GPT3_175B,
    GROK_314B,
    LLAMA3_405B,
    LLAMA_70B,
    ModelSpec,
)

#: The exact values printed in the paper's Table 1.
TABLE1_PAPER = {
    ("LLaMA-70B", "L4"): 12,
    ("LLaMA-70B", "A100-40G"): 7,
    ("LLaMA-70B", "H100"): 4,
    ("GPT-3", "L4"): 30,
    ("GPT-3", "A100-40G"): 18,
    ("GPT-3", "H100"): 9,
    ("Grok-1", "L4"): 53,
    ("Grok-1", "A100-40G"): 32,
    ("Grok-1", "H100"): 16,
    ("LLaMA-3-405B", "L4"): 68,
    ("LLaMA-3-405B", "A100-40G"): 41,
    ("LLaMA-3-405B", "H100"): 21,
}

TABLE1_MODELS: tuple[ModelSpec, ...] = (LLAMA_70B, GPT3_175B, GROK_314B, LLAMA3_405B)
TABLE1_GPUS = (L4, A100_40G, H100)


def table1_min_gpus() -> list[dict[str, object]]:
    """Rows of Table 1: minimum GPU counts per model and GPU type."""
    rows = []
    for model in TABLE1_MODELS:
        row: dict[str, object] = {"model": model.name}
        for gpu in TABLE1_GPUS:
            row[gpu.name] = min_gpus_required(model, gpu.vram_bytes)
        rows.append(row)
    return rows


def table3_gpu_catalog() -> list[dict[str, object]]:
    """Rows of Table 3: the GPU property catalog."""
    rows = []
    for name in ("H100", "A100-40G", "L4", "T4"):
        gpu = GPU_CATALOG[name]
        rows.append(
            {
                "gpu": gpu.name,
                "fp16_tflops": gpu.datasheet_fp16_tflops,
                "memory_gb": gpu.vram_bytes / 1e9,
                "bandwidth_gbs": gpu.mem_bandwidth / 1e9,
                "power_w": gpu.power_watts,
                "price_usd": gpu.price_usd,
            }
        )
    return rows


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Fixed-width plain-text table for benchmark output."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.2f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
