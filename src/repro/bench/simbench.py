"""Serving-simulator throughput benchmarks (``BENCH_sim.json``).

The simulator overhaul (hop tables, hop-group decode coalescing,
closed-window fast-forward, vectorized forwarding, allocation-free hot
paths) is specified as *speed only*: every observable metric must equal
the pre-overhaul engine's. That frozen engine survives as
:class:`repro.sim._legacy_reference.LegacySimulation`, so this module can
measure the speedup live on any machine instead of trusting a number
measured once:

* **flooded** — the fig12-small offline flood (LLaMA-30B on the paper's
  Fig. 12 cluster): every request arrives at t=0 and the cluster serves
  at full KV-bounded concurrency. The ``large`` tier floods 5,000
  requests (the ROADMAP's "heavy traffic" regime); this is the tentpole
  scenario for the >=10x simulated-tokens-per-wall-second target.
* **poisson** — Azure-length requests arriving as a homogeneous Poisson
  stream at ~75% of planned throughput (the paper's online setting).
  Lower concurrency means more closed windows: the fast-forward macro
  steps dominate.
* **churn_soak** — a flood with seeded random node failure/recovery
  churn applied through ``schedule_event``; every disruption invalidates
  coalescing windows mid-flight, so this measures the engine under
  constant fallback (and double-checks the disrupted paths agree).
* **diurnal** — a multi-day diurnal arrival trace on a single-stage
  serving pipeline at low offered load: long closed windows where the
  batch engine's vectorized steady-state fast-forward macro-steps whole
  decode rounds. This is the batch engine's headline scenario — the
  ``large`` tier serves 100,000 requests spanning simulated months, and
  the target is >=1M simulated tokens per wall-second
  (``sim_diurnal_large_batch_tokens_per_s``). Only the hop-table and
  batch engines run it; the frozen baseline would take hours.

Each scenario runs on every engine at three trace sizes and records
simulated-tokens-per-wall-second, events popped, engine telemetry
(grouped hops, fast-forwarded tokens), and peak RSS. Token counts and
decode throughput are asserted equal between engines on every run — the
full observable-equality guarantee is enforced by
``tests/test_sim_equivalence.py`` over the scenario matrix.

``benchmarks/bench_perf_sim.py`` drives the full configuration; the
tier-1 suite runs ``run_sim_bench(smoke=True)`` so artifact generation
never rots.
"""

from __future__ import annotations

import resource
import time
from pathlib import Path

from types import SimpleNamespace

from repro.bench.perftrack import DEFAULT_OUTPUT, PerfTracker
from repro.cluster import A100_40G, Cluster, Profiler, small_cluster_fig12
from repro.core.placement_types import ModelPlacement
from repro.core.units import GBIT
from repro.flow.graph import FlowGraph
from repro.models.specs import LLAMA_30B, ModelSpec
from repro.online.events import ChurnConfig, random_churn
from repro.placement.helix_milp import HelixMilpPlanner
from repro.scheduling.helix import HelixScheduler
from repro.sim import Request, Simulation
from repro.sim._legacy_reference import LegacySimulation
from repro.trace.arrival import diurnal_arrivals, poisson_arrivals
from repro.trace.azure import AzureTraceConfig, synthesize_azure_trace

DEFAULT_SIM_OUTPUT = DEFAULT_OUTPUT.parent / "BENCH_sim.json"

#: (requests, output_len, kv_capacity_scale) per flooded tier.
_FLOOD_TIERS = {
    "small": (300, 48, 4.0),
    "medium": (1500, 96, 8.0),
    "large": (5000, 128, 20.0),
}
#: Requests per poisson tier (Azure-length draws, scaled 0.25).
_POISSON_TIERS = {"small": 150, "medium": 400, "large": 1000}
#: (requests, horizon_seconds) per churn-soak tier.
_CHURN_TIERS = {"small": (150, 60.0), "medium": (400, 120.0), "large": (800, 240.0)}
#: Requests per diurnal tier; the large tier is the nightly 100k case.
_DIURNAL_TIERS = {"small": 2000, "medium": 20000, "large": 100000}
#: Diurnal offered load: mean arrival rate times solo latency. 0.02 keeps
#: the pipeline in the closed-window regime almost always, which is the
#: steady state the vectorized fast-forward exists for.
_DIURNAL_LOAD = 0.02
_DIURNAL_OUTPUT_LEN = 512

#: (label, simulation class, extra constructor kwargs).
_ENGINES = (
    ("legacy", LegacySimulation, {}),
    ("hop_table", Simulation, {}),
    ("batch", Simulation, {"engine": "batch"}),
)


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (monotone over the process lifetime)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _plan(profiler: Profiler, quick: bool = False):
    cluster = small_cluster_fig12()
    if quick:
        # Smoke tiers measure the engine, not the planner: the heuristic
        # placement serves the same trace through both engines instantly.
        from repro.placement.petals import PetalsPlanner

        planner = PetalsPlanner(cluster, LLAMA_30B, profiler)
    else:
        planner = HelixMilpPlanner(
            cluster, LLAMA_30B, profiler, time_limit=8.0, mip_rel_gap=0.05
        )
    return cluster, planner.plan()


def _serve(
    tracker: PerfTracker,
    name: str,
    cluster,
    result,
    profiler: Profiler,
    trace: list[Request],
    expected_output_len: float,
    max_batch_tokens: int | None,
    max_time: float,
    churn_events=None,
    engines=_ENGINES,
    model: ModelSpec = LLAMA_30B,
) -> dict[str, float]:
    """Run one scenario on every engine; record timings and speedups."""
    rows: dict[str, tuple[float, int]] = {}
    for label, sim_cls, extra in engines:
        scheduler = HelixScheduler(
            cluster, model, result.placement, profiler,
            flow=result.flow, expected_output_len=expected_output_len,
        )
        sim = sim_cls(
            cluster, model, result.placement, scheduler, trace,
            profiler=profiler, max_batch_tokens=max_batch_tokens,
            max_time=max_time, seed=0, **extra,
        )
        if churn_events:
            for event in churn_events:
                if event.time <= max_time:
                    sim.schedule_event(event.time, event.apply)
        start = time.perf_counter()
        metrics = sim.run()
        wall = time.perf_counter() - start
        tokens = sum(record.tokens_generated for record in sim.records)
        rows[label] = (wall, tokens)
        meta = {
            "tokens": tokens,
            "tokens_per_wall_second": tokens / wall if wall > 0 else 0.0,
            "decode_throughput": metrics.decode_throughput,
            "requests_finished": metrics.requests_finished,
            "peak_rss_mb": _peak_rss_mb(),
        }
        if hasattr(sim, "engine_stats"):
            meta.update(sim.engine_stats)
        tracker.timings.append(_timing(name, label, wall, meta))
        if churn_events:
            # Churn re-runs mutate the cluster; put it back for the next
            # engine so both replay the identical scenario.
            for node_id in list(sim.down_nodes):
                cluster.set_node_available(node_id, True)
    token_counts = {label: tokens for label, (_, tokens) in rows.items()}
    if len(set(token_counts.values())) != 1:
        raise AssertionError(
            f"{name}: engines generated different token counts "
            f"({token_counts})"
        )
    metrics = {
        f"{name}_{label}_tokens_per_s": tokens / wall
        for label, (wall, tokens) in rows.items()
    }
    if "legacy" in rows and "hop_table" in rows:
        metrics[f"{name}_speedup"] = rows["legacy"][0] / rows["hop_table"][0]
    if "batch" in rows and "hop_table" in rows:
        metrics[f"{name}_batch_vs_hop"] = (
            rows["hop_table"][0] / rows["batch"][0]
        )
    for key, value in metrics.items():
        tracker.record(key, value)
    return metrics


def _timing(name: str, label: str, wall: float, meta: dict):
    from repro.bench.perftrack import Timing

    return Timing(
        name=f"{name}_{label}", repeats=1, total_s=wall,
        mean_s=wall, best_s=wall, meta=meta,
    )


def bench_sim_flooded(
    tracker: PerfTracker, size: str = "large", quick: bool = False
) -> dict:
    """The tentpole scenario: a uniform decode flood of fig12-small."""
    num_requests, output_len, kv_scale = _FLOOD_TIERS[size]
    profiler = Profiler(kv_capacity_scale=kv_scale)
    cluster, result = _plan(profiler, quick)
    trace = [
        Request(f"r{i:06d}", 16, output_len) for i in range(num_requests)
    ]
    return _serve(
        tracker, f"sim_flooded_{size}", cluster, result, profiler, trace,
        expected_output_len=float(output_len), max_batch_tokens=16384,
        max_time=1e9,
    )


def bench_sim_poisson(
    tracker: PerfTracker, size: str = "large", quick: bool = False
) -> dict:
    """Online setting: Poisson arrivals at ~75% of planned throughput."""
    num_requests = _POISSON_TIERS[size]
    scale = 0.25
    profiler = Profiler(kv_capacity_scale=scale)
    cluster, result = _plan(profiler, quick)
    base = synthesize_azure_trace(
        AzureTraceConfig(num_requests=num_requests, seed=0, scale=scale)
    )
    mean_output = sum(r.output_len for r in base) / len(base)
    rate = 0.75 * result.max_throughput / mean_output
    trace = poisson_arrivals(base, rate, seed=0)
    return _serve(
        tracker, f"sim_poisson_{size}", cluster, result, profiler, trace,
        expected_output_len=mean_output, max_batch_tokens=2048, max_time=1e9,
    )


def bench_sim_churn_soak(
    tracker: PerfTracker, size: str = "large", quick: bool = False
) -> dict:
    """A flood under seeded node churn: constant window invalidation."""
    num_requests, horizon = _CHURN_TIERS[size]
    profiler = Profiler(kv_capacity_scale=1.0)
    cluster, result = _plan(profiler, quick)
    trace = [Request(f"r{i:06d}", 16, 96) for i in range(num_requests)]
    events = random_churn(
        cluster.node_ids,
        ChurnConfig(
            duration=horizon * 0.6,
            mean_time_to_failure=horizon * 0.2,
            mean_time_to_recovery=horizon * 0.08,
            max_concurrent_failures=1,
            start=horizon * 0.1,
        ),
        seed=7,
    )
    return _serve(
        tracker, f"sim_churn_{size}", cluster, result, profiler, trace,
        expected_output_len=96.0, max_batch_tokens=2048, max_time=horizon,
        churn_events=events,
    )


def _diurnal_material() -> tuple:
    """Single-stage serving pipeline for the diurnal trace.

    One A100 holds every layer of a small 8-layer model, so a request's
    decode round is entry transmit -> one batch -> token return. At low
    offered load the simulation is almost entirely closed windows of
    identical rounds — exactly the steady state the batch engine's
    vectorized fast-forward macro-steps. The multi-node regimes are
    covered by the flooded / poisson / churn scenarios above.
    """
    model = ModelSpec(
        name="diurnal-tiny-8L", num_layers=8, hidden_size=1024, num_heads=8,
        num_kv_heads=8, intermediate_size=2816,
        nominal_params=8 * (4 * 1024**2 + 3 * 1024 * 2816),
    )
    cluster = Cluster(name="bench-diurnal")
    cluster.add_node("a100-0", A100_40G, region="r0")
    cluster.connect_full_mesh(
        ["a100-0"], 10 * GBIT, 0.001, include_coordinator=True
    )
    cluster.validate()
    placement = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
    flow = FlowGraph(cluster, model, placement).solve()
    return cluster, model, SimpleNamespace(placement=placement, flow=flow)


def _diurnal_solo_latency(cluster, model, result, profiler) -> float:
    """End-to-end latency of one request on the idle diurnal pipeline."""
    scheduler = HelixScheduler(
        cluster, model, result.placement, profiler, flow=result.flow,
        expected_output_len=float(_DIURNAL_OUTPUT_LEN),
    )
    sim = Simulation(
        cluster, model, result.placement, scheduler,
        [Request("solo", 64, _DIURNAL_OUTPUT_LEN, 0.0)],
        profiler=profiler, max_time=1e12, seed=0,
    )
    sim.run()
    record = sim.records[0]
    return record.finish_time - record.arrival_time


def bench_sim_diurnal(
    tracker: PerfTracker, size: str = "large", quick: bool = False
) -> dict:
    """The batch engine's headline: a multi-day diurnal arrival trace.

    The arrival rate is calibrated against the measured solo latency so
    the offered load (and therefore the closed-window fraction) is
    machine-independent. Runs the hop-table and batch engines only: the
    frozen baseline has no fast-forward at all, so even the small tier
    would take minutes and the 100k tier hours.
    """
    del quick  # no planner: the placement is fixed, every tier is cheap
    num_requests = _DIURNAL_TIERS[size]
    profiler = Profiler()
    cluster, model, result = _diurnal_material()
    latency = _diurnal_solo_latency(cluster, model, result, profiler)
    rate = _DIURNAL_LOAD / latency
    base = [
        Request(f"d{i:06d}", 64, _DIURNAL_OUTPUT_LEN)
        for i in range(num_requests)
    ]
    trace = diurnal_arrivals(base, rate, seed=0)
    metrics = _serve(
        tracker, f"sim_diurnal_{size}", cluster, result, profiler, trace,
        expected_output_len=float(_DIURNAL_OUTPUT_LEN),
        max_batch_tokens=None, max_time=1e12,
        engines=tuple(e for e in _ENGINES if e[0] != "legacy"),
        model=model,
    )
    span_days = trace[-1].arrival_time / 86400.0
    tracker.record(f"sim_diurnal_{size}_span_days", span_days)
    metrics[f"sim_diurnal_{size}_span_days"] = span_days
    return metrics


def run_sim_bench(
    smoke: bool = False, path: Path | str | None = None
) -> dict:
    """Run the simulator benchmarks and write ``BENCH_sim.json``.

    Args:
        smoke: Run only the small tiers (seconds-scale total; exercised
            by the tier-1 perf tests so the artifact generation never
            rots).
        path: Output path override; defaults to the repo-root artifact.

    Returns:
        The serialized benchmark document (also written to disk).
    """
    tracker = PerfTracker(label="sim-smoke" if smoke else "sim-full")
    sizes = ("small",) if smoke else ("small", "medium", "large")
    for size in sizes:
        bench_sim_flooded(tracker, size, quick=smoke)
        bench_sim_poisson(tracker, size, quick=smoke)
        bench_sim_churn_soak(tracker, size, quick=smoke)
        bench_sim_diurnal(tracker, size, quick=smoke)
    tracker.write(path if path is not None else DEFAULT_SIM_OUTPUT)
    return tracker.to_dict()
