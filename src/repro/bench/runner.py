"""Planner/scheduler/simulator glue for the paper's experiments.

Factories resolve the paper's method names ("helix", "swarm", "sp",
"sp+", "petals" for placement; "helix", "swarm", "random",
"shortest-queue", "fixed" for scheduling) and ``run_offline`` /
``run_online`` reproduce the two serving settings of §6.2:

* offline — all requests available immediately, throughput-oriented;
* online — diurnal Poisson arrivals averaging 75% of the placement's
  peak throughput, latency-oriented.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.profiler import Profiler
from repro.core.errors import ReproError
from repro.models.specs import ModelSpec
from repro.placement.base import PlannerResult
from repro.placement.helix_milp import HelixMilpPlanner
from repro.placement.petals import PetalsPlanner
from repro.placement.separate import SeparatePipelinesPlanner
from repro.placement.swarm import SwarmPlanner
from repro.scheduling.base import Scheduler
from repro.scheduling.baselines import (
    FixedPipelineScheduler,
    RandomScheduler,
    ShortestQueueScheduler,
    SwarmScheduler,
)
from repro.scheduling.helix import HelixScheduler
from repro.sim.metrics import ServingMetrics
from repro.sim.request import Request
from repro.sim.simulator import Simulation
from repro.trace.arrival import (
    diurnal_arrivals,
    offline_arrivals,
    rate_for_utilization,
)

PLACEMENT_METHODS = ("helix", "swarm", "petals", "sp", "sp+")
SCHEDULER_METHODS = ("helix", "swarm", "random", "shortest-queue", "fixed")


@dataclass
class ExperimentResult:
    """One (placement, scheduler, setting) serving run."""

    placement_method: str
    scheduler_method: str
    setting: str
    metrics: ServingMetrics
    planner: PlannerResult


def make_planner(
    method: str,
    cluster: Cluster,
    model: ModelSpec,
    profiler: Profiler | None = None,
    **kwargs,
):
    """Build a placement planner by paper name."""
    if method == "helix":
        return HelixMilpPlanner(cluster, model, profiler, **kwargs)
    if method == "swarm":
        return SwarmPlanner(cluster, model, profiler, **kwargs)
    if method == "petals":
        return PetalsPlanner(cluster, model, profiler, **kwargs)
    if method == "sp":
        return SeparatePipelinesPlanner(cluster, model, profiler, **kwargs)
    if method == "sp+":
        return SeparatePipelinesPlanner(
            cluster, model, profiler, include_mixed_pipeline=True, **kwargs
        )
    raise ReproError(
        f"unknown placement method {method!r}; choose from {PLACEMENT_METHODS}"
    )


def make_scheduler(
    method: str,
    cluster: Cluster,
    model: ModelSpec,
    planner_result: PlannerResult,
    profiler: Profiler | None = None,
    seed: int = 0,
    **kwargs,
) -> Scheduler:
    """Build a scheduler by paper name, wired to a planner's output."""
    common = dict(
        cluster=cluster,
        model=model,
        placement=planner_result.placement,
        profiler=profiler,
        **kwargs,
    )
    if method == "helix":
        return HelixScheduler(flow=planner_result.flow, **common)
    if method == "swarm":
        return SwarmScheduler(seed=seed, **common)
    if method == "random":
        return RandomScheduler(seed=seed, **common)
    if method == "shortest-queue":
        return ShortestQueueScheduler(**common)
    if method == "fixed":
        if planner_result.pipelines is None:
            raise ReproError(
                "fixed-pipeline scheduling needs a planner that produces "
                "pipelines (sp / sp+)"
            )
        return FixedPipelineScheduler(pipelines=planner_result.pipelines, **common)
    raise ReproError(
        f"unknown scheduler {method!r}; choose from {SCHEDULER_METHODS}"
    )


def run_serving(
    cluster: Cluster,
    model: ModelSpec,
    planner_result: PlannerResult,
    scheduler_method: str,
    requests: list[Request],
    setting: str,
    profiler: Profiler | None = None,
    max_time: float = 900.0,
    warmup: float = 30.0,
    max_batch_tokens: int | None = 16384,
    seed: int = 0,
    placement_method: str = "?",
) -> ExperimentResult:
    """Run one serving simulation and collect metrics."""
    scheduler = make_scheduler(
        scheduler_method, cluster, model, planner_result, profiler, seed=seed
    )
    simulation = Simulation(
        cluster=cluster,
        model=model,
        placement=planner_result.placement,
        scheduler=scheduler,
        requests=requests,
        profiler=profiler,
        max_batch_tokens=max_batch_tokens,
        max_time=max_time,
        warmup=warmup,
    )
    metrics = simulation.run()
    return ExperimentResult(
        placement_method=placement_method,
        scheduler_method=scheduler_method,
        setting=setting,
        metrics=metrics,
        planner=planner_result,
    )


def run_offline(
    cluster: Cluster,
    model: ModelSpec,
    planner_result: PlannerResult,
    scheduler_method: str,
    requests: list[Request],
    **kwargs,
) -> ExperimentResult:
    """Offline serving: the full trace is available at time zero (§6.2)."""
    return run_serving(
        cluster,
        model,
        planner_result,
        scheduler_method,
        offline_arrivals(requests),
        setting="offline",
        **kwargs,
    )


def run_online(
    cluster: Cluster,
    model: ModelSpec,
    planner_result: PlannerResult,
    scheduler_method: str,
    requests: list[Request],
    utilization: float = 0.75,
    arrival_seed: int = 1,
    **kwargs,
) -> ExperimentResult:
    """Online serving: diurnal arrivals at 75% of peak throughput (§6.2).

    The peak used for rate scaling is the placement's max flow, matching
    the paper's per-method normalization ("75% of the cluster's peak
    throughput").
    """
    rate = rate_for_utilization(
        planner_result.max_throughput, requests, utilization
    )
    stamped = diurnal_arrivals(requests, mean_rate=rate, seed=arrival_seed)
    return run_serving(
        cluster,
        model,
        planner_result,
        scheduler_method,
        stamped,
        setting="online",
        **kwargs,
    )
