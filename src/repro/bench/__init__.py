"""Experiment harness: one call per paper table/figure cell.

:mod:`repro.bench.runner` glues planner -> scheduler -> simulator into the
paper's two serving settings (offline and online). :mod:`repro.bench.tables`
regenerates the static tables. :mod:`repro.bench.perftrack` times the flow
kernel and planner and writes the ``BENCH_flow.json`` perf trajectory.
``benchmarks/`` (pytest-benchmark) calls into this package, one module per
table/figure.
"""

from repro.bench.runner import (
    ExperimentResult,
    make_planner,
    make_scheduler,
    run_serving,
    run_offline,
    run_online,
)
from repro.bench.tables import (
    table1_min_gpus,
    table3_gpu_catalog,
    format_table,
)
from repro.bench.casestudy import (
    NodeUtilization,
    CongestedLink,
    utilization_report,
    congestion_report,
    format_utilization,
)
from repro.bench.perftrack import (
    PerfTracker,
    run_flow_bench,
    run_milp_bench,
    run_online_bench,
)

__all__ = [
    "ExperimentResult",
    "make_planner",
    "make_scheduler",
    "run_serving",
    "run_offline",
    "run_online",
    "table1_min_gpus",
    "table3_gpu_catalog",
    "format_table",
    "NodeUtilization",
    "CongestedLink",
    "utilization_report",
    "congestion_report",
    "format_utilization",
    "PerfTracker",
    "run_flow_bench",
    "run_milp_bench",
    "run_online_bench",
]
