"""Case-study reports: GPU utilization (Fig. 9b) and congestion (Fig. 10b).

The paper's deep dives visualize *why* a configuration wins: Fig. 9b colors
each node by compute utilization under a placement; Fig. 10b marks the
congested links and root-causes them to scheduling decisions upstream.
These helpers produce the same evidence from a finished simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.simulator import Simulation


@dataclass(frozen=True)
class NodeUtilization:
    """One node's serving statistics over a simulation."""

    node_id: str
    gpu_label: str
    resident_layers: int
    utilization: float
    tokens_processed: float
    kv_peak_fraction: float


def utilization_report(simulation: Simulation) -> list[NodeUtilization]:
    """Per-node busy fractions after a run (the Fig. 9b quantities).

    Sorted by ascending utilization so under-utilized nodes (the paper's
    grey boxes) lead the list.
    """
    duration = max(simulation.now, 1e-9)
    rows = []
    for node_id, executor in simulation.executors.items():
        node = simulation.cluster.node(node_id)
        pool = simulation.kv_pools[node_id]
        kv_fraction = (
            pool.peak_tokens / pool.capacity_tokens
            if pool.capacity_tokens > 0
            else 0.0
        )
        rows.append(
            NodeUtilization(
                node_id=node_id,
                gpu_label=node.gpu_label,
                resident_layers=simulation.placement.interval(node_id).num_layers,
                utilization=executor.utilization(duration),
                tokens_processed=executor.stats.tokens,
                kv_peak_fraction=kv_fraction,
            )
        )
    rows.sort(key=lambda r: (r.utilization, r.node_id))
    return rows


@dataclass(frozen=True)
class CongestedLink:
    """One link's queueing profile plus its upstream root cause."""

    src: str
    dst: str
    mean_queueing_delay: float
    max_queueing_delay: float
    messages: int
    #: The node whose scheduling decisions feed this link — for coordinator
    #: egress that's the coordinator itself; otherwise the sending node.
    root_cause: str


def congestion_report(
    simulation: Simulation, min_delay: float = 0.0, top: int = 10
) -> list[CongestedLink]:
    """Rank links by mean queueing delay (the Fig. 10b evidence).

    Args:
        simulation: A finished simulation.
        min_delay: Drop links whose mean queueing delay is below this.
        top: Maximum rows returned.
    """
    rows = []
    for (src, dst), channel in simulation.channels.items():
        if channel.messages_sent == 0:
            continue
        if channel.mean_queueing_delay < min_delay:
            continue
        rows.append(
            CongestedLink(
                src=src,
                dst=dst,
                mean_queueing_delay=channel.mean_queueing_delay,
                max_queueing_delay=channel.max_queueing_delay,
                messages=channel.messages_sent,
                root_cause=src,
            )
        )
    rows.sort(key=lambda r: -r.mean_queueing_delay)
    return rows[:top]


def format_utilization(rows: list[NodeUtilization]) -> str:
    """Plain-text rendering of a utilization report."""
    lines = ["node           gpu      layers  util   kv_peak"]
    for row in rows:
        lines.append(
            f"{row.node_id:14s} {row.gpu_label:8s} {row.resident_layers:6d} "
            f"{row.utilization:5.1%} {row.kv_peak_fraction:8.1%}"
        )
    return "\n".join(lines)
