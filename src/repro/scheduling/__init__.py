"""Request schedulers (paper §5 and the §6.7 baselines).

Helix's scheduler assigns every request its *own* pipeline by walking the
cluster's topology graph with per-vertex interleaved weighted round-robin
(IWRR) selectors whose weights are the max-flow solution's per-connection
flows, masked by per-node KV-cache estimates.

The baselines the paper compares against are implemented alongside: SWARM's
real-time-throughput routing, uniform-random routing, shortest-queue-first,
and the fixed-pipeline round-robin used with the SP placements.
"""

from repro.scheduling.iwrr import InterleavedWeightedRoundRobin
from repro.scheduling.pipelines import PipelineStage, RequestPipeline
from repro.scheduling.kv_estimator import KVCacheEstimator
from repro.scheduling.base import Scheduler, TopologyGraph
from repro.scheduling.helix import HelixScheduler
from repro.scheduling.baselines import (
    SwarmScheduler,
    RandomScheduler,
    ShortestQueueScheduler,
    FixedPipelineScheduler,
)

__all__ = [
    "InterleavedWeightedRoundRobin",
    "PipelineStage",
    "RequestPipeline",
    "KVCacheEstimator",
    "Scheduler",
    "TopologyGraph",
    "HelixScheduler",
    "SwarmScheduler",
    "RandomScheduler",
    "ShortestQueueScheduler",
    "FixedPipelineScheduler",
]
