"""Per-request pipelines (paper §5.1).

A pipeline is the ordered list of (node, layer-interval) stages one request
traverses. A valid pipeline infers every model layer exactly once and in
order; with partial inference a stage may start mid-way through its node's
resident interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SchedulingError


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline hop: ``node_id`` computes layers ``[start, end)``."""

    node_id: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise SchedulingError(
                f"stage on {self.node_id!r} has invalid interval "
                f"[{self.start}, {self.end})"
            )

    @property
    def num_layers(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class RequestPipeline:
    """An ordered sequence of stages covering all model layers."""

    stages: tuple[PipelineStage, ...]

    @classmethod
    def from_stages(cls, stages: list[PipelineStage]) -> "RequestPipeline":
        return cls(stages=tuple(stages))

    @property
    def node_ids(self) -> list[str]:
        """Node ids along the pipeline, in execution order."""
        return [stage.node_id for stage in self.stages]

    @property
    def depth(self) -> int:
        """Number of pipeline stages."""
        return len(self.stages)

    def validate(self, num_layers: int) -> None:
        """Check the exactly-once, in-order coverage property.

        Raises:
            SchedulingError: On gaps, overlaps, repeated nodes, or not
                covering ``[0, num_layers)``.
        """
        if not self.stages:
            raise SchedulingError("pipeline has no stages")
        position = 0
        seen: set[str] = set()
        for stage in self.stages:
            if stage.node_id in seen:
                raise SchedulingError(
                    f"pipeline visits node {stage.node_id!r} twice"
                )
            seen.add(stage.node_id)
            if stage.start != position:
                raise SchedulingError(
                    f"pipeline gap/overlap at layer {position}: next stage "
                    f"starts at {stage.start}"
                )
            position = stage.end
        if position != num_layers:
            raise SchedulingError(
                f"pipeline covers layers [0, {position}) of {num_layers}"
            )
