"""Baseline request schedulers (paper §6.7).

* :class:`SwarmScheduler` — routes to the next-stage replica with
  probability proportional to its *observed* real-time throughput (EWMA of
  tokens/second reported by the execution engine), SWARM's policy.
* :class:`RandomScheduler` — uniform choice among valid next hops.
* :class:`ShortestQueueScheduler` — the next hop with the fewest
  outstanding requests.
* :class:`FixedPipelineScheduler` — round-robin over disjoint fixed
  pipelines (the policy the SP baseline uses).
"""

from __future__ import annotations

import random

from repro.core.errors import SchedulingError
from repro.core.placement_types import ModelPlacement
from repro.scheduling.base import Scheduler
from repro.scheduling.pipelines import PipelineStage, RequestPipeline


class SwarmScheduler(Scheduler):
    """Real-time-throughput-proportional routing.

    Args:
        seed: RNG seed for the proportional sampling.
        ewma_alpha: Smoothing factor for the per-node throughput estimate.
        **kwargs: Forwarded to :class:`~repro.scheduling.base.Scheduler`.
    """

    name = "swarm"

    def __init__(self, *args, seed: int = 0, ewma_alpha: float = 0.3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = random.Random(seed)
        self._alpha = ewma_alpha
        # Initialize estimates from the profiler so cold-start routing is
        # sane, as SWARM does with its initial capacity announcements.
        self._throughput: dict[str, float] = {}
        for node_id in self.placement.used_nodes:
            node = self.cluster.node(node_id)
            stage = self.placement.interval(node_id)
            self._throughput[node_id] = self.profiler.throughput(
                node, self.model, stage.num_layers
            )

    def notify_node_progress(self, node_id: str, tokens: float, elapsed: float) -> None:
        if elapsed <= 0:
            return
        observed = tokens / elapsed
        previous = self._throughput.get(node_id, observed)
        self._throughput[node_id] = (
            self._alpha * observed + (1 - self._alpha) * previous
        )

    def _choose_next(
        self, current: str, candidates: list[str], input_len: int
    ) -> str | None:
        if not candidates:
            return None
        weights = [max(self._throughput.get(nid, 0.0), 1e-9) for nid in candidates]
        return self._rng.choices(candidates, weights=weights, k=1)[0]

    def throughput_estimate(self, node_id: str) -> float:
        """Current EWMA estimate for a node (for tests)."""
        return self._throughput.get(node_id, 0.0)


class RandomScheduler(Scheduler):
    """Uniform-random routing among valid next hops."""

    name = "random"

    def __init__(self, *args, seed: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = random.Random(seed)

    def _choose_next(
        self, current: str, candidates: list[str], input_len: int
    ) -> str | None:
        if not candidates:
            return None
        return self._rng.choice(candidates)


class ShortestQueueScheduler(Scheduler):
    """Route to the next hop with the fewest outstanding requests."""

    name = "shortest-queue"

    def _choose_next(
        self, current: str, candidates: list[str], input_len: int
    ) -> str | None:
        if not candidates:
            return None
        return min(candidates, key=lambda nid: (self.outstanding.get(nid, 0), nid))


class FixedPipelineScheduler(Scheduler):
    """Round-robin over disjoint fixed pipelines (SP's policy, §5.1).

    Args:
        pipelines: Ordered node lists, one per pipeline (e.g. from
            :class:`~repro.placement.separate.SeparatePipelinesPlanner`).
        **kwargs: Forwarded to :class:`~repro.scheduling.base.Scheduler`.
    """

    name = "fixed-pipelines"

    def __init__(self, *args, pipelines: list[list[str]], **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not pipelines:
            raise SchedulingError("no fixed pipelines provided")
        self._pipelines = [self._materialize(nodes) for nodes in pipelines]
        self._cursor = 0

    def _materialize(self, node_ids: list[str]) -> RequestPipeline:
        stages = []
        position = 0
        for node_id in node_ids:
            stage = self.placement.interval(node_id)
            if stage.start > position:
                raise SchedulingError(
                    f"fixed pipeline gap before node {node_id!r} at layer {position}"
                )
            stages.append(PipelineStage(node_id, position, stage.end))
            position = stage.end
        pipeline = RequestPipeline.from_stages(stages)
        pipeline.validate(self.placement.num_layers)
        return pipeline

    def _build_pipeline(self, input_len: int) -> RequestPipeline | None:
        # Try each pipeline once, starting from the round-robin cursor, and
        # take the first whose every node admits the request.
        count = len(self._pipelines)
        for offset in range(count):
            index = (self._cursor + offset) % count
            pipeline = self._pipelines[index]
            if all(
                self._admits(stage.node_id, input_len)
                for stage in pipeline.stages
            ):
                self._cursor = (index + 1) % count
                return pipeline
        return None

    def _choose_next(
        self, current: str, candidates: list[str], input_len: int
    ) -> str | None:  # pragma: no cover - unused, pipelines are fixed
        raise NotImplementedError
