"""Helix's max-flow-guided per-request pipeline scheduler (paper §5.1).

Each topology-graph vertex carries an IWRR selector whose candidate weights
are the flows assigned to its outgoing connections by the max-flow solution.
Scheduling a request walks the graph from the coordinator, consulting each
vertex's selector in turn, so that over time traffic matches the max-flow
solution without bursts. Nodes above the KV high-water mark are masked from
selection (§5.2).
"""

from __future__ import annotations

from repro.cluster.node import COORDINATOR
from repro.core.errors import SchedulingError
from repro.flow.graph import FlowSolution
from repro.scheduling.base import Scheduler
from repro.scheduling.iwrr import InterleavedWeightedRoundRobin

_FLOW_EPSILON = 1e-6


class HelixScheduler(Scheduler):
    """IWRR-over-max-flow per-request pipeline scheduler.

    Args:
        flow: The max-flow solution for the placement (from the planner).
            Its per-connection flows become IWRR weights; connections with
            zero flow are never used, exactly as in the paper's Fig. 4.
        **kwargs: Forwarded to :class:`~repro.scheduling.base.Scheduler`.
    """

    name = "helix"

    def __init__(self, *args, flow: FlowSolution, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if flow.max_flow <= 0:
            raise SchedulingError(
                "max-flow solution carries no flow; placement cannot serve"
            )
        self.flow = flow
        self._selectors: dict[str, InterleavedWeightedRoundRobin] = {}
        self._rebuild_selectors()

    def _rebuild_selectors(self) -> None:
        """Derive fresh IWRR selectors from the current flow solution."""
        self._selectors = {}
        for vertex in [COORDINATOR] + self.placement.used_nodes:
            weights = {}
            for successor in self.topology.node_successors(vertex):
                value = self.flow.connection_flows.get((vertex, successor), 0.0)
                if value > _FLOW_EPSILON:
                    weights[successor] = value
            if weights:
                self._selectors[vertex] = InterleavedWeightedRoundRobin(weights)

    def apply_placement(self, placement, flow: FlowSolution | None = None) -> None:
        """Hot-swap a replanned placement plus its max-flow solution.

        The new flow's per-connection values become fresh IWRR weights
        (selector credits reset — the old interleaving state is meaningless
        under new weights); in-flight requests keep their old pipelines and
        drain normally.
        """
        if flow is not None:
            if flow.max_flow <= 0:
                raise SchedulingError(
                    "max-flow solution carries no flow; placement cannot serve"
                )
            self.flow = flow
        super().apply_placement(placement)
        self._rebuild_selectors()

    def _choose_next(
        self, current: str, candidates: list[str], input_len: int
    ) -> str | None:
        selector = self._selectors.get(current)
        if selector is None:
            return None
        return selector.select(allowed=candidates)

    def selector_weights(self, vertex: str) -> dict[str, float]:
        """The IWRR weights at a vertex (for inspection and tests)."""
        selector = self._selectors.get(vertex)
        return selector.weights if selector is not None else {}
