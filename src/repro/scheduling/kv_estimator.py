"""KV-cache usage estimation and masking (paper §5.2).

Output lengths are unknown at schedule time, so the scheduler tracks an
*estimate* of each node's KV-cache occupancy — every in-flight request
charges ``input_len + expected_output_len`` tokens to every node in its
pipeline — and masks out nodes whose estimate exceeds a high-water mark.
Charges are released when the request finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(slots=True)
class _NodeKVState:
    capacity_tokens: int
    estimated_tokens: float = 0.0


class KVCacheEstimator:
    """Tracks estimated KV occupancy per node and applies the mask.

    Args:
        capacities: Node id -> KV token capacity (for the layers the node
            holds under the current placement).
        expected_output_len: The average output length used to estimate a
            request's final footprint (the paper uses the trace average).
        high_water_mark: Fraction of capacity above which a node stops
            receiving new requests.
    """

    def __init__(
        self,
        capacities: dict[str, int],
        expected_output_len: float = 232.0,
        high_water_mark: float = 0.9,
    ) -> None:
        if not 0.0 < high_water_mark <= 1.0:
            raise ValueError(f"high_water_mark must be in (0, 1], got {high_water_mark}")
        self._nodes = {
            nid: _NodeKVState(capacity_tokens=max(0, int(cap)))
            for nid, cap in capacities.items()
        }
        self.expected_output_len = expected_output_len
        self.high_water_mark = high_water_mark

    # ------------------------------------------------------------------
    def estimate_for(self, input_len: int) -> float:
        """Estimated final KV footprint of a request, in tokens."""
        return input_len + self.expected_output_len

    def admits(self, node_id: str, input_len: int) -> bool:
        """Whether ``node_id`` can accept a request without overcommitting."""
        state = self._nodes.get(node_id)
        if state is None or state.capacity_tokens <= 0:
            return False
        projected = state.estimated_tokens + self.estimate_for(input_len)
        return projected <= self.high_water_mark * state.capacity_tokens

    def charge(self, node_id: str, input_len: int) -> None:
        """Record a scheduled request's estimated footprint on a node."""
        state = self._nodes.get(node_id)
        if state is not None:
            state.estimated_tokens += self.estimate_for(input_len)

    def release(self, node_id: str, input_len: int) -> None:
        """Release a finished request's footprint from a node."""
        state = self._nodes.get(node_id)
        if state is not None:
            state.estimated_tokens = max(
                0.0, state.estimated_tokens - self.estimate_for(input_len)
            )

    def charge_pipeline(self, node_ids: Iterable[str], input_len: int) -> None:
        """Charge one request's footprint on every node of its pipeline.

        Same arithmetic as calling :meth:`charge` per node, with the
        estimate computed once — this runs on every scheduling attempt, so
        the admission-retry storm of a flooded run stays cheap.
        """
        estimate = input_len + self.expected_output_len
        nodes = self._nodes
        for node_id in node_ids:
            state = nodes.get(node_id)
            if state is not None:
                state.estimated_tokens += estimate

    def release_pipeline(self, node_ids: Iterable[str], input_len: int) -> None:
        """Release one request's footprint from every node of its pipeline."""
        estimate = input_len + self.expected_output_len
        nodes = self._nodes
        for node_id in node_ids:
            state = nodes.get(node_id)
            if state is not None:
                estimated = state.estimated_tokens - estimate
                state.estimated_tokens = estimated if estimated > 0.0 else 0.0

    def occupancy(self, node_id: str) -> float:
        """Estimated occupancy fraction of a node (0 when unknown)."""
        state = self._nodes.get(node_id)
        if state is None or state.capacity_tokens == 0:
            return 0.0
        return state.estimated_tokens / state.capacity_tokens

    def capacity(self, node_id: str) -> int:
        """KV token capacity of a node (0 when unknown)."""
        state = self._nodes.get(node_id)
        return state.capacity_tokens if state is not None else 0

    def set_capacity(self, node_id: str, capacity: int) -> None:
        """Re-bind a node's capacity, preserving its outstanding estimate.

        Used when a live replanning changes how many layers a node holds
        (its KV partition resizes) or adds a node mid-serving; charges from
        in-flight requests must survive the swap.
        """
        state = self._nodes.get(node_id)
        if state is None:
            self._nodes[node_id] = _NodeKVState(
                capacity_tokens=max(0, int(capacity))
            )
        else:
            state.capacity_tokens = max(0, int(capacity))
