"""Scheduler base class and the cluster topology graph (paper §5.1).

The topology graph's vertices are the coordinator and all used compute
nodes; its directed edges are the network connections that are *valid*
under the current model placement. Every scheduler builds request pipelines
by walking this graph from the coordinator until the model's last layer is
reached; subclasses only decide *which* successor to take at each vertex.
"""

from __future__ import annotations

import abc

from repro.cluster.cluster import Cluster
from repro.cluster.node import COORDINATOR
from repro.cluster.profiler import Profiler
from repro.core.errors import SchedulingError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowSolution, connection_is_valid
from repro.models.specs import ModelSpec
from repro.scheduling.kv_estimator import KVCacheEstimator
from repro.scheduling.pipelines import PipelineStage, RequestPipeline


class TopologyGraph:
    """Valid-connection graph of a placed cluster.

    Args:
        cluster: The serving cluster.
        placement: The current model placement.
        partial_inference: Whether mid-interval handoffs are valid.
    """

    def __init__(
        self,
        cluster: Cluster,
        placement: ModelPlacement,
        partial_inference: bool = True,
    ) -> None:
        self.placement = placement
        self.partial_inference = partial_inference
        self._successors: dict[str, list[str]] = {}
        vertices = [COORDINATOR] + placement.used_nodes
        for vertex in vertices:
            succ = []
            for link in cluster.links_from(vertex):
                if connection_is_valid(
                    placement, vertex, link.dst, partial_inference
                ):
                    succ.append(link.dst)
            self._successors[vertex] = succ

    def successors(self, vertex: str) -> list[str]:
        """Valid next hops from ``vertex`` (may include the coordinator)."""
        return list(self._successors.get(vertex, []))

    def node_successors(self, vertex: str) -> list[str]:
        """Valid next compute nodes (excluding the sink edge)."""
        return [v for v in self._successors.get(vertex, []) if v != COORDINATOR]

    def reaches_sink(self, vertex: str) -> bool:
        """Whether ``vertex`` has a valid edge back to the coordinator."""
        return COORDINATOR in self._successors.get(vertex, [])


class Scheduler(abc.ABC):
    """Assigns per-request pipelines by walking the topology graph.

    Subclasses implement :meth:`_choose_next` — the routing policy at one
    vertex. KV-cache estimation/masking (paper §5.2) and outstanding-work
    accounting are handled here so every policy competes under the same
    admission rules.

    Args:
        cluster: The serving cluster.
        model: The served model.
        placement: The model placement in effect.
        profiler: Performance model (for KV capacities).
        partial_inference: Whether mid-interval handoffs are valid.
        expected_output_len: Output-length estimate for KV accounting.
        kv_high_water_mark: Node occupancy fraction above which the node is
            masked from scheduling.
        kv_masking: Disable to study scheduling without KV admission
            control (used in ablations).
    """

    name = "base"

    def __init__(
        self,
        cluster: Cluster,
        model: ModelSpec,
        placement: ModelPlacement,
        profiler: Profiler | None = None,
        partial_inference: bool = True,
        expected_output_len: float = 232.0,
        kv_high_water_mark: float = 0.9,
        kv_masking: bool = True,
    ) -> None:
        placement.validate()
        self.cluster = cluster
        self.model = model
        self.placement = placement
        self.profiler = profiler or Profiler()
        self.partial_inference = partial_inference
        self.topology = TopologyGraph(cluster, placement, partial_inference)
        self.kv_masking = kv_masking

        capacities = {}
        for node_id in placement.used_nodes:
            node = cluster.node(node_id)
            stage = placement.interval(node_id)
            capacities[node_id] = self.profiler.kv_capacity(
                node, model, stage.num_layers
            )
        self.kv = KVCacheEstimator(
            capacities,
            expected_output_len=expected_output_len,
            high_water_mark=kv_high_water_mark,
        )
        self.outstanding: dict[str, int] = {nid: 0 for nid in placement.used_nodes}
        #: Nodes currently down; masked from every pipeline walk.
        self.down_nodes: set[str] = set()
        #: Nodes still pulling their assigned layers (layer residency):
        #: placed but not yet servable, masked like down nodes until the
        #: simulator calls :meth:`mark_node_warm`.
        self.warming_nodes: set[str] = set()
        #: Pending-queue depth above which :meth:`admit` sheds arrivals
        #: (``None`` = admit everything, the legacy semantics). Set by the
        #: simulator from the run's :class:`~repro.sim.policy.RequestPolicy`.
        self.admission_limit: int | None = None
        self._active: dict[str, RequestPipeline] = {}
        self._active_input_len: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Pipeline construction
    # ------------------------------------------------------------------
    def schedule(self, request_id: str, input_len: int) -> RequestPipeline | None:
        """Build and register a pipeline for a request.

        Returns ``None`` when no admissible pipeline exists right now (all
        candidate nodes above the KV high-water mark); callers should retry
        after :meth:`notify_finished` releases capacity.
        """
        if request_id in self._active:
            raise SchedulingError(f"request {request_id!r} is already scheduled")
        pipeline = self._build_pipeline(input_len)
        if pipeline is None:
            return None
        outstanding = self.outstanding
        node_ids = [stage.node_id for stage in pipeline.stages]
        self.kv.charge_pipeline(node_ids, input_len)
        for node_id in node_ids:
            outstanding[node_id] = outstanding.get(node_id, 0) + 1
        self._active[request_id] = pipeline
        self._active_input_len[request_id] = input_len
        return pipeline

    def _build_pipeline(self, input_len: int) -> RequestPipeline | None:
        num_layers = self.placement.num_layers
        stages: list[PipelineStage] = []
        current = COORDINATOR
        position = 0
        visited: set[str] = set()
        while position < num_layers:
            candidates = [
                nid
                for nid in self.topology.node_successors(current)
                if nid not in visited
                and nid not in self.down_nodes
                and nid not in self.warming_nodes
                and self._admits(nid, input_len)
            ]
            chosen = self._choose_next(current, candidates, input_len)
            if chosen is None:
                return None
            stage_end = self.placement.interval(chosen).end
            stages.append(PipelineStage(chosen, position, stage_end))
            visited.add(chosen)
            position = stage_end
            current = chosen
        if not self.topology.reaches_sink(current):
            return None
        pipeline = RequestPipeline.from_stages(stages)
        pipeline.validate(num_layers)
        return pipeline

    def _admits(self, node_id: str, input_len: int) -> bool:
        if not self.kv_masking:
            return True
        return self.kv.admits(node_id, input_len)

    def admit(
        self, request_id: str, input_len: int, queued: int, priority: int = 0
    ) -> bool:
        """Whether a freshly-arrived, unschedulable request may queue.

        Called by the simulator when :meth:`schedule` returned ``None`` at
        arrival time; returning ``False`` sheds the request (it counts as
        *shed* under its ``priority`` class, never enters the pending
        queue, and is never retried). The base policy is a pure
        queue-depth bound; ``priority`` is the request's admission class
        (higher = more important) so subclasses — and the simulator's
        tenancy layer, which may evict a lower-priority queued request
        instead of shedding the arrival — can shed lowest-priority
        traffic first. The base policy ignores it.
        """
        limit = self.admission_limit
        return limit is None or queued < limit

    @abc.abstractmethod
    def _choose_next(
        self, current: str, candidates: list[str], input_len: int
    ) -> str | None:
        """Pick the next hop among admissible ``candidates`` (or ``None``)."""

    # ------------------------------------------------------------------
    # Lifecycle callbacks (driven by the simulator)
    # ------------------------------------------------------------------
    def notify_finished(self, request_id: str) -> None:
        """Release a finished request's KV charges and queue slots."""
        pipeline = self._active.pop(request_id, None)
        if pipeline is None:
            return
        input_len = self._active_input_len.pop(request_id)
        outstanding = self.outstanding
        node_ids = [stage.node_id for stage in pipeline.stages]
        self.kv.release_pipeline(node_ids, input_len)
        for node_id in node_ids:
            outstanding[node_id] = max(0, outstanding.get(node_id, 0) - 1)

    def notify_failed(self, request_id: str) -> None:
        """Release a *failed* request's charges so it can be rescheduled.

        Same bookkeeping as :meth:`notify_finished` — the request stops
        occupying its pipeline — but named separately so online callers read
        correctly and policies can distinguish the two if they need to.
        """
        self.notify_finished(request_id)

    def notify_node_progress(
        self, node_id: str, tokens: float, elapsed: float
    ) -> None:
        """Observe a node finishing work (used by throughput-based policies)."""

    # ------------------------------------------------------------------
    # Online dynamics (driven by the controller/simulator)
    # ------------------------------------------------------------------
    def mark_node_down(self, node_id: str) -> None:
        """Mask a failed node out of every future pipeline walk."""
        self.down_nodes.add(node_id)

    def mark_node_up(self, node_id: str) -> None:
        """Lift a node's failure mask."""
        self.down_nodes.discard(node_id)

    def mark_node_warming(self, node_id: str) -> None:
        """Mask a node whose assigned layers are not yet resident."""
        self.warming_nodes.add(node_id)

    def mark_node_warm(self, node_id: str) -> None:
        """Lift a node's warming mask (its layers landed in VRAM)."""
        self.warming_nodes.discard(node_id)

    def apply_placement(self, placement: ModelPlacement, flow=None) -> None:
        """Hot-swap a replanned placement without dropping in-flight state.

        Rebuilds the topology graph and per-node KV capacities for the new
        placement while preserving active-request charges and outstanding
        counts — the live analogue of constructing a fresh scheduler.
        Subclasses that route from a flow solution override this to also
        rebuild their selectors (``flow`` is ignored here).
        """
        placement.validate()
        self.placement = placement
        self.topology = TopologyGraph(
            self.cluster, placement, self.partial_inference
        )
        for node_id in placement.used_nodes:
            node = self.cluster.node(node_id)
            stage = placement.interval(node_id)
            self.kv.set_capacity(
                node_id,
                self.profiler.kv_capacity(node, self.model, stage.num_layers),
            )
            self.outstanding.setdefault(node_id, 0)

    @property
    def active_requests(self) -> int:
        """Number of requests currently holding pipelines."""
        return len(self._active)

    def pipeline_of(self, request_id: str) -> RequestPipeline:
        """The pipeline assigned to an active request."""
        try:
            return self._active[request_id]
        except KeyError:
            raise SchedulingError(f"request {request_id!r} is not active") from None
