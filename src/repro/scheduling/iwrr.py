"""Interleaved weighted round-robin selection (paper §5.1).

The paper binds an IWRR scheduler to each topology-graph vertex so that
requests follow the max-flow solution "without creating bursts". We use the
smooth weighted round-robin formulation (the one nginx popularized): each
selection adds every candidate's weight to its current credit, picks the
highest-credit candidate, and charges it the total weight. The resulting
sequence interleaves candidates proportionally to their weights — e.g.
weights (5, 1, 1) yield ``A A B A A C A`` rather than ``A A A A A B C`` —
which is exactly the interleaving property IWRR provides.

Weights may be floats (flows in tokens/second). Candidates may be masked
per call; a fully-masked selector returns ``None``.

``select`` runs once per pipeline stage of every scheduling attempt, which
makes it hot under flooded admission retries, so it is allocation-free: the
candidate order and the unmasked weight total are cached at construction
(invalidated by :meth:`update_weight`) and a masked call walks the cached
order testing membership instead of building per-call lists and sets. The
selection sequence is identical to the original formulation.
"""

from __future__ import annotations

from typing import Container, Hashable, Iterable


class InterleavedWeightedRoundRobin:
    """Smooth weighted round-robin over a fixed candidate set.

    Args:
        weights: Mapping from candidate to positive weight. Candidates with
            non-positive weight are dropped at construction.
    """

    __slots__ = ("_weights", "_credit", "_order", "_total")

    def __init__(self, weights: dict[Hashable, float]) -> None:
        self._weights = {c: float(w) for c, w in weights.items() if w > 0.0}
        self._credit = {c: 0.0 for c in self._weights}
        self._refresh_cache()

    def _refresh_cache(self) -> None:
        """Rebuild the cached candidate order and total weight."""
        self._order = tuple(self._weights)
        total = 0.0
        for candidate in self._order:
            total += self._weights[candidate]
        self._total = total

    @property
    def candidates(self) -> list[Hashable]:
        """Live candidates (positive weight), in insertion order."""
        return list(self._order)

    @property
    def weights(self) -> dict[Hashable, float]:
        """Candidate weights."""
        return dict(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def select(self, allowed: Iterable[Hashable] | None = None) -> Hashable | None:
        """Pick the next candidate, optionally restricted to ``allowed``.

        Masked selections do not disturb the credit of masked candidates,
        so temporarily-unavailable candidates (e.g. KV-full nodes) resume
        their fair share once unmasked.

        Returns:
            The selected candidate, or ``None`` if no candidate is allowed.
        """
        weights = self._weights
        credit = self._credit
        best = None
        best_credit = -1.0
        first = True
        if allowed is None:
            for candidate in self._order:
                new_credit = credit[candidate] + weights[candidate]
                credit[candidate] = new_credit
                if first or new_credit > best_credit:
                    best_credit = new_credit
                    best = candidate
                    first = False
            if first:
                return None
            credit[best] -= self._total
            return best
        if not isinstance(allowed, Container) or isinstance(allowed, str):
            allowed = tuple(allowed)  # single-pass iterables need buffering
        total = 0.0
        for candidate in self._order:
            if candidate in allowed:
                weight = weights[candidate]
                total += weight
                new_credit = credit[candidate] + weight
                credit[candidate] = new_credit
                if first or new_credit > best_credit:
                    best_credit = new_credit
                    best = candidate
                    first = False
        if first:
            return None
        credit[best] -= total
        return best

    def update_weight(self, candidate: Hashable, weight: float) -> None:
        """Change (or add/remove) a candidate's weight at runtime."""
        if weight > 0.0:
            self._weights[candidate] = float(weight)
            self._credit.setdefault(candidate, 0.0)
        else:
            self._weights.pop(candidate, None)
            self._credit.pop(candidate, None)
        self._refresh_cache()
