"""Interleaved weighted round-robin selection (paper §5.1).

The paper binds an IWRR scheduler to each topology-graph vertex so that
requests follow the max-flow solution "without creating bursts". We use the
smooth weighted round-robin formulation (the one nginx popularized): each
selection adds every candidate's weight to its current credit, picks the
highest-credit candidate, and charges it the total weight. The resulting
sequence interleaves candidates proportionally to their weights — e.g.
weights (5, 1, 1) yield ``A A B A A C A`` rather than ``A A A A A B C`` —
which is exactly the interleaving property IWRR provides.

Weights may be floats (flows in tokens/second). Candidates may be masked
per call; a fully-masked selector returns ``None``.
"""

from __future__ import annotations

from typing import Hashable, Iterable


class InterleavedWeightedRoundRobin:
    """Smooth weighted round-robin over a fixed candidate set.

    Args:
        weights: Mapping from candidate to positive weight. Candidates with
            non-positive weight are dropped at construction.
    """

    def __init__(self, weights: dict[Hashable, float]) -> None:
        self._weights = {c: float(w) for c, w in weights.items() if w > 0.0}
        self._credit = {c: 0.0 for c in self._weights}

    @property
    def candidates(self) -> list[Hashable]:
        """Live candidates (positive weight), in insertion order."""
        return list(self._weights)

    @property
    def weights(self) -> dict[Hashable, float]:
        """Candidate weights."""
        return dict(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def select(self, allowed: Iterable[Hashable] | None = None) -> Hashable | None:
        """Pick the next candidate, optionally restricted to ``allowed``.

        Masked selections do not disturb the credit of masked candidates,
        so temporarily-unavailable candidates (e.g. KV-full nodes) resume
        their fair share once unmasked.

        Returns:
            The selected candidate, or ``None`` if no candidate is allowed.
        """
        if allowed is None:
            pool = list(self._weights)
        else:
            allowed_set = set(allowed)
            pool = [c for c in self._weights if c in allowed_set]
        if not pool:
            return None

        total = sum(self._weights[c] for c in pool)
        best = None
        best_credit = float("-inf")
        for candidate in pool:
            self._credit[candidate] += self._weights[candidate]
            if self._credit[candidate] > best_credit:
                best_credit = self._credit[candidate]
                best = candidate
        self._credit[best] -= total
        return best

    def update_weight(self, candidate: Hashable, weight: float) -> None:
        """Change (or add/remove) a candidate's weight at runtime."""
        if weight > 0.0:
            self._weights[candidate] = float(weight)
            self._credit.setdefault(candidate, 0.0)
        else:
            self._weights.pop(candidate, None)
            self._credit.pop(candidate, None)
