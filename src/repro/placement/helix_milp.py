"""Helix's MILP-based model placement planner (paper §4.4-4.6).

The formulation follows Tables 5 and 6 of the paper exactly:

* per node ``c_i``: an integer ``s_i`` (first layer held) and binaries
  ``b_i^j`` (``c_i`` holds exactly ``j`` layers), with
  ``e_i = s_i + Σ j·b_i^j``;
* per candidate connection: a continuous flow ``f_{u,v}``, a validity
  binary ``d_{u,v}``, and (for compute-compute links) the two auxiliary
  binaries ``cond1``/``cond2`` that linearize the partial-inference
  validity test ``s_j <= e_i < e_j``;
* constraint groups 1-5 (placement, flow conservation, inference
  throughput, connection validity, transmission throughput);
* objective: maximize total flow out of the source.

The §4.5 optimizations are all implemented: cluster pruning
(:func:`~repro.placement.pruning.prune_cluster`), heuristic warm starts
(best-of Swarm/Petals/SP, injected as an objective cutoff for HiGHS or as
the initial incumbent for our branch-and-bound), and the compute-sum upper
bound both as a strengthening cut and as an early-stop criterion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.cluster.cluster import Cluster
from repro.cluster.node import COORDINATOR
from repro.cluster.profiler import Profiler
from repro.core.errors import PlacementError, SolverError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import connection_is_valid
from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.milp.model import MilpProblem, Variable, lin_sum
from repro.milp.scipy_backend import solve_with_highs
from repro.milp.solution import MilpSolution, SolveStatus
from repro.models.specs import ModelSpec
from repro.placement.base import PlacementPlanner, PlannerResult
from repro.placement.pruning import prune_cluster


@dataclass
class MilpFormulation:
    """The compiled MILP plus handles to its variables.

    Attributes:
        problem: The MILP.
        s_vars: Node id -> first-layer integer variable.
        b_vars: Node id -> list of layer-count binaries (index ``j-1``).
        f_vars: Connection ``(src, dst)`` -> flow variable. Endpoints are
            node ids or :data:`~repro.cluster.node.COORDINATOR`.
        d_vars: Connection -> validity binary.
        throughputs: Node id -> ``T_j`` table (index ``j-1``).
        capacities: Connection -> token capacity ``S_{u,v}``.
        upper_bound: The §4.5 compute-sum throughput upper bound.
    """

    problem: MilpProblem
    s_vars: dict[str, Variable]
    b_vars: dict[str, list[Variable]]
    f_vars: dict[tuple[str, str], Variable]
    d_vars: dict[tuple[str, str], Variable]
    throughputs: dict[str, list[float]]
    capacities: dict[tuple[str, str], float]
    upper_bound: float


class HelixMilpPlanner(PlacementPlanner):
    """Optimal model placement by maximizing cluster max-flow with MILP.

    Args:
        cluster: The target cluster.
        model: The model to place.
        profiler: Performance model supplying ``T_j`` and link capacities.
        partial_inference: Allow ``s_j <= e_i < e_j`` handoffs (§4.4). When
            false, the simplified exact-boundary validity constraints are
            used instead.
        prune_degree: If set, plan on a pruned copy of the cluster keeping
            at most this many outgoing links per node (§4.5).
        time_limit: Solver wall-clock budget in seconds.
        hints: Heuristic placements used to warm-start the solver. The
            string ``"auto"`` (default) derives them from the Swarm, Petals,
            and separate-pipelines planners; ``None`` disables hinting.
        backend: ``"highs"`` (scipy/HiGHS, default) or ``"bnb"`` (our
            branch-and-bound, which records an incumbent trajectory).
        mip_rel_gap: Relative optimality gap at which the solver may stop.
        hint_cutoff: With the HiGHS backend, additionally inject the best
            hint's value as an objective cut. This prunes the tree like a
            MIP start but also makes *finding* an incumbent harder, so it
            is off by default; the ``bnb`` backend warm-starts natively.
        adaptive_budget: Spend the HiGHS time budget in growing slices and
            stop as soon as a slice fails to improve on the best incumbent
            seen (including the heuristic hint). scipy's ``milp`` cannot
            report incumbents mid-solve, so this is the only way to stop
            paying for wall-clock that is no longer buying solution
            quality. Disable to reproduce the single full-budget solve.
        lns_mode: ``"incremental"`` (default) freezes nodes outside each
            LNS window by tightening variable *bounds* on the cached
            compiled formulation — no rebuild, no recompile, and HiGHS
            presolve eliminates the frozen variables. ``"rebuild"``
            reproduces the pre-optimization behaviour (equality
            constraints appended per round, full recompile) for perf
            baselines.
        lns_seed: Seed of the LNS window-selection RNG. The search never
            touches global random state, so a planner configuration plus
            this seed reproduces the exact round sequence.
        bnb_options: Extra keyword arguments forwarded to
            :class:`BranchAndBoundSolver` (feature switches, stall_time).
    """

    name = "helix"

    def __init__(
        self,
        cluster: Cluster,
        model: ModelSpec,
        profiler: Profiler | None = None,
        partial_inference: bool = True,
        prune_degree: int | None = None,
        time_limit: float = 120.0,
        hints: str | list[ModelPlacement] | None = "auto",
        backend: str = "highs",
        mip_rel_gap: float = 1e-4,
        hint_cutoff: bool = False,
        lns_rounds: int = 0,
        lns_window: int = 8,
        lns_time_limit: float = 20.0,
        adaptive_budget: bool = True,
        lns_mode: str = "incremental",
        lns_seed: int = 0,
        bnb_options: dict | None = None,
    ) -> None:
        super().__init__(cluster, model, profiler, partial_inference)
        if backend not in ("highs", "bnb"):
            raise ValueError(f"unknown backend {backend!r}")
        if lns_mode not in ("incremental", "rebuild"):
            raise ValueError(f"unknown lns_mode {lns_mode!r}")
        self.prune_degree = prune_degree
        self.time_limit = time_limit
        self.hints = hints
        self.backend = backend
        self.mip_rel_gap = mip_rel_gap
        self.hint_cutoff = hint_cutoff
        self.lns_rounds = lns_rounds
        self.lns_window = lns_window
        self.lns_time_limit = lns_time_limit
        self.adaptive_budget = adaptive_budget
        self.lns_mode = lns_mode
        self.lns_seed = lns_seed
        self.bnb_options = dict(bnb_options or {})
        self.last_trajectory = None  # set by the bnb backend
        self.last_solver_stats = None  # set by the bnb backend
        #: Telemetry: MILP solve calls issued during the last plan().
        self.milp_solve_count = 0
        # Formulation reused across replan() calls (the LNS rounds only
        # tighten bounds and append/truncate constraints, so the compiled
        # structure cache stays valid between calls).
        self._replan_formulation: MilpFormulation | None = None
        # Layer-residency hint (set by the online controller before a
        # replan): node_id -> resident layer set, plus the relative bonus
        # a fully-resident placement earns in candidate scoring.
        self._residency_hint: dict[str, frozenset[int]] | None = None
        self._residency_bonus: float = 0.0

    def set_residency_hint(
        self,
        resident: dict[str, frozenset[int]] | None,
        warm_bonus: float = 0.15,
    ) -> None:
        """Bias candidate scoring toward layers already in VRAM.

        With a hint installed, :meth:`_placement_value` multiplies a
        placement's max-flow by ``1 + warm_bonus * resident_fraction``,
        where the fraction counts assigned layers already resident on
        their assigned node. A warm spare (layers staged, zero transfer
        needed) therefore beats an equal-throughput cold candidate and
        the repaired placement starts serving sooner — the
        residency-aware half of MTTR. Pass ``None`` to clear.
        """
        self._residency_hint = resident
        self._residency_bonus = warm_bonus

    # ------------------------------------------------------------------
    # Formulation (Tables 5 and 6)
    # ------------------------------------------------------------------
    def build_formulation(self, cluster: Cluster | None = None) -> MilpFormulation:
        """Build the MILP for ``cluster`` (default: the planner's cluster)."""
        cluster = cluster or self.cluster
        model = self.model
        num_layers = model.num_layers
        problem = MilpProblem(name=f"helix-{cluster.name}")

        placeable = [
            nid for nid in cluster.node_ids
            if self.profiler.max_layers(cluster.node(nid), model) >= 1
        ]
        if not placeable:
            raise PlacementError("no node can hold even a single layer")

        s_vars: dict[str, Variable] = {}
        b_vars: dict[str, list[Variable]] = {}
        throughputs: dict[str, list[float]] = {}
        end_exprs = {}
        for nid in placeable:
            node = cluster.node(nid)
            k = min(self.profiler.max_layers(node, model), num_layers)
            s = problem.add_var(f"s[{nid}]", 0, num_layers - 1, integer=True)
            bs = [problem.add_binary(f"b[{nid}][{j}]") for j in range(1, k + 1)]
            throughputs[nid] = [
                self.profiler.throughput(node, model, j) for j in range(1, k + 1)
            ]
            s_vars[nid] = s
            b_vars[nid] = bs
            # Constraint-1: exactly one layer count, and e_i <= L.
            problem.add_constraint(lin_sum(bs) == 1, name=f"one_count[{nid}]")
            end = s + lin_sum((j + 1) * b for j, b in enumerate(bs))
            end_exprs[nid] = end
            problem.add_constraint(end <= num_layers, name=f"end_bound[{nid}]")

        f_vars: dict[tuple[str, str], Variable] = {}
        d_vars: dict[tuple[str, str], Variable] = {}
        capacities: dict[tuple[str, str], float] = {}

        for (src, dst), link in cluster.links.items():
            if src != COORDINATOR and src not in s_vars:
                continue
            if dst != COORDINATOR and dst not in s_vars:
                continue
            carries_activations = src != COORDINATOR and dst != COORDINATOR
            capacity = self.profiler.link_token_capacity(
                link, model, carries_activations
            )
            key = (src, dst)
            f = problem.add_var(f"f[{src}->{dst}]", 0.0, capacity)
            d = problem.add_binary(f"d[{src}->{dst}]")
            f_vars[key] = f
            d_vars[key] = d
            capacities[key] = capacity
            # Constraint-5: transmission throughput through valid links only.
            problem.add_constraint(f <= capacity * d, name=f"trans[{src}->{dst}]")

            # Constraint-4: connection validity.
            if src == COORDINATOR:
                problem.add_constraint(
                    s_vars[dst] <= num_layers * (1 - d),
                    name=f"valid_src[{dst}]",
                )
            elif dst == COORDINATOR:
                problem.add_constraint(
                    num_layers * d <= end_exprs[src],
                    name=f"valid_sink[{src}]",
                )
            elif self.partial_inference:
                cond1 = problem.add_binary(f"cond1[{src}->{dst}]")
                cond2 = problem.add_binary(f"cond2[{src}->{dst}]")
                # Per-link big-M constants (§4.5, tighter than the global
                # L+1): each must only dominate its condition's worst-case
                # RHS given the endpoints' layer bounds, which tightens the
                # LP relaxation of every cond binary.
                #   cond1 slack: max(s_j - e_i) with e_i >= s_i_lo + 1;
                #   cond2 slack: 1 + max(e_i) - min(e_j), where e_i is
                #   capped both by L and by s_i_hi + max_layers(src).
                src_end_upper = min(
                    float(num_layers),
                    s_vars[src].upper + len(b_vars[src]),
                )
                big_m1 = max(
                    1.0, s_vars[dst].upper - (s_vars[src].lower + 1.0)
                )
                big_m2 = max(
                    1.0, 1.0 + src_end_upper - (s_vars[dst].lower + 1.0)
                )
                # cond1 = 1 only if s_j <= e_i.
                problem.add_constraint(
                    big_m1 * (1 - cond1) >= s_vars[dst] - end_exprs[src],
                    name=f"cond1[{src}->{dst}]",
                )
                # cond2 = 1 only if e_i < e_j.
                problem.add_constraint(
                    end_exprs[dst] - end_exprs[src] >= 1 - big_m2 * (1 - cond2),
                    name=f"cond2[{src}->{dst}]",
                )
                problem.add_constraint(
                    d <= 0.5 * cond1 + 0.5 * cond2,
                    name=f"valid[{src}->{dst}]",
                )
            else:
                # Simplified validity: d = 1 only if e_i == s_j.
                problem.add_constraint(
                    num_layers * d <= num_layers + s_vars[dst] - end_exprs[src],
                    name=f"valid_eq1[{src}->{dst}]",
                )
                problem.add_constraint(
                    num_layers * d <= num_layers - s_vars[dst] + end_exprs[src],
                    name=f"valid_eq2[{src}->{dst}]",
                )

        # Symmetry breaking: nodes with identical hardware in the same
        # region are interchangeable, so force their first layers into
        # non-decreasing order by node id. This is throughput-preserving
        # (any optimum can be permuted to satisfy it) and removes the
        # factorial permutation symmetry that otherwise drowns the solver.
        groups: dict[tuple[str, str], list[str]] = {}
        for nid in placeable:
            node = cluster.node(nid)
            groups.setdefault((node.gpu_label, node.region), []).append(nid)
        for members in groups.values():
            members.sort()
            for left, right in zip(members, members[1:]):
                problem.add_constraint(
                    s_vars[left] <= s_vars[right],
                    name=f"sym[{left}<={right}]",
                )

        # Constraints 2 and 3: flow conservation and inference throughput.
        for nid in placeable:
            inflow = lin_sum(
                f for (src, dst), f in f_vars.items() if dst == nid
            )
            outflow = lin_sum(
                f for (src, dst), f in f_vars.items() if src == nid
            )
            problem.add_constraint(inflow == outflow, name=f"conserve[{nid}]")
            capacity_expr = lin_sum(
                t * b for t, b in zip(throughputs[nid], b_vars[nid])
            )
            problem.add_constraint(
                inflow <= capacity_expr, name=f"throughput[{nid}]"
            )

        source_flow = lin_sum(
            f for (src, _), f in f_vars.items() if src == COORDINATOR
        )
        sink_flow = lin_sum(
            f for (_, dst), f in f_vars.items() if dst == COORDINATOR
        )
        # Source out-flow equals sink in-flow (coordinator conservation).
        problem.add_constraint(source_flow == sink_flow, name="coordinator_balance")

        upper_bound = self.compute_upper_bound()
        # §4.5 upper bound as a strengthening cut.
        problem.add_constraint(source_flow <= upper_bound, name="compute_sum_ub")
        problem.set_objective(source_flow, maximize=True)

        return MilpFormulation(
            problem=problem,
            s_vars=s_vars,
            b_vars=b_vars,
            f_vars=f_vars,
            d_vars=d_vars,
            throughputs=throughputs,
            capacities=capacities,
            upper_bound=upper_bound,
        )

    # ------------------------------------------------------------------
    # Warm starts
    # ------------------------------------------------------------------
    def heuristic_hints(self, cluster: Cluster) -> list[ModelPlacement]:
        """Candidate placements from the heuristic baselines on ``cluster``."""
        from repro.placement.petals import PetalsPlanner
        from repro.placement.separate import SeparatePipelinesPlanner
        from repro.placement.swarm import SwarmPlanner

        hints: list[ModelPlacement] = []
        factories = (
            lambda: SwarmPlanner(
                cluster, self.model, self.profiler,
                partial_inference=self.partial_inference,
            ),
            lambda: PetalsPlanner(
                cluster, self.model, self.profiler,
                partial_inference=self.partial_inference,
            ),
            # SP hints must stay inside the MILP's half-VRAM feasible
            # space, so the fraction relaxation is disabled here.
            lambda: SeparatePipelinesPlanner(
                cluster, self.model, self.profiler,
                partial_inference=self.partial_inference,
                max_weight_fraction=self.profiler.weight_fraction,
            ),
        )
        for factory in factories:
            try:
                hints.append(factory().plan().placement)
            except PlacementError:
                continue
        return hints

    def assignment_from_placement(
        self,
        formulation: MilpFormulation,
        placement: ModelPlacement,
        cluster: Cluster,
    ) -> dict[str, float]:
        """Translate a placement into a full, feasible MILP assignment.

        Nodes the placement leaves unused are given a one-layer dummy
        assignment with zero flow (the MILP requires every node to hold
        layers, per Table 6's Σb = 1). Flow variables take the max-flow
        values of the placement's graph abstraction, which satisfy the
        conservation and capacity constraints by construction. The
        placement is first canonicalized (intervals sorted within groups of
        identical nodes) so it satisfies the symmetry-breaking constraints.
        """
        num_layers = self.model.num_layers
        intervals = {
            nid: (stage.start, stage.end)
            for nid, stage in placement.assignments.items()
        }
        for nid in formulation.s_vars:
            intervals.setdefault(nid, (0, 1))
        intervals = self._canonicalize(intervals, cluster)
        full = ModelPlacement.from_intervals(num_layers, intervals)

        solution = self.evaluate_placement(full, cluster)

        values: dict[str, float] = {}
        for nid, s_var in formulation.s_vars.items():
            stage = full.interval(nid)
            values[s_var.name] = float(stage.start)
            for j, b_var in enumerate(formulation.b_vars[nid], start=1):
                values[b_var.name] = 1.0 if stage.num_layers == j else 0.0
        for (src, dst), f_var in formulation.f_vars.items():
            flow = solution.connection_flows.get((src, dst), 0.0)
            valid = connection_is_valid(full, src, dst, self.partial_inference)
            values[f_var.name] = flow if valid else 0.0
            values[formulation.d_vars[(src, dst)].name] = 1.0 if valid else 0.0
            if src != COORDINATOR and dst != COORDINATOR:
                e_i = full.interval(src).end
                s_j = full.interval(dst).start
                e_j = full.interval(dst).end
                cond1_name = f"cond1[{src}->{dst}]"
                cond2_name = f"cond2[{src}->{dst}]"
                if self.partial_inference:
                    values[cond1_name] = 1.0 if s_j <= e_i else 0.0
                    values[cond2_name] = 1.0 if e_i < e_j else 0.0
        return values

    def _placement_value(
        self, placement: ModelPlacement, cluster: Cluster | None = None
    ) -> float:
        """Max-flow value of a placement, 0 when it cannot serve at all.

        Routed through the per-cluster incremental evaluator
        (:meth:`PlacementPlanner.evaluate_placement`), so the thousands of
        calls issued by hint ranking, LNS windows, and incumbent checks
        rewrite a few edge capacities instead of rebuilding the graph.

        With a residency hint installed (:meth:`set_residency_hint`) the
        raw max-flow is scaled by the warm-start bonus, so two servable
        candidates tie-break toward the one whose layers need no weight
        transfer.
        """
        value = self.placement_throughput(placement, cluster)
        hint = self._residency_hint
        if hint is None or value <= 0:
            return value
        total = 0
        resident = 0
        for nid, stage in placement.assignments.items():
            total += stage.num_layers
            have = hint.get(nid)
            if have:
                resident += sum(
                    1 for layer in range(stage.start, stage.end)
                    if layer in have
                )
        if total == 0:
            return value
        return value * (1.0 + self._residency_bonus * resident / total)

    def _extended_placement(
        self, formulation: MilpFormulation, placement: ModelPlacement,
        cluster: Cluster,
    ) -> ModelPlacement:
        """Extend a placement to all MILP nodes and canonicalize it."""
        intervals = {
            nid: (stage.start, stage.end)
            for nid, stage in placement.assignments.items()
            if nid in formulation.s_vars
        }
        for nid in formulation.s_vars:
            intervals.setdefault(nid, (0, 1))
        intervals = self._canonicalize(intervals, cluster)
        return ModelPlacement.from_intervals(self.model.num_layers, intervals)

    def _lns_window_size(self, num_nodes: int) -> int:
        """Effective LNS window: never free most of the cluster at once.

        A window that frees more than about a third of the nodes re-solves
        nearly the full MILP, which defeats the decomposition — measured on
        the Fig. 12 small cluster, such rounds burn their entire time limit
        without returning, while windows of a third solve (or prove
        no-improvement) in well under a second.
        """
        if self.lns_mode == "rebuild":
            return min(self.lns_window, num_nodes)
        return min(self.lns_window, num_nodes, max(2, (num_nodes + 2) // 3))

    def _lns_free_window(
        self, round_index: int, window: int, node_ids: list[str], by_rate, rng
    ) -> set[str]:
        """The set of nodes left free to move in one LNS round."""
        phase = round_index % 3
        if phase == 0:
            # Contiguous rotating window: local boundary adjustments.
            start = ((round_index // 3) * window) % len(node_ids)
            return {
                node_ids[(start + offset) % len(node_ids)]
                for offset in range(window)
            }
        if phase == 1:
            # Random mixed window: cross-GPU-type moves (e.g. swap an
            # A100's span against several T4 spans).
            return set(rng.sample(node_ids, window))
        # High-impact window: the fastest nodes plus random fill —
        # repositioning the big GPUs moves the min cut the most.
        half = max(1, window // 2)
        free = set(by_rate[:half])
        remainder = [nid for nid in node_ids if nid not in free]
        free.update(rng.sample(remainder, min(window - half, len(remainder))))
        return free

    def _lns_round_incremental(
        self,
        formulation: MilpFormulation,
        free: set[str],
        best: ModelPlacement,
        best_value: float,
    ):
        """One LNS re-solve that only tightens bounds on the cached arrays.

        Frozen nodes get their ``s``/``b`` variables pinned via variable
        bounds (restored afterwards); the improvement cutoff rides on a
        single appended constraint, which the model layer's incremental
        structure cache turns into a one-row delta instead of a recompile.
        HiGHS presolve then eliminates every pinned variable, so each round
        solves a genuinely small problem — mirroring at the MILP layer what
        :meth:`~repro.flow.graph.FlowGraph.reevaluate` does for flows.
        """
        problem = formulation.problem
        pinned: list[tuple[Variable, float, float]] = []
        for nid, s_var in formulation.s_vars.items():
            if nid in free:
                continue
            stage = best.interval(nid)
            pinned.append((s_var, s_var.lower, s_var.upper))
            s_var.lower = s_var.upper = float(stage.start)
            for j, b_var in enumerate(formulation.b_vars[nid], start=1):
                pinned.append((b_var, b_var.lower, b_var.upper))
                b_var.lower = b_var.upper = (
                    1.0 if stage.num_layers == j else 0.0
                )
        base_len = len(problem.constraints)
        problem.add_constraint(
            problem.objective >= best_value + max(1e-6, 1e-6 * best_value),
            name="lns_cutoff",
        )
        try:
            self.milp_solve_count += 1
            return solve_with_highs(
                problem,
                time_limit=self.lns_time_limit,
                mip_rel_gap=self.mip_rel_gap,
            )
        finally:
            del problem.constraints[base_len:]
            for var, lower, upper in pinned:
                var.lower, var.upper = lower, upper

    def _lns_round_rebuild(
        self,
        formulation: MilpFormulation,
        free: set[str],
        best: ModelPlacement,
        best_value: float,
    ):
        """Pre-optimization LNS round: fix-by-constraint, full recompile.

        Kept as the measured baseline for ``BENCH_milp.json``; the compile
        cache is explicitly invalidated so the round pays the historical
        per-round formulation compile cost.
        """
        problem = formulation.problem
        base_len = len(problem.constraints)
        for nid, s_var in formulation.s_vars.items():
            if nid in free:
                continue
            stage = best.interval(nid)
            problem.add_constraint(
                s_var == stage.start, name=f"lns_fix_s[{nid}]"
            )
            for j, b_var in enumerate(formulation.b_vars[nid], start=1):
                problem.add_constraint(
                    b_var == (1.0 if stage.num_layers == j else 0.0),
                    name=f"lns_fix_b[{nid}][{j}]",
                )
        problem.add_constraint(
            problem.objective >= best_value + max(1e-6, 1e-6 * best_value),
            name="lns_cutoff",
        )
        problem.invalidate()
        try:
            self.milp_solve_count += 1
            return solve_with_highs(
                problem,
                time_limit=self.lns_time_limit,
                mip_rel_gap=self.mip_rel_gap,
            )
        finally:
            del problem.constraints[base_len:]
            problem.invalidate()

    def _lns_improve(
        self,
        formulation: MilpFormulation,
        cluster: Cluster,
        placement: ModelPlacement,
    ) -> ModelPlacement:
        """Large-neighborhood search around an incumbent placement.

        Each round freezes every node's layer assignment except a rotating
        window of nodes and re-solves the (now small) MILP with an
        objective cutoff at the incumbent's value, adopting any strict
        improvement. This recovers, with HiGHS, the incremental
        incumbent-improvement behaviour the paper gets from a warm-started
        Gurobi on large clusters. In the default ``incremental`` mode each
        round is a bounds-tightening re-solve on the cached compiled
        formulation; see :meth:`_lns_round_incremental`.
        """
        import random as _random

        node_ids = list(formulation.s_vars)
        best = self._extended_placement(formulation, placement, cluster)
        best_value = self._placement_value(best, cluster)
        window = self._lns_window_size(len(node_ids))
        if window == 0 or not node_ids:
            return best

        solve_round = (
            self._lns_round_incremental
            if self.lns_mode == "incremental"
            else self._lns_round_rebuild
        )
        rng = _random.Random(self.lns_seed)
        by_rate = sorted(
            node_ids,
            key=lambda nid: -self.per_layer_rate(nid)
            if nid in self.cluster.node_ids else 0.0,
        )
        for round_index in range(self.lns_rounds):
            free = self._lns_free_window(
                round_index, window, node_ids, by_rate, rng
            )
            solution = solve_round(formulation, free, best, best_value)
            if not solution.status.has_solution:
                continue
            candidate = self.orchestrate(formulation, solution.values)
            value = self._placement_value(candidate, cluster)
            if value > best_value + 1e-9:
                best = self._extended_placement(formulation, candidate, cluster)
                best_value = value
        return best

    @staticmethod
    def _canonicalize(
        intervals: dict[str, tuple[int, int]], cluster: Cluster
    ) -> dict[str, tuple[int, int]]:
        """Permute intervals within identical-node groups into sorted order.

        Identical nodes are interchangeable, so re-pairing sorted node ids
        with sorted intervals preserves the placement's throughput while
        satisfying the MILP's symmetry-breaking constraints.
        """
        groups: dict[tuple[str, str], list[str]] = {}
        for nid in intervals:
            node = cluster.node(nid)
            groups.setdefault((node.gpu_label, node.region), []).append(nid)
        canonical = dict(intervals)
        for members in groups.values():
            members.sort()
            ordered = sorted(intervals[nid] for nid in members)
            for nid, interval in zip(members, ordered):
                canonical[nid] = interval
        return canonical

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self) -> PlannerResult:
        """Solve the MILP and orchestrate the solution into a placement."""
        start = time.perf_counter()
        self.milp_solve_count = 0
        work_cluster = self.cluster
        if self.prune_degree is not None:
            work_cluster = prune_cluster(self.cluster, self.prune_degree)

        formulation = self.build_formulation(work_cluster)

        hint_placements: list[ModelPlacement] = []
        if self.hints == "auto":
            hint_placements = self.heuristic_hints(work_cluster)
        elif isinstance(self.hints, list):
            hint_placements = list(self.hints)

        # Hints are ranked on the *full* cluster (what the deployment will
        # actually use); the pruned copy only shrinks the MILP.
        best_hint: tuple[float, ModelPlacement] | None = None
        for hint in hint_placements:
            value = self._placement_value(hint, self.cluster)
            if value <= 0:
                continue
            if best_hint is None or value > best_hint[0]:
                best_hint = (value, hint)

        solution = self._solve(formulation, work_cluster, best_hint)
        placement = None
        if solution.status.has_solution:
            candidate = self.orchestrate(formulation, solution.values)
            if self._placement_value(candidate) > 0:
                placement = candidate
        if placement is None:
            if best_hint is None:
                raise SolverError(
                    f"MILP solve failed ({solution.status.value}) and no "
                    "heuristic hint is available to fall back on"
                )
            # Keep the heuristic incumbent — what a MIP-started solver
            # would return at timeout.
            placement = best_hint[1]
        if best_hint is not None:
            # Never start from something worse than the best hint.
            if self._placement_value(placement) < best_hint[0] - 1e-6:
                placement = best_hint[1]

        if self.lns_rounds > 0:
            improved = self._lns_improve(formulation, work_cluster, placement)
            # Adopt the LNS result only if it also wins on the full cluster.
            if self._placement_value(improved) >= self._placement_value(placement):
                placement = improved

        flow = self.solve_flow(placement)
        return PlannerResult(
            planner_name=self.name,
            placement=placement,
            flow=flow,
            milp=solution,
            num_variables=formulation.problem.num_variables,
            num_constraints=formulation.problem.num_constraints,
            solve_time=time.perf_counter() - start,
        )

    def replan(
        self,
        base: ModelPlacement | None = None,
        lns_rounds: int | None = None,
    ) -> PlannerResult:
        """Warm-started incremental re-plan around an incumbent placement.

        The online controller's entry point after cluster churn: instead of
        a root MILP solve, start from ``base`` (typically the pre-failure
        placement restricted to surviving nodes) and run only the PR-2
        incremental LNS loop — bounds-tightened re-solves on the cached
        compiled formulation — around it. When ``base`` is missing or can no
        longer serve (a failed node held irreplaceable layers), the best
        heuristic hint seeds the search instead.

        Args:
            base: Incumbent placement to improve; node ids outside this
                planner's cluster are ignored.
            lns_rounds: LNS round count for this replan (default: the
                planner's ``lns_rounds``, but at least one round).

        Returns:
            A :class:`PlannerResult` whose flow solution is ready to be
            hot-swapped into a scheduler.

        Raises:
            PlacementError: When neither ``base`` nor any heuristic produces
                a servable placement on the current cluster.
        """
        start = time.perf_counter()
        self.milp_solve_count = 0
        work_cluster = self.cluster
        if self.prune_degree is not None:
            work_cluster = prune_cluster(self.cluster, self.prune_degree)
        if self._replan_formulation is None:
            self._replan_formulation = self.build_formulation(work_cluster)
        formulation = self._replan_formulation

        candidates: list[ModelPlacement] = []
        if base is not None:
            kept = {
                nid: (stage.start, stage.end)
                for nid, stage in base.assignments.items()
                if nid in work_cluster
            }
            if kept:
                candidates.append(
                    ModelPlacement.from_intervals(self.model.num_layers, kept)
                )
        # ``lns_rounds=0`` explicitly selects the *deterministic* replan:
        # no wall-clock-budgeted MILP rounds at all, just incumbent
        # selection over the degraded base and the heuristic hints. The
        # elastic scenario family depends on this — fingerprints must
        # reproduce bit-for-bit, which LNS (solver time limits) cannot
        # guarantee. ``None`` keeps the legacy at-least-one-round search.
        rounds = (
            max(1, self.lns_rounds) if lns_rounds is None else max(0, lns_rounds)
        )
        incumbent: tuple[float, ModelPlacement] | None = None
        for candidate in candidates:
            value = self._placement_value(candidate, work_cluster)
            if value > 0:
                incumbent = (value, candidate)
        if incumbent is None or rounds == 0:
            # Without LNS the heuristics are the only rivals the base ever
            # meets, so always score them (this is also how a restored
            # spare gets adopted — the base predates it); with LNS they
            # only reseed a base that cannot serve anymore.
            for hint in self.heuristic_hints(work_cluster):
                value = self._placement_value(hint, work_cluster)
                if value > 0 and (incumbent is None or value > incumbent[0]):
                    incumbent = (value, hint)
        if incumbent is None:
            raise PlacementError(
                "no servable placement exists on the surviving cluster"
            )

        if rounds == 0:
            placement = incumbent[1]
        else:
            saved_rounds = self.lns_rounds
            self.lns_rounds = rounds
            try:
                placement = self._lns_improve(
                    formulation, work_cluster, incumbent[1]
                )
            finally:
                self.lns_rounds = saved_rounds
            if self._placement_value(placement) < self._placement_value(
                incumbent[1]
            ):
                placement = incumbent[1]

        flow = self.solve_flow(placement)
        return PlannerResult(
            planner_name=self.name,
            placement=placement,
            flow=flow,
            num_variables=formulation.problem.num_variables,
            num_constraints=formulation.problem.num_constraints,
            solve_time=time.perf_counter() - start,
        )

    def _solve(
        self,
        formulation: MilpFormulation,
        work_cluster: Cluster,
        best_hint: tuple[float, ModelPlacement] | None,
    ) -> MilpSolution:
        if self.backend == "bnb":
            options = {
                "stall_time": max(1.0, self.time_limit * 0.25)
                if self.adaptive_budget
                else None,
            }
            options.update(self.bnb_options)
            solver = BranchAndBoundSolver(
                formulation.problem,
                time_limit=self.time_limit,
                gap_tolerance=self.mip_rel_gap,
                early_stop_bound=formulation.upper_bound,
                **options,
            )
            incumbent = None
            if best_hint is not None:
                incumbent = self.assignment_from_placement(
                    formulation, best_hint[1], work_cluster
                )
            self.milp_solve_count += 1
            solution = solver.solve(initial_incumbent=incumbent)
            self.last_trajectory = list(solver.trajectory)
            self.last_solver_stats = solver.stats
            return solution

        cutoff = None
        if self.hint_cutoff and best_hint is not None and best_hint[0] > 0:
            cutoff = best_hint[0] * (1.0 - 1e-9)
        if self.adaptive_budget and cutoff is None:
            return self._solve_highs_adaptive(formulation, best_hint)
        self.milp_solve_count += 1
        solution = solve_with_highs(
            formulation.problem,
            time_limit=self.time_limit,
            mip_rel_gap=self.mip_rel_gap,
            objective_cutoff=cutoff,
        )
        if solution.status is SolveStatus.INFEASIBLE and cutoff is not None:
            # Nothing strictly better than the hint exists; fall back to the
            # hint-free solve, which returns the (optimal) hint-level value.
            self.milp_solve_count += 1
            solution = solve_with_highs(
                formulation.problem,
                time_limit=self.time_limit,
                mip_rel_gap=self.mip_rel_gap,
            )
        return solution

    def _solve_highs_adaptive(
        self,
        formulation: MilpFormulation,
        best_hint: tuple[float, ModelPlacement] | None,
    ) -> MilpSolution:
        """Spend the HiGHS budget in growing slices with stall detection.

        scipy's ``milp`` has no incumbent callback, so a single
        ``time_limit``-long call pays the full budget even when the
        incumbent stopped improving seconds in — on the Fig. 12 small
        cluster HiGHS finds only a trivial incumbent and the heuristic hint
        carries the plan, making ~90% of the budget pure waste. Restart
        with doubling slices instead and stop when a slice fails to beat
        both the previous slice's incumbent and the best hint (or reaches
        the §4.5 compute-sum early-stop bound). The doubling keeps total
        re-exploration bounded by ~2x the final slice.
        """
        hint_value = best_hint[0] if best_hint is not None else float("-inf")
        early_stop = formulation.upper_bound * (1.0 - self.mip_rel_gap)
        remaining = max(self.time_limit, 0.1)
        slice_budget = max(0.5, self.time_limit / 8.0)
        previous = float("-inf")
        best_solution: MilpSolution | None = None
        while best_solution is None or remaining > 0.05:
            self.milp_solve_count += 1
            solution = solve_with_highs(
                formulation.problem,
                time_limit=min(slice_budget, remaining),
                mip_rel_gap=self.mip_rel_gap,
            )
            remaining -= solution.solve_time
            if best_solution is None or (
                solution.status.has_solution
                and (
                    not best_solution.status.has_solution
                    or solution.objective > best_solution.objective
                )
            ):
                best_solution = solution
            if solution.status in (
                SolveStatus.OPTIMAL,
                SolveStatus.INFEASIBLE,
                SolveStatus.UNBOUNDED,
            ):
                return solution
            objective = (
                solution.objective
                if solution.status.has_solution
                else float("-inf")
            )
            if objective >= early_stop:
                break  # the paper's compute-sum early stop
            reference = max(previous, hint_value)
            if objective <= reference + 1e-9 and reference > float("-inf"):
                break  # stalled: more budget is not buying improvement
            previous = max(previous, objective)
            slice_budget *= 2.0
        return best_solution

    def orchestrate(
        self, formulation: MilpFormulation, values: dict[str, float]
    ) -> ModelPlacement:
        """Turn MILP variable values into a :class:`ModelPlacement`.

        (Paper §4.4, "MILP solution orchestration": ``s_i`` and ``e_i`` give
        the layers node ``c_i`` loads.)
        """
        intervals: dict[str, tuple[int, int]] = {}
        for nid, s_var in formulation.s_vars.items():
            start = int(round(values[s_var.name]))
            count = 0
            for j, b_var in enumerate(formulation.b_vars[nid], start=1):
                if round(values[b_var.name]) == 1:
                    count = j
                    break
            if count == 0:
                raise SolverError(
                    f"node {nid!r}: no layer-count binary set in MILP solution"
                )
            intervals[nid] = (start, start + count)
        return ModelPlacement.from_intervals(self.model.num_layers, intervals)

    # ------------------------------------------------------------------
    # Multi-tenant arbitration
    # ------------------------------------------------------------------
    def plan_tenants(
        self,
        registry,
        guarantee: float = 0.5,
        burst: float = 1.5,
    ) -> "TenantArbitration":
        """Arbitrate one shared placement across a tenant registry.

        Tenants share the base model's layers (counted **once**) and only
        add their per-layer adapter deltas on top, so the VRAM the planner
        may spend on weights shrinks by ``layer_bytes / (layer_bytes +
        Σ adapter_bytes_per_layer)``. That scale folds exactly into the
        profiler's ``weight_fraction``: ``max_layers_on_vram`` computes
        ``int(vram * fraction // layer_bytes)``, so scaling the fraction is
        identical to charging every layer its base bytes plus the summed
        adapters — without duplicating the trunk per tenant, which is what
        a naive one-copy-per-tenant split would do.

        The placement itself is solved by a regular single-model plan on
        the scaled profiler; the *arbitration* then splits the solved flow
        into per-tenant commodities with a pure LP over the placement's
        flow graph — the exact node/connection capacities the planner
        result reports (NOT the MILP formulation re-pinned: under pruning
        the result's flow is evaluated on the full link set while the
        formulation only ever saw the pruned one, so re-pinning it can
        strand the flow):

        * linking — the tenant flows on each connection sum to the total
          flow on it (capacities still govern the total);
        * total and per-tenant conservation at every compute node;
        * per-tenant burst cap — a tenant may use at most ``burst`` times
          its entitled share of any node's compute;
        * guarantee — every tenant's end-to-end rate is at least
          ``guarantee`` times its entitled share of the total.

        The proportional split of the max-flow solution satisfies every
        constraint, so the arbitration always reproduces the placement's
        full throughput.

        Args:
            registry: A :class:`~repro.tenancy.registry.TenantRegistry`.
            guarantee: Fraction of its proportional share each tenant is
                guaranteed end to end (0 = work-conserving free-for-all,
                1 = exact proportional split).
            burst: How far above its proportional share a tenant may ride
                on any single node (>= 1).

        Returns:
            A :class:`TenantArbitration` with the planner result and the
            per-tenant guaranteed rates.
        """
        if not 0.0 <= guarantee <= 1.0:
            raise ValueError(f"guarantee must be in [0, 1], got {guarantee}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if len(registry) == 0:
            raise ValueError("tenant registry is empty")

        overhead = registry.adapter_overhead_bytes()
        layer_bytes = self.model.layer_bytes
        scale = layer_bytes / (layer_bytes + overhead)
        inner = HelixMilpPlanner(
            self.cluster,
            self.model,
            profiler=replace(
                self.profiler,
                weight_fraction=self.profiler.weight_fraction * scale,
            ),
            partial_inference=self.partial_inference,
            prune_degree=self.prune_degree,
            time_limit=self.time_limit,
            hints=self.hints,
            backend=self.backend,
            mip_rel_gap=self.mip_rel_gap,
            hint_cutoff=self.hint_cutoff,
            lns_rounds=self.lns_rounds,
            lns_window=self.lns_window,
            lns_time_limit=self.lns_time_limit,
            adaptive_budget=self.adaptive_budget,
            lns_mode=self.lns_mode,
            lns_seed=self.lns_seed,
            bnb_options=self.bnb_options,
        )
        base = inner.plan()
        flow = base.flow

        problem = MilpProblem(name="tenant-arbitration")
        tenant_ids = registry.ids
        shares = registry.shares()
        total_flows: dict[tuple[str, str], Variable] = {}
        tenant_flows: dict[str, dict[tuple[str, str], Variable]] = {
            tid: {} for tid in tenant_ids
        }
        for key, capacity in flow.connection_capacities.items():
            src, dst = key
            total_flows[key] = problem.add_var(
                f"f[{src}->{dst}]", 0.0, capacity
            )
            for tid in tenant_ids:
                tenant_flows[tid][key] = problem.add_var(
                    f"ft[{tid}][{src}->{dst}]", 0.0, capacity
                )
            problem.add_constraint(
                lin_sum(tenant_flows[tid][key] for tid in tenant_ids)
                == total_flows[key],
                name=f"tenant_link[{src}->{dst}]",
            )
        for nid, capacity in flow.node_capacities.items():
            total_in = lin_sum(
                v for (_, dst), v in total_flows.items() if dst == nid
            )
            total_out = lin_sum(
                v for (src, _), v in total_flows.items() if src == nid
            )
            problem.add_constraint(
                total_in == total_out, name=f"conserve[{nid}]"
            )
            problem.add_constraint(
                total_in <= capacity, name=f"node_cap[{nid}]"
            )
            for tid in tenant_ids:
                inflow = lin_sum(
                    v
                    for (_, dst), v in tenant_flows[tid].items()
                    if dst == nid
                )
                outflow = lin_sum(
                    v
                    for (src, _), v in tenant_flows[tid].items()
                    if src == nid
                )
                problem.add_constraint(
                    inflow == outflow, name=f"tenant_conserve[{tid}][{nid}]"
                )
                problem.add_constraint(
                    inflow <= burst * shares[tid] * capacity,
                    name=f"tenant_burst[{tid}][{nid}]",
                )
        source_flow = lin_sum(
            v for (src, _), v in total_flows.items() if src == COORDINATOR
        )
        sink_flow = lin_sum(
            v for (_, dst), v in total_flows.items() if dst == COORDINATOR
        )
        problem.add_constraint(source_flow == sink_flow, name="balance")
        source_vars: dict[str, list[Variable]] = {}
        for tid in tenant_ids:
            outs = [
                v
                for (src, _), v in tenant_flows[tid].items()
                if src == COORDINATOR
            ]
            sinks = [
                v
                for (_, dst), v in tenant_flows[tid].items()
                if dst == COORDINATOR
            ]
            source_vars[tid] = outs
            problem.add_constraint(
                lin_sum(outs) == lin_sum(sinks),
                name=f"tenant_balance[{tid}]",
            )
            problem.add_constraint(
                lin_sum(outs) >= guarantee * shares[tid] * source_flow,
                name=f"tenant_guarantee[{tid}]",
            )
        problem.set_objective(source_flow, maximize=True)

        solution = solve_with_highs(
            problem,
            time_limit=self.time_limit,
            mip_rel_gap=self.mip_rel_gap,
        )
        if not solution.status.has_solution:
            raise SolverError(
                "tenant arbitration solve failed "
                f"({solution.status.value}); the proportional split is "
                "always feasible, so this indicates an inconsistent pin"
            )
        per_tenant = {
            tid: sum(solution.values[v.name] for v in source_vars[tid])
            for tid in tenant_ids
        }
        return TenantArbitration(
            result=base,
            per_tenant_throughput=per_tenant,
            shares=dict(shares),
            adapter_overhead_bytes=overhead,
            max_layers_scale=scale,
            guarantee=guarantee,
            burst=burst,
        )


@dataclass(frozen=True)
class TenantArbitration:
    """Outcome of :meth:`HelixMilpPlanner.plan_tenants`.

    Attributes:
        result: The underlying single-placement plan (placement + flow),
            solved with the shared-base-plus-adapters VRAM budget.
        per_tenant_throughput: Tenant id -> guaranteed end-to-end token
            rate from the arbitration solve (sums to the placement's
            total max flow).
        shares: Normalized rate shares the arbitration enforced.
        adapter_overhead_bytes: Summed per-layer adapter VRAM across
            tenants (what riding on the shared base cost beyond it).
        max_layers_scale: Factor applied to the profiler's
            ``weight_fraction`` (base counted once; < 1 when any tenant
            carries adapters).
        guarantee: The per-tenant rate-guarantee fraction enforced.
        burst: The per-node burst cap enforced.
    """

    result: PlannerResult
    per_tenant_throughput: dict[str, float]
    shares: dict[str, float]
    adapter_overhead_bytes: float
    max_layers_scale: float
    guarantee: float
    burst: float

    @property
    def total_throughput(self) -> float:
        """Summed guaranteed tenant rates."""
        return sum(self.per_tenant_throughput.values())
