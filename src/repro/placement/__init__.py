"""Model placement planners.

The paper's central contribution is the MILP-based planner
(:class:`~repro.placement.helix_milp.HelixMilpPlanner`, §4.4-4.6), which
jointly chooses how many layers each node holds and which network
connections carry traffic so that the cluster's max-flow is maximal.

The baselines the evaluation compares against are implemented alongside:

* :class:`~repro.placement.swarm.SwarmPlanner` — even layer partition into
  the fewest stages the weakest GPU can hold, devices balanced across
  stages by compute capacity (§6.2);
* :class:`~repro.placement.petals.PetalsPlanner` — each node greedily
  serves the contiguous span with the least accumulated throughput (§6.6);
* :class:`~repro.placement.separate.SeparatePipelinesPlanner` — one
  pipeline per GPU type (SP), optionally plus a mixed pipeline from
  leftover machines (SP+, §6.5).
"""

from repro.core.placement_types import ModelPlacement, StageAssignment
from repro.placement.base import PlannerResult, PlacementPlanner
from repro.placement.pruning import prune_cluster
from repro.placement.helix_milp import (
    HelixMilpPlanner,
    MilpFormulation,
    TenantArbitration,
)
from repro.placement.swarm import SwarmPlanner
from repro.placement.petals import PetalsPlanner
from repro.placement.separate import SeparatePipelinesPlanner

__all__ = [
    "ModelPlacement",
    "StageAssignment",
    "PlannerResult",
    "PlacementPlanner",
    "prune_cluster",
    "HelixMilpPlanner",
    "MilpFormulation",
    "TenantArbitration",
    "SwarmPlanner",
    "PetalsPlanner",
    "SeparatePipelinesPlanner",
]
