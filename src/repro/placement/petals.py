"""Petals-style placement baseline (paper §2.2 and §6.6).

Petals (Borzunov et al.) places servers greedily: each newly joining
machine picks the contiguous span of model layers whose current aggregate
throughput is lowest and serves as many layers there as its VRAM allows.
There is no global optimization — exactly the property the paper's Fig. 9
deep dive contrasts with Helix's MILP.
"""

from __future__ import annotations

import time

from repro.core.errors import PlacementError
from repro.core.placement_types import ModelPlacement
from repro.placement.base import PlacementPlanner, PlannerResult


class PetalsPlanner(PlacementPlanner):
    """Greedy least-throughput-span placement."""

    name = "petals"

    def plan(self) -> PlannerResult:
        start = time.perf_counter()
        num_layers = self.model.num_layers
        per_layer_throughput = [0.0] * num_layers
        intervals: dict[str, tuple[int, int]] = {}

        for nid in self.nodes_by_capacity():
            span = min(self.max_layers(nid), num_layers)
            if span < 1:
                continue
            window_start = self._weakest_window(per_layer_throughput, span)
            intervals[nid] = (window_start, window_start + span)
            rate = self.per_layer_rate(nid)
            for layer in range(window_start, window_start + span):
                per_layer_throughput[layer] += rate

        if not intervals:
            raise PlacementError("no node can hold a single layer")
        placement = ModelPlacement.from_intervals(num_layers, intervals)
        uncovered = [i for i, c in enumerate(placement.coverage()) if c == 0]
        if uncovered:
            raise PlacementError(
                f"petals placement cannot cover layers {uncovered} with the "
                "available VRAM"
            )
        flow = self.solve_flow(placement)
        return PlannerResult(
            planner_name=self.name,
            placement=placement,
            flow=flow,
            solve_time=time.perf_counter() - start,
        )

    @staticmethod
    def _weakest_window(throughput: list[float], span: int) -> int:
        """Start of the ``span``-wide window with minimum total throughput.

        Prefers windows containing an entirely-uncovered layer (infinite
        need) and breaks ties toward the earliest start, mirroring Petals'
        bias to fill gaps left to right.
        """
        num_layers = len(throughput)
        window = sum(throughput[:span])
        zeros = sum(1 for t in throughput[:span] if t == 0.0)
        best_start = 0
        best_score = (-zeros, window)
        for start in range(1, num_layers - span + 1):
            window += throughput[start + span - 1] - throughput[start - 1]
            zeros += (1 if throughput[start + span - 1] == 0.0 else 0) - (
                1 if throughput[start - 1] == 0.0 else 0
            )
            score = (-zeros, window)
            if score < best_score:
                best_score = score
                best_start = start
        return best_start
