"""Planner interface and result container."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.profiler import Profiler
from repro.core.errors import PlacementError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph, FlowSolution
from repro.milp.solution import MilpSolution
from repro.models.specs import ModelSpec


@dataclass
class PlannerResult:
    """Outcome of a placement planner.

    Attributes:
        planner_name: Which planner produced the placement.
        placement: The model placement (validated).
        flow: Max-flow solution for the placement; its value is the
            placement's maximum serving throughput in tokens/second, and
            its per-connection flows seed the IWRR scheduler weights.
        pipelines: For planners that build disjoint fixed pipelines (SP,
            SP+), the ordered node lists of each pipeline; ``None`` for
            flow-based planners.
        milp: The underlying MILP solution, for the Helix planner.
        num_variables: MILP variable count (Table 8 reproduction).
        num_constraints: MILP constraint count (Table 8 reproduction).
        solve_time: Seconds spent planning.
    """

    planner_name: str
    placement: ModelPlacement
    flow: FlowSolution
    pipelines: list[list[str]] | None = None
    milp: MilpSolution | None = None
    num_variables: int = 0
    num_constraints: int = 0
    solve_time: float = 0.0

    @property
    def max_throughput(self) -> float:
        """The placement's max-flow serving throughput (tokens/second)."""
        return self.flow.max_flow


class PlacementPlanner(abc.ABC):
    """Base class for placement planners.

    Args:
        cluster: The target cluster (validated).
        model: The model to place.
        profiler: The performance model; defaults to a fresh
            :class:`~repro.cluster.profiler.Profiler`.
        partial_inference: Whether overlapping-interval handoffs are allowed
            when evaluating the placement's flow (paper §4.4).
    """

    name = "base"

    def __init__(
        self,
        cluster: Cluster,
        model: ModelSpec,
        profiler: Profiler | None = None,
        partial_inference: bool = True,
    ) -> None:
        cluster.validate()
        self.cluster = cluster
        self.model = model
        self.profiler = profiler or Profiler()
        self.partial_inference = partial_inference
        #: When true (default), candidate placements are evaluated through a
        #: per-cluster :class:`FlowGraph` that is built once and re-targeted
        #: via :meth:`FlowGraph.reevaluate`. Set false to rebuild the graph
        #: for every evaluation (the perf harness's rebuild baseline).
        self.incremental_flow = True
        self._flow_evaluators: dict[int, tuple[Cluster, FlowGraph]] = {}
        #: Evaluation telemetry, reported by the perf harness.
        self.flow_eval_count = 0
        self.flow_eval_seconds = 0.0

    @abc.abstractmethod
    def plan(self) -> PlannerResult:
        """Produce a placement and its flow solution."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def max_layers(self, node_id: str, weight_fraction: float | None = None) -> int:
        """VRAM-bounded layer capacity of a node, capped at the model size.

        Args:
            node_id: The node to bound.
            weight_fraction: Override the profiler's VRAM provisioning rule
                (used by SP when it must sacrifice KV-cache room, §6.3).
        """
        from repro.models.memory import max_layers_on_vram

        node = self.cluster.node(node_id)
        if weight_fraction is None:
            bound = self.profiler.max_layers(node, self.model)
        else:
            bound = max_layers_on_vram(self.model, node.vram_bytes, weight_fraction)
        return min(bound, self.model.num_layers)

    def per_layer_rate(self, node_id: str) -> float:
        """Single-layer token throughput ``T_1``, used to rank nodes."""
        node = self.cluster.node(node_id)
        return self.profiler.throughput(node, self.model, 1)

    def nodes_by_capacity(self) -> list[str]:
        """Node ids sorted by descending per-layer rate, then id."""
        return sorted(
            self.cluster.node_ids,
            key=lambda nid: (-self.per_layer_rate(nid), nid),
        )

    def evaluate_placement(
        self, placement: ModelPlacement, cluster: Cluster | None = None
    ) -> FlowSolution:
        """Solve a placement's max flow through the per-cluster evaluator.

        The first evaluation on a cluster builds its :class:`FlowGraph`;
        subsequent evaluations re-target it incrementally, which is the hot
        path of hint ranking, LNS, and incumbent checks. The evaluator
        snapshots the cluster topology, so planners must not mutate the
        cluster mid-plan (none do). Raises :class:`PlacementError` when the
        placement cannot serve.
        """
        if cluster is None:  # not truthiness: an empty Cluster is falsy
            cluster = self.cluster
        start = time.perf_counter()
        try:
            if not self.incremental_flow:
                return FlowGraph(
                    cluster, self.model, placement, self.profiler,
                    self.partial_inference,
                ).solve()
            entry = self._flow_evaluators.get(id(cluster))
            if entry is None:
                graph = FlowGraph(
                    cluster, self.model, placement, self.profiler,
                    self.partial_inference,
                )
                # Keep the cluster reference alive so its id stays unique.
                self._flow_evaluators[id(cluster)] = (cluster, graph)
                return graph.solve()
            return entry[1].reevaluate(placement)
        finally:
            self.flow_eval_count += 1
            self.flow_eval_seconds += time.perf_counter() - start

    def placement_throughput(
        self, placement: ModelPlacement, cluster: Cluster | None = None
    ) -> float:
        """Max-flow value of a placement, 0 when it cannot serve at all."""
        try:
            return self.evaluate_placement(placement, cluster).max_flow
        except PlacementError:
            return 0.0

    def solve_flow(
        self, placement: ModelPlacement, weight_fraction: float | None = None
    ) -> FlowSolution:
        """Validate a placement and solve its max flow."""
        bounds = {
            nid: self.max_layers(nid, weight_fraction)
            for nid in self.cluster.node_ids
        }
        placement.validate(max_layers_per_node=bounds)
        return self.evaluate_placement(placement)

    def compute_upper_bound(self) -> float:
        """The paper's §4.5 throughput upper bound.

        Serving throughput can never exceed the sum of every node's
        token-layer capacity divided by the number of model layers.
        """
        total_token_layers = 0.0
        for node_id in self.cluster.node_ids:
            k = self.max_layers(node_id)
            if k < 1:
                continue
            node = self.cluster.node(node_id)
            best = max(
                self.profiler.throughput(node, self.model, j) * j
                for j in range(1, k + 1)
            )
            total_token_layers += best
        return total_token_layers / self.model.num_layers
