"""Cluster pruning (paper §4.5, ablated in §6.8 / Table 8).

Large clusters have O(|C|²) candidate connections, most of which a good
placement never uses. Pruning keeps, for every node, only its
``max_degree`` highest-bandwidth outgoing inter-node links (coordinator
links always survive — without them no request could enter or leave). The
paper prunes to an average degree of 12 and finds placements just as good,
with a 36-46% smaller MILP.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.node import COORDINATOR


def prune_cluster(cluster: Cluster, max_degree: int = 12) -> Cluster:
    """Return a copy of ``cluster`` with per-node out-degree capped.

    For each compute node, outgoing links to other compute nodes are ranked
    by descending bandwidth (ties broken by destination id for determinism)
    and only the first ``max_degree`` are kept. Links to and from the
    coordinator are never pruned.

    Args:
        cluster: The original cluster (not modified).
        max_degree: Maximum outgoing inter-node links kept per node.

    Returns:
        A new, validated cluster with the reduced link set.
    """
    if max_degree < 1:
        raise ValueError(f"max_degree must be >= 1, got {max_degree}")

    pruned = Cluster(name=f"{cluster.name}-pruned{max_degree}")
    for node in cluster:
        pruned.add_node(node.node_id, node.gpu, node.num_gpus, node.region)

    for node_id in cluster.node_ids:
        outgoing = [
            link
            for link in cluster.links_from(node_id)
            if link.dst != COORDINATOR
        ]
        outgoing.sort(key=lambda l: (-l.bandwidth, l.dst))
        for link in outgoing[:max_degree]:
            pruned.connect(
                link.src, link.dst, link.bandwidth, link.latency,
                bidirectional=False,
            )

    for link in cluster.links_from(COORDINATOR):
        pruned.connect(
            link.src, link.dst, link.bandwidth, link.latency, bidirectional=False
        )
    for link in cluster.links_to(COORDINATOR):
        pruned.connect(
            link.src, link.dst, link.bandwidth, link.latency, bidirectional=False
        )
    pruned.validate()
    return pruned
