"""Separate-pipelines baseline (SP and SP+, paper §6.2 and §6.5).

SP handles GPU heterogeneity by ignoring it: each GPU type forms its own
homogeneous model replicas. A type with ``n`` nodes, each able to hold
``k`` layers, yields ``floor(n / ceil(L/k))`` pipelines; leftover machines
and types too weak to form a pipeline alone sit idle.

SP+ additionally builds one *mixed* pipeline from the leftover machines
(largest-capacity first), which is how the paper salvages the V100/T4
nodes in the 42-node cluster.
"""

from __future__ import annotations

import math
import time

from repro.core.errors import PlacementError
from repro.core.placement_types import ModelPlacement
from repro.placement.base import PlacementPlanner, PlannerResult


class SeparatePipelinesPlanner(PlacementPlanner):
    """One model replica per group of identical GPUs (optionally + mixed).

    Args:
        include_mixed_pipeline: Build the SP+ mixed pipeline from machines
            that no homogeneous pipeline could use.
    """

    name = "separate-pipelines"

    def __init__(
        self,
        *args,
        include_mixed_pipeline: bool = False,
        max_weight_fraction: float = 0.92,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.include_mixed_pipeline = include_mixed_pipeline
        self.max_weight_fraction = max_weight_fraction
        if include_mixed_pipeline:
            self.name = "separate-pipelines-plus"

    _FRACTION_STEPS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.92)

    def _group_capacity(self, node_id: str, group_size: int) -> int:
        """Layers per node for a group, relaxing the VRAM rule if needed.

        Starts at the paper's half-VRAM rule; when a type cannot form a
        pipeline at that provisioning, SP gives up KV-cache room and packs
        more layers per node (§6.3's "without leaving enough VRAM for
        KV-cache"), up to ``max_weight_fraction``.
        """
        num_layers = self.model.num_layers
        for fraction in self._FRACTION_STEPS:
            if fraction > self.max_weight_fraction:
                break
            capacity = self.max_layers(node_id, fraction)
            if capacity >= 1 and group_size // math.ceil(num_layers / capacity) >= 1:
                return capacity
        return 0

    def plan(self) -> PlannerResult:
        start = time.perf_counter()
        num_layers = self.model.num_layers
        intervals: dict[str, tuple[int, int]] = {}
        pipelines: list[list[str]] = []
        leftovers: list[str] = []

        groups: dict[str, list[str]] = {}
        for node in self.cluster:
            groups.setdefault(node.gpu_label, []).append(node.node_id)

        for label in sorted(groups):
            member_ids = sorted(groups[label])
            capacity = self._group_capacity(member_ids[0], len(member_ids))
            if capacity < 1:
                leftovers.extend(member_ids)
                continue
            nodes_per_pipeline = math.ceil(num_layers / capacity)
            num_pipelines = len(member_ids) // nodes_per_pipeline
            if num_pipelines == 0:
                leftovers.extend(member_ids)
                continue
            used = 0
            for _ in range(num_pipelines):
                members = member_ids[used : used + nodes_per_pipeline]
                used += nodes_per_pipeline
                stage_intervals = self._even_stages(num_layers, len(members))
                for nid, interval in zip(members, stage_intervals):
                    intervals[nid] = interval
                pipelines.append(members)
            leftovers.extend(member_ids[used:])

        if self.include_mixed_pipeline and leftovers:
            mixed = self._mixed_pipeline(leftovers, num_layers)
            if mixed is not None:
                for nid, interval in mixed:
                    intervals[nid] = interval
                pipelines.append([nid for nid, _ in mixed])

        if not pipelines:
            raise PlacementError(
                "no GPU type has enough nodes to serve a full model replica"
            )

        placement = ModelPlacement.from_intervals(num_layers, intervals)
        flow = self.solve_flow(placement, weight_fraction=self.max_weight_fraction)
        return PlannerResult(
            planner_name=self.name,
            placement=placement,
            flow=flow,
            pipelines=pipelines,
            solve_time=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _even_stages(
        self, num_layers: int, num_stages: int
    ) -> list[tuple[int, int]]:
        """Even consecutive split of the model across a pipeline's nodes."""
        boundaries = [
            round(i * num_layers / num_stages) for i in range(num_stages + 1)
        ]
        return [(boundaries[i], boundaries[i + 1]) for i in range(num_stages)]

    def _mixed_pipeline(
        self, leftovers: list[str], num_layers: int
    ) -> list[tuple[str, tuple[int, int]]] | None:
        """Greedy mixed pipeline: biggest leftover machines take the most
        layers until the model is covered; ``None`` if VRAM falls short.

        Tries the half-VRAM rule first, then relaxes the weight fraction
        the same way the homogeneous groups do.
        """
        for fraction in self._FRACTION_STEPS:
            if fraction > self.max_weight_fraction:
                break
            ranked = sorted(
                leftovers, key=lambda nid: (-self.max_layers(nid, fraction), nid)
            )
            stages: list[tuple[str, tuple[int, int]]] = []
            cursor = 0
            for nid in ranked:
                if cursor >= num_layers:
                    break
                span = min(self.max_layers(nid, fraction), num_layers - cursor)
                if span < 1:
                    continue
                stages.append((nid, (cursor, cursor + span)))
                cursor += span
            if cursor >= num_layers:
                return stages
        return None
