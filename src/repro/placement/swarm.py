"""SWARM-style placement baseline (paper §6.2 and Fig. 9b).

SWARM (Ryabinin et al., ICML'23) evenly partitions the model into pipeline
stages and lets machines join the stage with the least compute capacity.
Following the paper's baseline configuration, the number of stages is the
minimum that lets the weakest GPU hold one full stage in half its VRAM —
this minimizes pipeline depth while leaving room for KV cache.
"""

from __future__ import annotations

import math
import time

from repro.core.errors import PlacementError
from repro.core.placement_types import ModelPlacement
from repro.placement.base import PlacementPlanner, PlannerResult


def even_partition(num_layers: int, num_stages: int) -> list[tuple[int, int]]:
    """Split ``[0, num_layers)`` into ``num_stages`` near-even intervals."""
    if not 1 <= num_stages <= num_layers:
        raise ValueError(
            f"cannot split {num_layers} layers into {num_stages} stages"
        )
    boundaries = [round(i * num_layers / num_stages) for i in range(num_stages + 1)]
    return [(boundaries[i], boundaries[i + 1]) for i in range(num_stages)]


class SwarmPlanner(PlacementPlanner):
    """Even layer partition + capacity-balanced device assignment."""

    name = "swarm"

    def plan(self) -> PlannerResult:
        start = time.perf_counter()
        num_layers = self.model.num_layers
        layer_bounds = {nid: self.max_layers(nid) for nid in self.cluster.node_ids}
        usable = [nid for nid, k in layer_bounds.items() if k >= 1]
        if not usable:
            raise PlacementError("no node can hold a single layer")

        weakest_capacity = min(layer_bounds[nid] for nid in usable)
        num_stages = math.ceil(num_layers / weakest_capacity)
        num_stages = min(num_stages, num_layers, len(usable))
        stages = even_partition(num_layers, num_stages)

        # Nodes join the stage with the least accumulated compute capacity
        # among stages whose layer count fits their VRAM. Iterate nodes in
        # descending capacity so the big GPUs spread out first (greedy
        # balancing, as in SWARM's join rule).
        stage_capacity = [0.0] * num_stages
        stage_members: list[list[str]] = [[] for _ in range(num_stages)]
        for nid in self.nodes_by_capacity():
            if layer_bounds[nid] < 1:
                continue
            candidates = [
                i for i, (lo, hi) in enumerate(stages)
                if hi - lo <= layer_bounds[nid]
            ]
            if not candidates:
                continue
            target = min(candidates, key=lambda i: (stage_capacity[i], i))
            stage_members[target].append(nid)
            stage_capacity[target] += self.per_layer_rate(nid)

        intervals: dict[str, tuple[int, int]] = {}
        for (lo, hi), members in zip(stages, stage_members):
            if not members:
                raise PlacementError(
                    f"swarm placement leaves stage [{lo}, {hi}) empty"
                )
            for nid in members:
                intervals[nid] = (lo, hi)

        placement = ModelPlacement.from_intervals(num_layers, intervals)
        flow = self.solve_flow(placement)
        return PlannerResult(
            planner_name=self.name,
            placement=placement,
            flow=flow,
            solve_time=time.perf_counter() - start,
        )
