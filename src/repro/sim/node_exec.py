"""Per-node execution engine with the paper's dynamic batching.

A node alternates between executing one batch and collecting the work that
arrives meanwhile; when a batch completes, everything queued forms the next
batch ("this best-effort batching occurs without additional waiting
periods", §5.1). Batch wall time comes from the profiler's roofline —
compute proportional to token-layers plus one streaming read of the
resident weights — so the simulator's node behaviour is consistent with the
``T_j`` constants the planner optimized against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import ComputeNode
from repro.cluster.profiler import Profiler
from repro.models.specs import ModelSpec


@dataclass(frozen=True)
class StageWork:
    """One request-iteration's work at one pipeline stage.

    Attributes:
        request_id: The owning request.
        stage_index: Position of this stage in the request's pipeline.
        num_tokens: Tokens processed this iteration (prompt length during
            the prompt phase, 1 during decode).
        num_layers: Layers this stage computes for the request.
        is_prompt: Whether this is the prompt-phase iteration.
        attempt: The owning request's attempt number; work minted by a
            disrupted attempt is dropped when its batch completes.
    """

    request_id: str
    stage_index: int
    num_tokens: int
    num_layers: int
    is_prompt: bool
    attempt: int = 0

    @property
    def token_layers(self) -> float:
        """Work contribution in token-layer units."""
        return float(self.num_tokens * self.num_layers)


@dataclass
class _BatchStats:
    batches: int = 0
    busy_time: float = 0.0
    token_layers: float = 0.0
    tokens: float = 0.0


class NodeExecutor:
    """Queue + batch executor for one compute node.

    Args:
        node: The simulated node.
        model: The served model.
        profiler: Timing model.
        resident_layers: Layers the node holds under the placement.
        max_batch_tokens: Optional cap on tokens per batch; ``None`` means
            a batch takes everything queued (the paper's policy).
    """

    def __init__(
        self,
        node: ComputeNode,
        model: ModelSpec,
        profiler: Profiler,
        resident_layers: int,
        max_batch_tokens: int | None = None,
    ) -> None:
        if resident_layers < 1:
            raise ValueError(
                f"node {node.node_id!r} executes with no resident layers"
            )
        if max_batch_tokens is not None and max_batch_tokens < 1:
            raise ValueError("max_batch_tokens must be >= 1 when set")
        self.node = node
        self.model = model
        self.profiler = profiler
        self.resident_layers = resident_layers
        self.max_batch_tokens = max_batch_tokens
        self.queue: list[StageWork] = []
        self.busy = False
        self.stats = _BatchStats()

    # ------------------------------------------------------------------
    def enqueue(self, work: StageWork) -> None:
        """Add work to the node's input queue."""
        self.queue.append(work)

    def has_work(self) -> bool:
        """Whether the queue is non-empty."""
        return bool(self.queue)

    def take_batch(self) -> list[StageWork]:
        """Remove and return the next batch (FIFO, optionally token-capped).

        Always returns at least one item when work is queued, even if that
        single item exceeds the token cap (a long prompt must still run).
        """
        if not self.queue:
            return []
        if self.max_batch_tokens is None:
            batch = self.queue
            self.queue = []
            return batch
        batch: list[StageWork] = []
        tokens = 0
        while self.queue:
            item = self.queue[0]
            if batch and tokens + item.num_tokens > self.max_batch_tokens:
                break
            batch.append(self.queue.pop(0))
            tokens += item.num_tokens
        return batch

    def batch_time(self, batch: list[StageWork]) -> float:
        """Wall time to execute ``batch`` on this node."""
        token_layers = sum(work.token_layers for work in batch)
        return self.profiler.batch_time(
            self.node, self.model, token_layers, self.resident_layers
        )

    def record_batch(self, batch: list[StageWork], elapsed: float) -> None:
        """Update utilization statistics after a batch completes."""
        self.stats.batches += 1
        self.stats.busy_time += elapsed
        self.stats.token_layers += sum(w.token_layers for w in batch)
        self.stats.tokens += sum(w.num_tokens for w in batch)

    def utilization(self, duration: float) -> float:
        """Busy-time fraction over a duration."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / duration)
