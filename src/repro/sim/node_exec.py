"""Per-node execution engine with the paper's dynamic batching.

A node alternates between executing one batch and collecting the work that
arrives meanwhile; when a batch completes, everything queued forms the next
batch ("this best-effort batching occurs without additional waiting
periods", §5.1). Batch wall time comes from the profiler's roofline —
compute proportional to token-layers plus one streaming read of the
resident weights — so the simulator's node behaviour is consistent with the
``T_j`` constants the planner optimized against.

For the simulator's hot loop the executor precomputes the roofline
constants once at construction (``compute_rate``, ``weights_time``,
``overhead``): the inner loop then prices a batch with two float adds and a
division instead of a :class:`~repro.cluster.profiler.Profiler` call. The
precomputed path evaluates the identical expression in the identical
association order, so the two agree bit-for-bit (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import ComputeNode
from repro.cluster.profiler import Profiler
from repro.models.specs import ModelSpec


@dataclass(frozen=True, slots=True)
class StageWork:
    """One request-iteration's work at one pipeline stage.

    Attributes:
        request_id: The owning request.
        stage_index: Position of this stage in the request's pipeline.
        num_tokens: Tokens processed this iteration (prompt length during
            the prompt phase, 1 during decode).
        num_layers: Layers this stage computes for the request.
        is_prompt: Whether this is the prompt-phase iteration.
        attempt: The owning request's attempt number; work minted by a
            disrupted attempt is dropped when its batch completes.
        tl: Work contribution in integer token-layer units
            (``num_tokens * num_layers``), precomputed for the simulator's
            batch pricing; 0 when constructed outside the simulator.
        owner: The simulator's live-request state this work belongs to
            (``None`` outside the simulator). Lets the hot loop reach the
            request without a dict lookup.
        hop: The simulator's hop-table entry for this (pipeline, stage)
            (``None`` outside the simulator): executor, KV pool, and
            outbound channel resolved once at schedule time.
        next: The work this stage forwards to — the next stage's work of
            the same phase, or the work itself at the final stage (token
            return). Set by the simulator via ``object.__setattr__``.

    The simulator builds one prompt work and one decode work per
    (attempt, stage) and re-enqueues the same frozen objects every decode
    iteration, so steady-state decode allocates no work objects at all.
    """

    request_id: str
    stage_index: int
    num_tokens: int
    num_layers: int
    is_prompt: bool
    attempt: int = 0
    tl: int = field(default=0, compare=False, repr=False)
    owner: object = field(default=None, compare=False, repr=False)
    hop: object = field(default=None, compare=False, repr=False)
    next: object = field(default=None, compare=False, repr=False)

    @property
    def token_layers(self) -> float:
        """Work contribution in token-layer units."""
        return float(self.num_tokens * self.num_layers)


@dataclass(slots=True)
class _BatchStats:
    batches: int = 0
    busy_time: float = 0.0
    token_layers: float = 0.0
    tokens: float = 0.0


class NodeExecutor:
    """Queue + batch executor for one compute node.

    Args:
        node: The simulated node.
        model: The served model.
        profiler: Timing model.
        resident_layers: Layers the node holds under the placement.
        max_batch_tokens: Optional cap on tokens per batch; ``None`` means
            a batch takes everything queued (the paper's policy).
    """

    __slots__ = (
        "node", "node_id", "model", "profiler", "resident_layers",
        "max_batch_tokens", "queue", "queue_tokens", "queue_tl", "busy", "stats",
        "epoch", "compute_rate", "weights_time", "overhead", "slowdown",
    )

    def __init__(
        self,
        node: ComputeNode,
        model: ModelSpec,
        profiler: Profiler,
        resident_layers: int,
        max_batch_tokens: int | None = None,
    ) -> None:
        if resident_layers < 1:
            raise ValueError(
                f"node {node.node_id!r} executes with no resident layers"
            )
        if max_batch_tokens is not None and max_batch_tokens < 1:
            raise ValueError("max_batch_tokens must be >= 1 when set")
        self.node = node
        self.node_id = node.node_id
        self.model = model
        self.profiler = profiler
        self.resident_layers = resident_layers
        self.max_batch_tokens = max_batch_tokens
        self.queue: list[StageWork] = []
        #: Token and token-layer totals of the queued works, kept in sync
        #: by every enqueue site so a batch that fits the cap skips the
        #: per-item scan and is priced without touching its works.
        self.queue_tokens = 0
        self.queue_tl = 0
        self.busy = False
        self.stats = _BatchStats()
        #: Bumped when the node fails or is re-bound; completions carrying
        #: a stale epoch fall on the floor.
        self.epoch = 0
        # Hot-loop roofline constants: batch time for ``tl`` token-layers is
        # ``tl / compute_rate + weights_time + overhead`` — the same
        # expression, in the same association order, as
        # ``Profiler.batch_time``.
        self.compute_rate = profiler.compute_rate(node, model)
        self.weights_time = resident_layers * profiler.weight_read_time(
            node, model
        )
        self.overhead = profiler.batch_overhead
        #: Gray-fault straggler factor (1.0 = healthy). See
        #: :meth:`set_slowdown`.
        self.slowdown = 1.0

    def set_slowdown(self, factor: float) -> None:
        """Scale the roofline constants by a straggler ``factor``.

        ``factor`` is relative to the node's healthy constants (repeated
        calls do not compound); 1.0 restores them exactly — the healthy
        values are recomputed from the profiler, so a restored executor is
        bit-identical to one that never straggled.
        """
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        self.slowdown = factor
        rate = self.profiler.compute_rate(self.node, self.model)
        weights = self.resident_layers * self.profiler.weight_read_time(
            self.node, self.model
        )
        overhead = self.profiler.batch_overhead
        if factor == 1.0:
            self.compute_rate = rate
            self.weights_time = weights
            self.overhead = overhead
        else:
            self.compute_rate = rate / factor
            self.weights_time = weights * factor
            self.overhead = overhead * factor

    # ------------------------------------------------------------------
    def enqueue(self, work: StageWork) -> None:
        """Add work to the node's input queue."""
        self.queue.append(work)
        self.queue_tokens += work.num_tokens
        self.queue_tl += work.tl

    def enqueue_run(self, span: list[StageWork], tokens: int, tl: int) -> None:
        """Enqueue a pre-summed run of works in one call.

        The simulator's cohort path hands over a contiguous slice of a
        same-executor group together with its token / token-layer totals
        (often computed in O(1) from uniform-group metadata). Counters
        must advance exactly as ``len(span)`` individual ``enqueue``
        calls would.
        """
        self.queue.extend(span)
        self.queue_tokens += tokens
        self.queue_tl += tl

    def has_work(self) -> bool:
        """Whether the queue is non-empty."""
        return bool(self.queue)

    def take_batch(self) -> list[StageWork]:
        """Remove and return the next batch (FIFO, optionally token-capped).

        Always returns at least one item when work is queued, even if that
        single item exceeds the token cap (a long prompt must still run).
        """
        queue = self.queue
        if not queue:
            return []
        cap = self.max_batch_tokens
        if cap is None or self.queue_tokens <= cap:
            self.queue = []
            self.queue_tokens = 0
            self.queue_tl = 0
            return queue
        cut = 1
        tokens = queue[0].num_tokens
        tl = queue[0].tl
        for item in queue[1:]:
            if tokens + item.num_tokens > cap:
                break
            tokens += item.num_tokens
            tl += item.tl
            cut += 1
        if cut == len(queue):
            self.queue = []
            self.queue_tokens = 0
            self.queue_tl = 0
            return queue
        batch = queue[:cut]
        del queue[:cut]
        self.queue_tokens -= tokens
        self.queue_tl -= tl
        return batch

    def batch_time(self, batch: list[StageWork]) -> float:
        """Wall time to execute ``batch`` on this node."""
        token_layers = sum(work.token_layers for work in batch)
        return self.profiler.batch_time(
            self.node, self.model, token_layers, self.resident_layers
        )

    def record_batch(self, batch: list[StageWork], elapsed: float) -> None:
        """Update utilization statistics after a batch completes."""
        self.stats.batches += 1
        self.stats.busy_time += elapsed
        self.stats.token_layers += sum(w.token_layers for w in batch)
        self.stats.tokens += sum(w.num_tokens for w in batch)

    def utilization(self, duration: float) -> float:
        """Busy-time fraction over a duration."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / duration)
