"""Per-request lifecycle policy: deadlines, timeouts, retries, hedging.

The baseline simulator retries a disrupted request forever and never gives
up on a stalled one — fine when every failure is announced, fatal under
gray failures (a zombie node accepts a prompt and simply never answers).
:class:`RequestPolicy` bounds every request's lifecycle:

* **deadline** — a hard end-to-end budget from arrival; a request that
  neither finished nor died by then is abandoned (*lost*), its resources
  freed.
* **TTFT timeout** — a per-attempt bound on time-to-first-token; an
  attempt that produced nothing by then is presumed stuck (stalled on a
  silent-dead or zombie node) and re-dispatched.
* **bounded retries with backoff** — each re-dispatch waits
  ``retry_backoff * backoff_factor**(attempt-1)`` seconds plus a
  *deterministic* jitter (derived from a CRC of the request id and
  attempt number, never from global randomness, so seeded runs reproduce
  exactly); after ``max_retries`` re-dispatches the request is lost.
* **hedging** — optionally, an attempt that has not produced its first
  token after ``hedge_after`` seconds launches one shadow attempt on a
  second pipeline; the first attempt to deliver a token wins and the
  loser is cancelled.
* **admission control** — when the pending queue already holds
  ``max_pending`` requests, new arrivals are *shed* immediately instead
  of queueing without bound, so overload degrades gracefully.

The default-constructed policy is exactly the legacy semantics (no
deadline, no timeout, unbounded immediate retries, no hedging, no
shedding): the differential suite asserts that a run under
``RequestPolicy()`` is bit-identical to a run with no policy at all.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

#: Scale turning a 32-bit CRC into a [0, 1) fraction.
_CRC_SCALE = 1.0 / 2.0**32


@dataclass(frozen=True)
class RequestPolicy:
    """Lifecycle knobs of every request in one simulation.

    Attributes:
        deadline: End-to-end seconds from arrival before the request is
            abandoned (``None`` = no deadline).
        ttft_timeout: Seconds from an attempt's scheduling to its first
            token before the attempt is presumed stuck and re-dispatched
            (``None`` = wait forever).
        max_retries: Re-dispatches (failure retries + migrations) a
            request may consume before it is abandoned (``None`` =
            unbounded, the legacy semantics).
        retry_backoff: Base delay in seconds before a re-dispatch re-enters
            the pending queue (0 = immediate, the legacy semantics).
        backoff_factor: Exponential growth factor across consecutive
            re-dispatches of one request.
        jitter: Fraction of the computed backoff added as deterministic
            jitter (0 = none). The jitter fraction is
            ``crc32(request_id:attempt) / 2**32`` — stable across runs
            and platforms.
        hedge_after: Seconds without a first token before a shadow
            attempt is dispatched (``None`` = no hedging).
        max_pending: Pending-queue depth above which new arrivals are
            shed (``None`` = never shed).
    """

    deadline: float | None = None
    ttft_timeout: float | None = None
    max_retries: int | None = None
    retry_backoff: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.0
    hedge_after: float | None = None
    max_pending: int | None = None

    def __post_init__(self) -> None:
        for name in ("deadline", "ttft_timeout", "hedge_after"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.backoff_factor <= 0:
            raise ValueError(
                f"backoff_factor must be positive, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )

    @property
    def is_legacy(self) -> bool:
        """Whether this policy is observationally the legacy semantics."""
        return self == RequestPolicy()

    def retry_delay(self, request_id: str, attempt: int) -> float:
        """Deterministic backoff before re-dispatch number ``attempt``.

        ``attempt`` counts from 1 (the first re-dispatch). With a zero
        ``retry_backoff`` the delay is exactly 0 regardless of jitter, so
        the re-dispatch path is the legacy immediate one.
        """
        if self.retry_backoff <= 0:
            return 0.0
        base = self.retry_backoff * self.backoff_factor ** max(0, attempt - 1)
        if self.jitter <= 0:
            return base
        digest = zlib.crc32(f"{request_id}:{attempt}".encode())
        return base * (1.0 + self.jitter * digest * _CRC_SCALE)
