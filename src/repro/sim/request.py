"""Request descriptor for the simulator and trace generators."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Request:
    """One inference request.

    Attributes:
        request_id: Unique identifier.
        input_len: Prompt length in tokens.
        output_len: Number of tokens to generate (fixed by the trace; the
            serving system does not know it in advance).
        arrival_time: Seconds since simulation start when the request
            reaches the coordinator.
        tenant_id: Owning tenant under multi-tenant serving; empty string
            (the default) means the single-tenant legacy configuration.
    """

    request_id: str
    input_len: int
    output_len: int
    arrival_time: float = 0.0
    tenant_id: str = ""

    def __post_init__(self) -> None:
        if self.input_len < 1:
            raise ValueError(f"input_len must be >= 1, got {self.input_len}")
        if self.output_len < 1:
            raise ValueError(f"output_len must be >= 1, got {self.output_len}")
        if self.arrival_time < 0:
            raise ValueError(f"negative arrival_time {self.arrival_time}")

    @property
    def total_tokens(self) -> int:
        """Prompt plus generated tokens."""
        return self.input_len + self.output_len
