"""Request descriptor for the simulator and trace generators."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Request:
    """One inference request.

    Attributes:
        request_id: Unique identifier.
        input_len: Prompt length in tokens.
        output_len: Number of tokens to generate (fixed by the trace; the
            serving system does not know it in advance).
        arrival_time: Seconds since simulation start when the request
            reaches the coordinator.
        tenant_id: Owning tenant under multi-tenant serving; empty string
            (the default) means the single-tenant legacy configuration.
    """

    request_id: str
    input_len: int
    output_len: int
    arrival_time: float = 0.0
    tenant_id: str = ""

    def __post_init__(self) -> None:
        if self.input_len < 1:
            raise ValueError(f"input_len must be >= 1, got {self.input_len}")
        if self.output_len < 1:
            raise ValueError(f"output_len must be >= 1, got {self.output_len}")
        if self.arrival_time < 0:
            raise ValueError(f"negative arrival_time {self.arrival_time}")

    @property
    def total_tokens(self) -> int:
        """Prompt plus generated tokens."""
        return self.input_len + self.output_len


class RequestInterner:
    """Maps string request ids to dense consecutive integers.

    The batch-level engine keys its hot per-request state by dense int
    rather than by string id, so the state lives in flat numpy arrays
    indexed by position instead of hash lookups. Interning is stable for
    the lifetime of the simulation: the first request to intern gets 0,
    the next new one 1, and so on; re-interning an id returns its
    original slot.
    """

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._names: list[str] = []

    def intern(self, request_id: str) -> int:
        """Return the dense integer for ``request_id``, minting if new."""
        dense = self._ids.get(request_id)
        if dense is None:
            dense = len(self._names)
            self._ids[request_id] = dense
            self._names.append(request_id)
        return dense

    def name_of(self, dense: int) -> str:
        """Inverse lookup: the request id interned at slot ``dense``."""
        return self._names[dense]

    def index_of(self, request_id: str) -> int | None:
        """The dense integer of ``request_id``, or ``None`` if unseen."""
        return self._ids.get(request_id)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, request_id: str) -> bool:
        return request_id in self._ids
