"""FIFO bandwidth/latency queues for directed network links.

A link serializes transmissions: a message starts once the link is free,
occupies it for ``bytes / bandwidth`` seconds, and arrives one propagation
latency later. Queueing delay (waiting for the link) is tracked separately
so experiments can report per-link congestion, as the paper's §6.7 case
study does for its "congestion" links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import Link


@dataclass
class LinkChannel:
    """Runtime state of one directed link.

    Attributes:
        link: The static link description.
    """

    link: Link
    next_free_time: float = 0.0
    bytes_sent: float = 0.0
    messages_sent: int = 0
    total_queueing_delay: float = 0.0
    max_queueing_delay: float = 0.0

    def transmit(self, now: float, num_bytes: float) -> float:
        """Enqueue a message at time ``now``; returns its arrival time."""
        if num_bytes < 0:
            raise ValueError(f"negative message size {num_bytes}")
        start = max(now, self.next_free_time)
        queueing = start - now
        transmission = num_bytes / self.link.bandwidth
        self.next_free_time = start + transmission
        self.bytes_sent += num_bytes
        self.messages_sent += 1
        self.total_queueing_delay += queueing
        self.max_queueing_delay = max(self.max_queueing_delay, queueing)
        return start + transmission + self.link.latency

    @property
    def mean_queueing_delay(self) -> float:
        """Average seconds a message waited for this link."""
        if self.messages_sent == 0:
            return 0.0
        return self.total_queueing_delay / self.messages_sent
