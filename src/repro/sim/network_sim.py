"""FIFO bandwidth/latency queues for directed network links.

A link serializes transmissions: a message starts once the link is free,
occupies it for ``bytes / bandwidth`` seconds, and arrives one propagation
latency later. Queueing delay (waiting for the link) is tracked separately
so experiments can report per-link congestion, as the paper's §6.7 case
study does for its "congestion" links.

The simulator's hot loop inlines the transmit arithmetic against the
channel's public fields (``next_free_time``, ``bandwidth``, ``latency``,
and the stat accumulators) rather than calling :meth:`transmit` per
message; both paths perform the identical float operations in the
identical order. ``bandwidth``/``latency`` mirror ``link`` and are kept in
sync through :meth:`set_link` (live link degradation/repair).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import Link


@dataclass(eq=False, slots=True)
class LinkChannel:
    """Runtime state of one directed link.

    Channels compare (and hash) by identity — each is the unique runtime
    state of one directed link, and the simulator keys hot-path tables by
    channel object.

    Attributes:
        link: The static link description.
        bandwidth: Cached ``link.bandwidth`` (kept in sync by
            :meth:`set_link`).
        latency: Cached ``link.latency``.
        fault: Optional gray-fault state (a
            :class:`~repro.online.faults.LinkFault`) the simulator
            attaches when the link turns lossy/flaky; ``None`` on healthy
            links, and never consulted unless the simulation's gray-fault
            mode is active — the hot path stays untouched.
    """

    link: Link
    next_free_time: float = 0.0
    bytes_sent: float = 0.0
    messages_sent: int = 0
    total_queueing_delay: float = 0.0
    max_queueing_delay: float = 0.0
    fault: object = None
    bandwidth: float = field(init=False)
    latency: float = field(init=False)

    def __post_init__(self) -> None:
        self.bandwidth = self.link.bandwidth
        self.latency = self.link.latency

    def set_link(self, link: Link) -> None:
        """Swap the underlying link (degradation/repair) atomically."""
        self.link = link
        self.bandwidth = link.bandwidth
        self.latency = link.latency

    def transmit(self, now: float, num_bytes: float) -> float:
        """Enqueue a message at time ``now``; returns its arrival time."""
        if num_bytes < 0:
            raise ValueError(f"negative message size {num_bytes}")
        start = max(now, self.next_free_time)
        queueing = start - now
        transmission = num_bytes / self.link.bandwidth
        self.next_free_time = start + transmission
        self.bytes_sent += num_bytes
        self.messages_sent += 1
        self.total_queueing_delay += queueing
        self.max_queueing_delay = max(self.max_queueing_delay, queueing)
        return start + transmission + self.link.latency

    @property
    def mean_queueing_delay(self) -> float:
        """Average seconds a message waited for this link."""
        if self.messages_sent == 0:
            return 0.0
        return self.total_queueing_delay / self.messages_sent
