"""Layer residency: which model layers actually live in each node's VRAM.

Recovery is not free. A node that rejoins after a crash (or a spare pulled
in by the autoscaler) holds *nothing*: before it can serve its assigned
stage it must download those layer weights through the same network the
inference traffic uses. This module is the bookkeeping half of that story:

* :class:`ResidencyConfig` — per-run switches: which nodes start
  pre-warmed (a standby replica that already staged weights), and how big
  one layer's transfer is (default: the model's true ``layer_bytes``).
* :class:`ResidencyManager` — the live ledger the simulator owns when
  residency is enabled. It tracks the resident layer set per node, the
  in-progress *warming* pulls (with generation tokens so a crash mid-pull
  cancels the landing), VRAM-budget evictions, and an append-only
  ``warmup_log`` / ``eviction_log`` for tests and benchmarks.

The simulator drives the ledger (see ``Simulation._warm_node``): transfers
are issued through real :class:`~repro.sim.network_sim.LinkChannel` queues
so weight pulls contend with inference activations — rejoining a node
visibly dips serving goodput, which is exactly the effect the benchmarks
measure. With ``residency=None`` (the default) none of this exists and the
engine is bit-identical to the residency-less simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class ResidencyConfig:
    """Switches of one residency-enabled run.

    Attributes:
        warm: Pre-warmed nodes: ``node_id -> (start, end)`` layer interval
            already staged in VRAM at t=0 (on top of the initial
            placement, whose serving nodes are always resident). This is
            how a standby spare differs from a cold one.
        layer_bytes: Bytes transferred per pulled layer. ``None`` uses the
            served model's ``layer_bytes`` (FP16 weights); tests may
            shrink it to keep warm-up windows tiny.
        warm_bonus: Relative scoring bonus a fully-resident placement gets
            during residency-aware replanning (see
            ``HelixMilpPlanner.set_residency_hint``).
    """

    warm: Mapping[str, tuple[int, int]] = field(default_factory=dict)
    layer_bytes: float | None = None
    warm_bonus: float = 0.15


@dataclass(frozen=True)
class WarmupRecord:
    """One completed layer pull: a node went from cold to schedulable."""

    node_id: str
    started: float
    completed: float
    layers: tuple[int, ...]
    bytes_pulled: float
    sources: tuple[str, ...]

    @property
    def duration(self) -> float:
        """The warm-up window: seconds the node was unschedulable."""
        return self.completed - self.started


@dataclass(frozen=True)
class EvictionRecord:
    """Layers dropped from a node's VRAM to make room for new ones."""

    node_id: str
    time: float
    layers: tuple[int, ...]


class ResidencyManager:
    """The live layer-residency ledger of one simulation.

    Built by :class:`~repro.sim.simulator.Simulation` when a
    :class:`ResidencyConfig` is passed; never constructed on the default
    path. All mutation goes through the simulator's warming hooks.
    """

    def __init__(self, config: ResidencyConfig, model, placement) -> None:
        self.config = config
        self.model = model
        #: node_id -> set of resident layer indices.
        self.resident: dict[str, set[int]] = {}
        for node_id in placement.used_nodes:
            stage = placement.interval(node_id)
            self.resident[node_id] = set(range(stage.start, stage.end))
        for node_id, (start, end) in config.warm.items():
            self.resident.setdefault(node_id, set()).update(range(start, end))
        #: node_id -> generation token of its in-progress warm-up.
        self._warming: dict[str, int] = {}
        self._pending: dict[str, tuple[int, ...]] = {}
        self._started: dict[str, float] = {}
        self._bytes: dict[str, float] = {}
        self._sources: dict[str, tuple[str, ...]] = {}
        self._token = 0
        #: Every completed warm-up, in completion order.
        self.warmup_log: list[WarmupRecord] = []
        #: Every VRAM eviction, in order.
        self.eviction_log: list[EvictionRecord] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def layers_of(self, node_id: str) -> set[int]:
        """The node's resident layer set (empty when cold)."""
        return self.resident.get(node_id, set())

    def is_resident(self, node_id: str, start: int, end: int) -> bool:
        """Whether layers ``[start, end)`` are all in the node's VRAM."""
        have = self.resident.get(node_id)
        if have is None:
            return False
        return all(layer in have for layer in range(start, end))

    def is_warming(self, node_id: str) -> bool:
        """Whether the node has an in-progress weight pull."""
        return node_id in self._warming

    @property
    def warming_nodes(self) -> set[str]:
        """Nodes currently pulling weights (unschedulable)."""
        return set(self._warming)

    def pending_layers(self, node_id: str) -> tuple[int, ...]:
        """Layers the node's in-progress warm-up is pulling."""
        return self._pending.get(node_id, ())

    def snapshot(self) -> dict[str, frozenset[int]]:
        """Immutable resident-set view for residency-aware replanning."""
        return {nid: frozenset(layers) for nid, layers in self.resident.items()}

    # ------------------------------------------------------------------
    # Mutation (driven by the simulator)
    # ------------------------------------------------------------------
    def flush(self, node_id: str) -> None:
        """A crash wipes the node's VRAM and cancels any warm-up."""
        self.resident.pop(node_id, None)
        self.cancel(node_id)

    def cancel(self, node_id: str) -> None:
        """Abandon an in-progress warm-up (the landing becomes a no-op)."""
        self._warming.pop(node_id, None)
        self._pending.pop(node_id, None)
        self._started.pop(node_id, None)
        self._bytes.pop(node_id, None)
        self._sources.pop(node_id, None)

    def begin(
        self,
        node_id: str,
        layers: tuple[int, ...],
        now: float,
        total_bytes: float,
        sources: tuple[str, ...],
    ) -> int:
        """Start a warm-up pulling ``layers``; returns its generation token.

        A later :meth:`begin`/:meth:`flush` for the same node invalidates
        the token, so a landing scheduled against a superseded pull
        quietly drops.
        """
        self._token += 1
        self._warming[node_id] = self._token
        self._pending[node_id] = tuple(layers)
        self._started[node_id] = now
        self._bytes[node_id] = total_bytes
        self._sources[node_id] = tuple(sources)
        return self._token

    def still_valid(self, node_id: str, token: int) -> bool:
        """Whether a warm-up landing still corresponds to the live pull."""
        return self._warming.get(node_id) == token

    def complete(self, node_id: str, now: float) -> WarmupRecord:
        """The pull landed: layers become resident, the node warm."""
        layers = self._pending.pop(node_id, ())
        self.resident.setdefault(node_id, set()).update(layers)
        record = WarmupRecord(
            node_id=node_id,
            started=self._started.pop(node_id, now),
            completed=now,
            layers=layers,
            bytes_pulled=self._bytes.pop(node_id, 0.0),
            sources=self._sources.pop(node_id, ()),
        )
        self._warming.pop(node_id, None)
        self.warmup_log.append(record)
        return record

    def evict_for(
        self, node_id: str, needed: set[int], budget: int, now: float
    ) -> tuple[int, ...]:
        """Free VRAM so ``needed`` fits within ``budget`` total layers.

        Layers the new assignment reuses are kept (that is the point of
        preferring warm nodes); surplus layers outside ``needed`` are
        evicted highest-index first until the union fits. Returns the
        evicted layers.
        """
        have = self.resident.get(node_id)
        if not have:
            return ()
        overflow = len(have | needed) - budget
        if overflow <= 0:
            return ()
        extras = sorted(have - needed, reverse=True)
        evicted = tuple(extras[:overflow])
        have.difference_update(evicted)
        if evicted:
            self.eviction_log.append(EvictionRecord(node_id, now, evicted))
        return evicted

    @property
    def layer_bytes(self) -> float:
        """Bytes per pulled layer (config override or the model's)."""
        if self.config.layer_bytes is not None:
            return self.config.layer_bytes
        return self.model.layer_bytes
