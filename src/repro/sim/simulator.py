"""The discrete-event serving simulation (hop-table engine).

One :class:`Simulation` wires together a cluster, a model placement, a
scheduler, and a request trace, then plays the serving system forward:

1. A request arrives at the coordinator and asks the scheduler for a
   per-request pipeline; if every candidate node is KV-masked it waits in
   a pending queue and is retried whenever capacity frees up (§5.2).
2. The prompt iteration ships the prompt (token ids) to the first stage,
   each stage computes its layers and forwards activations, and the last
   stage returns the first output token to the coordinator.
3. Each subsequent decode iteration re-enters the same pipeline from the
   coordinator (§5's runtime design) until ``output_len`` tokens exist.

Nodes batch dynamically (everything queued joins the next batch), links
are FIFO bandwidth/latency queues, and KV pools track true occupancy.

Engine design (the hot-path overhaul; the pre-overhaul engine survives as
:class:`repro.sim._legacy_reference.LegacySimulation` for differential
testing and benchmarking):

* **Hop tables.** At schedule time each request resolves its pipeline
  once into a list of :class:`_Hop` entries — executor, KV pool, outbound
  channel, and the precomputed roofline batch-time constants — so the
  inner loop performs zero ``Profiler`` calls and no per-event dict
  lookups by node/request id. One prompt and one decode
  :class:`~repro.sim.node_exec.StageWork` are built per (attempt, stage)
  and re-enqueued every iteration: steady-state decode allocates no work
  objects.
* **Int-coded events.** Heap entries are ``(when, seq, kind, payload)``
  with integer kinds; ``seq`` is a global monotone counter allocated one
  per *logical* event, so event ordering — including exact-time ties — is
  identical whether or not hops are grouped.
* **Hop groups (decode coalescing).** When a batch completes, the works
  forwarded over one FIFO channel arrive contiguously; they are carried
  in one *group event* instead of one heap event per hop. A group drains
  work-by-work at each work's true arrival time but pauses — re-pushing
  its remainder — the moment any other event (a new arrival, a churn
  callback, another node's batch) is due first, so any contention change
  invalidates the window and falls back to per-hop stepping.  Group
  handlers replay the identical float operations in the identical order
  as per-hop stepping, which makes the two modes bit-identical
  (``coalescing=False`` forces per-hop events; the differential suite
  asserts exact equality across the scenario matrix).
* **Closed-window fast-forward.** When exactly one request is live, the
  pending queue is empty, and its executors are idle, nothing can happen
  before the next scheduled heap event except the request's own decode
  chain: those iterations are computed in one tight loop (one
  macro-step) with no heap traffic at all, stopping exactly at finish,
  the ``max_time`` horizon, or the next event's time — where the one
  in-flight hop is re-materialized into the heap and stepping resumes.
* **Bounded timeline.** The global token timeline accumulates into
  fixed-width buckets (:class:`~repro.sim.metrics.TokenTimeline`) online
  instead of appending one float per token forever.
* **Batch-level engine** (``engine="batch"``). On top of the hop-table
  machinery, hot per-request state — tokens generated, output target,
  entry-channel id, attempt — moves into dense structured numpy arrays
  keyed by interned dense-int request ids
  (:class:`~repro.sim.request.RequestInterner`). The coordinator's token
  drain then advances whole same-channel cohorts per heap event: a run
  of mid-decode tokens is masked, validated, and committed with array
  folds (:meth:`Simulation._vec_token_run`) instead of per-token Python
  work, groups carry uniform-token-layer metadata so busy-executor
  cohort enqueues cost O(1), and the closed-window fast-forward
  generalizes from "sole live request" to any request whose executors
  are provably quiescent while other live requests sit parked in the
  heap. Every wide path replays the identical float operations in the
  identical order as the scalar engine, so ``engine="batch"`` is
  observably bit-identical to ``engine="hop"`` (the differential suite
  asserts it across the scenario matrix, chaos/elastic/tenant families
  included).

The loop also supports *online dynamics* (the ``repro.online`` package):
environment events scheduled with :meth:`Simulation.schedule_event` can
fail and restore nodes, degrade links, and hot-swap a replanned placement
mid-run. Request attempts are versioned so work belonging to a disrupted
attempt — in-flight activations, queued batches, pending completions — is
dropped cleanly when the request re-enters the pending queue.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable

import numpy as _np

from repro.cluster.cluster import Cluster
from repro.cluster.node import COORDINATOR
from repro.cluster.profiler import Profiler
from repro.core.errors import SimulationError
from repro.models.specs import ModelSpec
from repro.scheduling.base import Scheduler
from repro.scheduling.pipelines import RequestPipeline
from repro.sim.kv_cache import KVCachePool
from repro.sim.metrics import (
    RequestRecord,
    ServingMetrics,
    TokenTimeline,
    aggregate_metrics,
)
from repro.sim.network_sim import LinkChannel
from repro.sim.node_exec import NodeExecutor, StageWork
from repro.sim.request import Request, RequestInterner

# Integer event kinds (heap entries are ``(when, seq, kind, payload)``).
K_ARRIVAL = 0  #: a trace request reaches the coordinator
K_GROUP = 1    #: contiguous stage arrivals on one channel (hop group)
K_BATCH = 2    #: a node finishes executing one batch
K_TOKEN = 3    #: contiguous token deliveries to the coordinator
K_ENV = 4      #: an environment callback (online dynamics)

#: Minimum same-channel single-token run length worth the numpy setup cost
#: in the batch-forwarding loop.
_VEC_MIN = 16


class _Hop:
    """One resolved pipeline hop: everything the hot loop needs, no dicts.

    ``decode_time`` caches the single-token batch time on this hop's
    executor (same expression and association order as
    ``Profiler.batch_time``, so it is bit-identical); ``decode_tl`` is the
    matching integer token-layer count.
    """

    __slots__ = (
        "executor", "pool", "node_id", "channel", "final", "stage_index",
        "decode_time", "decode_tl",
    )

    def __init__(self, executor, pool, node_id, channel, final, stage_index):
        self.executor = executor
        self.pool = pool
        self.node_id = node_id
        self.channel = channel
        self.final = final
        self.stage_index = stage_index


class _HopGroup:
    """A run of contiguous arrivals on one FIFO channel (one heap event).

    ``times``/``seqs``/``works`` are parallel arrays; ``index`` is the
    drain cursor. ``seqs`` carries the per-work event sequence numbers, so
    exact-time ties order identically to per-hop stepping.
    """

    __slots__ = ("kind", "times", "seqs", "works", "index", "utl")

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.times: list[float] = []
        self.seqs: list[int] = []
        self.works: list[StageWork] = []
        self.index = 0
        # Uniform-token-layer metadata (batch engine): >= 0 asserts every
        # work in the group is single-token with ``tl == utl``, letting
        # the busy-executor cohort enqueue compute its slice totals in
        # O(1). Set by the vectorized producers, invalidated by any
        # append that cannot prove uniformity; -1 means unknown/mixed.
        self.utl = -1


class _ActiveRequest:
    """Live state of one scheduled request attempt."""

    __slots__ = (
        "request", "request_id", "pipeline", "record", "attempt", "live",
        "hops", "entry_channel", "prompt_works", "decode_works", "done",
        "output_len", "sched_id", "hedge", "is_hedge", "dense", "entry_work",
    )

    def __init__(self, request, pipeline, record, attempt):
        self.request = request
        self.request_id = request.request_id
        self.pipeline = pipeline
        self.record = record
        self.attempt = attempt
        self.live = True
        self.output_len = request.output_len
        # The id this attempt is registered under (scheduler + active
        # table). Hedged shadow attempts use ``<request_id>#hedge`` so
        # both members of the race can hold pipelines simultaneously.
        self.sched_id = request.request_id
        self.hedge = None
        self.is_hedge = False
        # Total stage completions of this attempt. A request's iterations
        # are strictly sequential (at most one in-flight work ever), so
        # completions happen in pipeline order: the first ``depth`` are the
        # prompt phase, every later one a decode hop. The exact KV tokens
        # the attempt holds on each stage — freed on finish or disruption —
        # are therefore derivable from this single counter (see
        # ``kv_allocated``), replacing a per-stage counter update on every
        # hop of every token.
        self.done = 0
        self.hops: list[_Hop] = []
        self.entry_channel: LinkChannel | None = None
        self.prompt_works: list[StageWork] = []
        self.decode_works: list[StageWork] = []
        # Batch engine: this attempt's row in the dense state arrays (-1
        # under the hop engine) and its stage-0 decode work (the re-entry
        # work the coordinator ships every iteration).
        self.dense = -1
        self.entry_work: StageWork | None = None

    def kv_allocated(self, stage_index: int) -> int:
        """KV tokens this attempt has allocated on ``stage_index``.

        Mirrors the per-batch pool allocations exactly: the prompt batch
        charged ``input_len`` once on every completed stage, and each
        completed decode hop charged one token.
        """
        depth = len(self.hops)
        done = self.done
        prompt = self.request.input_len if stage_index < min(done, depth) else 0
        decode_done = done - depth
        if decode_done <= 0:
            return prompt
        q, r = divmod(decode_done, depth)
        return prompt + q + (1 if stage_index < r else 0)


#: One row per scheduled attempt in the batch engine's dense state.
_DENSE_DTYPE = _np.dtype([
    ("req", _np.int64),      # interned request id
    ("tg", _np.int64),       # tokens generated (mirrors the record)
    ("out", _np.int64),      # output-length target
    ("ent", _np.int64),      # interned entry-channel id
    ("attempt", _np.int64),  # attempt number of this row
    ("live", _np.bool_),     # attempt still in flight
])


class _DenseState:
    """Hot per-attempt request state in one dense structured numpy array.

    The batch-level engine moves the fields its wide token path reads —
    tokens generated, output target, entry-channel id — out of Python
    objects into flat arrays keyed by a dense row index, so eligibility
    masks over a whole token cohort are a few array ops instead of
    per-token attribute chains. Rows are append-only: every scheduled
    attempt (retries and hedge shadows included) gets its own row, and
    the authoritative :class:`~repro.sim.metrics.RequestRecord` stays
    the source of truth — the dense mirror is only consulted for wide
    masks and is kept exactly in sync by every token-count mutation.
    """

    __slots__ = ("arr", "rows", "tg", "out", "ent", "interner", "_channel_ids")

    def __init__(self, capacity: int = 1024) -> None:
        self.arr = _np.zeros(capacity, dtype=_DENSE_DTYPE)
        self.rows = 0
        self.interner = RequestInterner()
        self._channel_ids: dict[LinkChannel, int] = {}
        self._refresh_views()

    def _refresh_views(self) -> None:
        arr = self.arr
        self.tg = arr["tg"]
        self.out = arr["out"]
        self.ent = arr["ent"]

    def channel_id(self, channel) -> int:
        """Dense integer for a channel object (identity-keyed)."""
        ids = self._channel_ids
        cid = ids.get(channel)
        if cid is None:
            cid = len(ids)
            ids[channel] = cid
        return cid

    def add_row(self, request_id, output_len, entry_channel, attempt) -> int:
        """Register one scheduled attempt; returns its dense row index."""
        row = self.rows
        arr = self.arr
        if row == len(arr):
            grown = _np.zeros(2 * len(arr), dtype=_DENSE_DTYPE)
            grown[:row] = arr
            self.arr = grown
            self._refresh_views()
        rec = self.arr[row]
        rec["req"] = self.interner.intern(request_id)
        rec["tg"] = 0
        rec["out"] = output_len
        rec["ent"] = self.channel_id(entry_channel)
        rec["attempt"] = attempt
        rec["live"] = True
        self.rows = row + 1
        return row

    def retire(self, row: int) -> None:
        """Mark an attempt's row dead (finish, cancel, or requeue)."""
        rec = self.arr[row]
        rec["live"] = False
        rec["tg"] = 0


@dataclass(frozen=True)
class DrainRecord:
    """One completed graceful drain: the node left with zero lost work.

    ``kv_leaked`` is the KV tokens still charged to the node's pool when
    the drain finalized — a clean drain leaks nothing (every attempt that
    routed through the node finished and freed its charges first).
    """

    node_id: str
    started: float
    completed: float
    kv_leaked: int

    @property
    def duration(self) -> float:
        """Seconds between drain request and the node leaving service."""
        return self.completed - self.started


class Simulation:
    """Simulate serving a request trace on a placed cluster.

    Args:
        cluster: The serving cluster.
        model: The served model.
        placement: Model placement in effect.
        scheduler: A configured scheduler (Helix, Swarm, random, ...).
        requests: The trace, sorted or not by arrival time.
        profiler: Timing model; must match the one used for planning.
        max_batch_tokens: Per-batch token cap on every node (bounds the
            batch latency of flooded offline runs).
        max_time: Simulation horizon in seconds; events beyond it are not
            processed.
        warmup: Seconds excluded from the measurement window.
        seed: Top-level seed recorded for the run. The simulation itself is
            deterministic; thread the *same* seed into the trace and churn
            generators (``random_churn(..., seed=...)``) so one value
            reproduces an entire dynamic run exactly.
        controller: Optional online controller (see
            :class:`repro.online.OnlineController`); its ``start(sim)`` is
            called once before the event loop to inject environment events.
        coalescing: Enable hop-group events and the closed-window decode
            fast-forward. ``False`` forces one heap event per hop — the
            bit-identical per-token reference the differential suite
            compares against. Results are identical either way; only the
            wall-clock speed differs.
        timeline_resolution: Bucket width (seconds) of the global token
            timeline; keep it a power of two so windowed goodput over the
            derived view matches the exact timeline (see
            :class:`~repro.sim.metrics.TokenTimeline`).
        residency: Optional :class:`~repro.sim.residency.ResidencyConfig`.
            When set, nodes track which model layers actually live in
            their VRAM: a node that (re)joins the placement *warms up*
            first — its missing layers are pulled as real weight-transfer
            traffic through the link channels (contending with inference
            activations), and it only becomes schedulable when they land.
            ``None`` (the default) keeps the legacy instant-recovery
            semantics bit-identically.
        tenancy: Optional :class:`~repro.tenancy.manager.TenancyConfig`.
            When set, requests are tagged and accounted per tenant, the
            pending queue becomes per-tenant lanes drained by the
            windowed-fairness selector, and admission control sheds
            lowest-priority traffic first (optionally evicting a
            lower-priority queued request to admit a higher-priority
            arrival). ``None`` (the default) keeps the single-tenant
            legacy semantics bit-identically.
        engine: ``"hop"`` (the default) is the per-event hop-table
            engine; ``"batch"`` adds the cross-request batch level on
            top — dense per-attempt state arrays, vectorized coordinator
            token runs, O(1) cohort enqueues, and the generalized
            closed-window fast-forward. The two engines are observably
            bit-identical on every trace; only wall-clock speed differs.
    """

    def __init__(
        self,
        cluster: Cluster,
        model: ModelSpec,
        placement,
        scheduler: Scheduler,
        requests: list[Request],
        profiler: Profiler | None = None,
        max_batch_tokens: int | None = 16384,
        max_time: float = 3600.0,
        warmup: float = 0.0,
        seed: int | None = None,
        controller=None,
        coalescing: bool = True,
        timeline_resolution: float = 0.0625,
        policy=None,
        debug_validate: bool = False,
        residency=None,
        tenancy=None,
        engine: str = "hop",
    ) -> None:
        if not requests:
            raise SimulationError("request trace is empty")
        if engine not in ("hop", "batch"):
            raise SimulationError(
                f"unknown engine {engine!r}: choose 'hop' or 'batch'"
            )
        self.engine = engine
        self.cluster = cluster
        self.model = model
        self.placement = placement
        self.scheduler = scheduler
        self.profiler = profiler or Profiler()
        self.max_time = max_time
        self.warmup = warmup
        self.max_batch_tokens = max_batch_tokens
        self.seed = seed
        self.controller = controller
        #: Optional per-request lifecycle policy (deadlines, timeouts,
        #: bounded retries, hedging, shedding). ``None`` — and any
        #: default-constructed policy — is the legacy semantics.
        self._policy = policy
        #: Run ``cluster.validate()`` after every event applied through
        #: :meth:`apply_event` (chaos/test harnesses turn this on).
        self.debug_validate = debug_validate
        if policy is not None and policy.max_pending is not None:
            scheduler.admission_limit = policy.max_pending

        self.requests = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        self.executors: dict[str, NodeExecutor] = {}
        self.kv_pools: dict[str, KVCachePool] = {}
        for node_id in placement.used_nodes:
            self._bind_node(node_id)
        self.channels: dict[tuple[str, str], LinkChannel] = {
            key: LinkChannel(link) for key, link in cluster.links.items()
        }

        self._events: list[tuple] = []
        self._seq = 0  # global event sequence number (tie-break order)
        self._now = 0.0
        self._halt = False
        self._active: dict[str, _ActiveRequest] = {}
        self._pending: deque[Request] = deque()
        self._records: dict[str, RequestRecord] = {}
        self._pipeline_depths: list[int] = []
        self._last_token_time = 0.0
        self._timeline = TokenTimeline(timeline_resolution)
        self._down_nodes: set[str] = set()
        # Gray-failure state. Silently-down nodes have physically died but
        # nothing in the control plane knows yet (the scheduler keeps
        # routing to them); zombies accept work and never finish it. Both
        # leave this limbo only through confirm_node_failure (a detector
        # confirmed them) or restore_node (the environment healed them).
        self._silent_down: set[str] = set()
        self._zombie_nodes: set[str] = set()
        #: Ground-truth fault onset times (for MTTD and false-positive
        #: accounting); entries removed on restore.
        self._fault_times: dict[str, float] = {}
        #: Token-counter snapshot per confirmed-dead node: after
        #: confirmation the node must never emit another token (the chaos
        #: invariants assert the counter stays at the snapshot).
        self._confirmed_dead_marks: dict[str, float] = {}
        self._dead_node_breaches: list[str] = []
        self._requests_shed = 0
        self._requests_lost = 0
        #: Requests sitting out a retry backoff (neither active nor in the
        #: pending queue) — needed for request conservation.
        self._backoff_waiting = 0
        self._base_bandwidth: dict[tuple[str, str], float] = {}
        for node_id in cluster.down_node_ids:
            self._down_nodes.add(node_id)
            self.scheduler.mark_node_down(node_id)

        # Layer residency (None on the default path: zero extra work, the
        # engine is bit-identical to the residency-less simulator).
        if residency is not None:
            from repro.sim.residency import ResidencyManager

            self._residency = ResidencyManager(residency, model, placement)
        else:
            self._residency = None
        # Multi-tenancy (None on the default path: the plain deque pending
        # queue and zero per-token work keep the engine bit-identical to
        # the single-tenant simulator).
        if tenancy is not None:
            from repro.tenancy.manager import FairPendingQueue, TenantManager

            self._tenancy = TenantManager(tenancy)
            self._pending = FairPendingQueue(self._tenancy, lambda: self._now)
            admission = tenancy.admission
            if admission is not None:
                scheduler.admission_limit = admission.max_pending
        else:
            self._tenancy = None
        # Graceful drain: nodes finishing their in-flight work before
        # leaving service (independent of residency; always available).
        self._draining: set[str] = set()
        self._drain_started: dict[str, float] = {}
        self._drain_waiters: dict[str, Callable] = {}
        #: Every completed drain, in completion order.
        self.drain_log: list[DrainRecord] = []

        # Hot-loop constants and state.
        self._coalesce = coalescing
        self._token_bytes = model.token_bytes
        self._abpt = model.activation_bytes_per_token
        self._scratch: dict[LinkChannel, _HopGroup] = {}
        # True once any attempt was disrupted; until then every in-flight
        # work provably belongs to a live attempt and the per-work
        # staleness checks are skipped.
        self._disrupted = False
        # True once any link turned flaky. Fault delays can reorder
        # arrivals within what would have been one sorted hop group, so
        # gray mode latches coalescing off (single-entry groups preserve
        # heap ordering); like _disrupted it flips at most once, keeping
        # the fault-free hot path untouched.
        self._gray = False
        # Schedulers that keep the base class's no-op progress hook skip
        # the per-batch callback entirely.
        self._notify_progress = (
            type(scheduler).notify_node_progress
            is not Scheduler.notify_node_progress
        )
        # Batch engine: dense per-attempt state (None = hop engine; every
        # batch-level path keys off this).
        self._dense = _DenseState() if engine == "batch" else None
        # Engine telemetry (for benchmarks and tests).
        self.events_popped = 0
        self.grouped_hops = 0
        self.fast_forwarded_tokens = 0
        self.vectorized_tokens = 0
        self.vec_fast_forwarded_tokens = 0
        self.group_fast_forwards = 0

    def _bind_node(self, node_id: str) -> None:
        """Create (or re-create) the executor and KV pool for a used node."""
        node = self.cluster.node(node_id)
        stage = self.placement.interval(node_id)
        old_executor = self.executors.get(node_id)
        if old_executor is not None:
            # In-flight batches of the replaced executor must go stale.
            old_executor.epoch += 1
        self.executors[node_id] = NodeExecutor(
            node, self.model, self.profiler, stage.num_layers,
            self.max_batch_tokens,
        )
        pool = KVCachePool(
            node_id=node_id,
            capacity_tokens=self.profiler.kv_capacity(
                node, self.model, stage.num_layers
            ),
        )
        old_pool = self.kv_pools.get(node_id)
        if old_pool is not None:
            # Overflow/peak history is a run-level statistic (metrics sum
            # over current pools); a rebind must not erase it.
            pool.overflow_events = old_pool.overflow_events
            pool.peak_tokens = old_pool.peak_tokens
        self.kv_pools[node_id] = pool

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def schedule_event(
        self, when: float, fn: Callable[["Simulation"], None]
    ) -> None:
        """Schedule an environment callback ``fn(sim)`` at time ``when``.

        This is how online controllers inject cluster churn — node
        failures, recoveries, link degradations, replan applications —
        into the event loop.
        """
        if when < self._now - 1e-9:
            raise SimulationError(
                f"event 'env' scheduled in the past ({when} < {self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._events, (when, seq, K_ENV, fn))

    def apply_event(self, event) -> str:
        """Apply one :class:`~repro.online.events.ClusterEvent` now.

        Single entry point for environment events so the optional
        ``debug_validate`` hook runs after *every* applied event: any
        event that leaves the cluster's invariants broken fails here,
        at the event, not later at some unrelated assertion.
        """
        description = event.apply(self)
        if self.debug_validate:
            self.cluster.validate()
        return description

    def run(self) -> ServingMetrics:
        """Play the trace and return aggregate metrics."""
        if self.controller is not None:
            self.controller.start(self)
        events = self._events
        seq = self._seq
        for request in self.requests:
            heappush(events, (request.arrival_time, seq, K_ARRIVAL, request))
            seq += 1
        self._seq = seq

        max_time = self.max_time
        pops = 0
        while events:
            item = heappop(events)
            when = item[0]
            if when > max_time:
                break
            pops += 1
            self._now = when
            kind = item[2]
            if kind == K_GROUP:
                self._on_group(item[3])
            elif kind == K_BATCH:
                payload = item[3]
                self._on_batch_complete(*payload)
            elif kind == K_TOKEN:
                self._on_token_group(item[3])
            elif kind == K_ARRIVAL:
                self._on_arrival(item[3])
            else:
                item[3](self)
            if self._halt:
                break
        self.events_popped += pops

        end_time = min(self._now, self.max_time)
        end_time = max(end_time, self.warmup + 1e-9)
        if self._tenancy is not None:
            self._tenancy.finalize(end_time)
        return aggregate_metrics(
            records=list(self._records.values()),
            warmup=self.warmup,
            end_time=end_time,
            kv_overflow_events=sum(
                pool.overflow_events for pool in self.kv_pools.values()
            ),
            pipeline_depths=self._pipeline_depths,
        )

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def _on_arrival(self, request: Request) -> None:
        record = RequestRecord(
            request_id=request.request_id,
            input_len=request.input_len,
            output_len=request.output_len,
            arrival_time=request.arrival_time,
            tenant_id=request.tenant_id,
        )
        tenancy = self._tenancy
        if tenancy is not None:
            record.priority = tenancy.priority_of(request.tenant_id)
        self._records[request.request_id] = record
        policy = self._policy
        if policy is not None and policy.deadline is not None:
            rid = request.request_id
            self.schedule_event(
                request.arrival_time + policy.deadline,
                lambda s, rid=rid: s._deadline_check(rid),
            )
        if not self._try_schedule(request):
            has_admission = (
                tenancy is not None and tenancy.config.admission is not None
            )
            if (has_admission or policy is not None) and not self.scheduler.admit(
                request.request_id,
                request.input_len,
                len(self._pending),
                priority=record.priority,
            ):
                if not (has_admission and self._admit_by_eviction(record)):
                    record.shed = True
                    self._requests_shed += 1
                    return
            self._pending.append(request)

    def _admit_by_eviction(self, record: RequestRecord) -> bool:
        """Make room for a higher-priority arrival at a full queue.

        Sheds the newest queued request of the lowest-priority backlogged
        tenant — but only when it is *strictly* lower priority than the
        arrival, so overload still sheds lowest-priority traffic first
        rather than churning within a class. Returns True when a slot was
        freed for the arrival.
        """
        admission = self._tenancy.config.admission
        if not admission.evict_lower_priority:
            return False
        victim = self._pending.lowest_priority_queued()
        if victim is None:
            return False
        victim_record = self._records[victim.request_id]
        if victim_record.priority >= record.priority:
            return False
        self._pending.remove(victim)
        victim_record.shed = True
        self._requests_shed += 1
        return True

    def _try_schedule(self, request: Request) -> bool:
        pipeline = self.scheduler.schedule(request.request_id, request.input_len)
        if pipeline is None:
            return False
        record = self._records[request.request_id]
        record.schedule_time = self._now
        attempt = record.retries + record.migrations
        active = _ActiveRequest(
            request=request, pipeline=pipeline, record=record, attempt=attempt
        )
        self._build_hops(active)
        dense = self._dense
        if dense is not None:
            active.dense = dense.add_row(
                request.request_id, active.output_len,
                active.entry_channel, attempt,
            )
        self._active[request.request_id] = active
        if self._tenancy is not None:
            self._tenancy.note_dispatch(
                active.sched_id, request.tenant_id, self._now
            )
        self._start_prompt(active)
        policy = self._policy
        if policy is not None:
            if policy.ttft_timeout is not None:
                self.schedule_event(
                    self._now + policy.ttft_timeout,
                    lambda s, a=active: s._ttft_check(a),
                )
            if policy.hedge_after is not None:
                self.schedule_event(
                    self._now + policy.hedge_after,
                    lambda s, a=active: s._try_hedge(a),
                )
        return True

    def _build_hops(self, active: _ActiveRequest) -> None:
        """Resolve the pipeline into hop-table entries and reusable works.

        Raises ``SimulationError`` when a pipeline hop has no link — the
        same condition the per-hop engine reports at transmit time, caught
        here once instead of per message.
        """
        stages = active.pipeline.stages
        depth = len(stages)
        rid = active.request_id
        attempt = active.attempt
        input_len = active.request.input_len
        channels = self.channels
        hops = active.hops
        prompt_works = active.prompt_works
        decode_works = active.decode_works
        for index, stage in enumerate(stages):
            node_id = stage.node_id
            executor = self.executors[node_id]
            pool = self.kv_pools[node_id]
            if index + 1 < depth:
                key = (node_id, stages[index + 1].node_id)
                final = False
            else:
                key = (node_id, COORDINATOR)
                final = True
            channel = channels.get(key)
            if channel is None:
                raise SimulationError(
                    f"no link {key[0]!r}->{key[1]!r} for transmission"
                )
            hop = _Hop(executor, pool, node_id, channel, final, index)
            num_layers = stage.num_layers
            hop.decode_tl = num_layers
            hop.decode_time = (
                num_layers / executor.compute_rate
                + executor.weights_time
                + executor.overhead
            )
            hops.append(hop)
            prompt_works.append(StageWork(
                rid, index, input_len, num_layers, True, attempt,
                tl=input_len * num_layers, owner=active, hop=hop,
            ))
            decode_works.append(StageWork(
                rid, index, 1, num_layers, False, attempt,
                tl=num_layers, owner=active, hop=hop,
            ))
        # Chain each work to the one its stage forwards to (itself at the
        # final stage: the token returns to the coordinator carrying the
        # same owner/attempt identity).
        for index in range(depth):
            nxt = index + 1 if index + 1 < depth else index
            object.__setattr__(prompt_works[index], "next", prompt_works[nxt])
            object.__setattr__(decode_works[index], "next", decode_works[nxt])
        entry_key = (COORDINATOR, stages[0].node_id)
        entry = channels.get(entry_key)
        if entry is None:
            raise SimulationError(
                f"no link {entry_key[0]!r}->{entry_key[1]!r} for transmission"
            )
        active.entry_channel = entry
        active.entry_work = decode_works[0]

    def _retry_pending(self) -> None:
        while self._pending:
            request = self._pending[0]
            if not self._try_schedule(request):
                return
            self._pending.popleft()

    def _start_prompt(self, active: _ActiveRequest) -> None:
        """Ship the prompt to the first stage (one single-entry group)."""
        num_bytes = active.request.input_len * self._token_bytes
        arrival = active.entry_channel.transmit(self._now, num_bytes)
        if self._gray:
            fault = active.entry_channel.fault
            if fault is not None:
                arrival += fault.delay()
        group = _HopGroup(K_GROUP)
        group.times.append(arrival)
        seq = self._seq
        self._seq = seq + 1
        group.seqs.append(seq)
        group.works.append(active.prompt_works[0])
        heappush(self._events, (arrival, group.seqs[0], K_GROUP, group))

    # ------------------------------------------------------------------
    # Hot loop: group drains, batches, tokens
    # ------------------------------------------------------------------
    def _on_group(self, group: _HopGroup) -> None:
        """Drain contiguous stage arrivals, pausing behind earlier events."""
        times = group.times
        seqs = group.seqs
        works = group.works
        i = group.index
        n = len(times)
        events = self._events
        max_time = self.max_time
        disrupted = self._disrupted
        # The heap top only changes when this drain starts a batch, so it
        # is re-read only then instead of per work.
        if events:
            top = events[0]
            top_t = top[0]
            top_seq = top[1]
        else:
            top_t = math.inf
            top_seq = 0
        while True:
            t = times[i]
            if t > top_t or (t == top_t and seqs[i] > top_seq):
                # A drain can only pause after processing at least one
                # entry: the run loop popped this group as the heap
                # minimum, so its first entry is never behind the top.
                group.index = i
                self._now = times[i - 1]
                heappush(events, (t, seqs[i], K_GROUP, group))
                return
            if t > max_time:
                group.index = i
                self._now = times[i - 1]
                self._halt = True
                return
            work = works[i]
            if not disrupted:
                executor = work.hop.executor
                if executor.busy:
                    # Arrivals at a busy executor are pure enqueues: take
                    # the whole stretch due before the next heap event (or
                    # the horizon) in one slice. All works of a group
                    # target the same executor (one channel, one
                    # destination), and nothing can flip it idle before
                    # the next event pops.
                    bound = top_t if top_t < max_time else max_time
                    j = bisect_right(times, bound, i, n)
                    while j > i and times[j - 1] == top_t and seqs[j - 1] > top_seq:
                        j -= 1
                    span = works[i:j]
                    utl = group.utl
                    if utl >= 0:
                        # Uniform single-token cohort: slice totals are
                        # O(1) integer products, no per-work scan.
                        tokens = j - i
                        tl = tokens * utl
                    else:
                        tokens = 0
                        tl = 0
                        for peer in span:
                            tokens += peer.num_tokens
                            tl += peer.tl
                    executor.enqueue_run(span, tokens, tl)
                    i = j
                    if i == n:
                        group.index = n
                        self._now = times[n - 1]
                        return
                    continue  # the loop head re-checks pause/halt for i
            i += 1
            owner = work.owner
            if not disrupted or (owner.live and owner.attempt == work.attempt):
                executor = work.hop.executor
                if executor.busy or executor.queue:
                    executor.queue.append(work)
                    executor.queue_tokens += work.num_tokens
                    executor.queue_tl += work.tl
                    if not executor.busy:
                        self._now = t
                        self._start_batch(executor)
                        top = events[0]  # push above guarantees non-empty
                        top_t = top[0]
                        top_seq = top[1]
                else:
                    # Idle node, empty queue: the arrival is the batch.
                    self._now = t
                    executor.busy = True
                    tl = work.tl
                    elapsed = (
                        tl / executor.compute_rate
                        + executor.weights_time
                        + executor.overhead
                    )
                    seq = self._seq
                    self._seq = seq + 1
                    heappush(
                        events,
                        (
                            t + elapsed,
                            seq,
                            K_BATCH,
                            (executor, executor.epoch, [work], elapsed,
                             tl, work.num_tokens),
                        ),
                    )
                    top = events[0]
                    top_t = top[0]
                    top_seq = top[1]
            if i == n:
                group.index = n
                self._now = times[n - 1]
                return

    def _start_batch(self, executor: NodeExecutor) -> None:
        cap = executor.max_batch_tokens
        if cap is None or executor.queue_tokens <= cap:
            batch = executor.queue
            if not batch:
                executor.busy = False
                return
            tl = executor.queue_tl
            tokens = executor.queue_tokens
            executor.queue = []
            executor.queue_tokens = 0
            executor.queue_tl = 0
        else:
            # Token-capped batch formation in one pass (same FIFO cut rule
            # as NodeExecutor.take_batch, fused with the batch pricing).
            queue = executor.queue
            tokens = queue[0].num_tokens
            tl = queue[0].tl
            cut = 1
            length = len(queue)
            while cut < length:
                item = queue[cut]
                num_tokens = item.num_tokens
                if tokens + num_tokens > cap:
                    break
                tokens += num_tokens
                tl += item.tl
                cut += 1
            if cut == length:
                batch = queue
                executor.queue = []
                executor.queue_tokens = 0
                executor.queue_tl = 0
            else:
                batch = queue[:cut]
                del queue[:cut]
                executor.queue_tokens -= tokens
                executor.queue_tl -= tl
        executor.busy = True
        elapsed = (
            tl / executor.compute_rate
            + executor.weights_time
            + executor.overhead
        )
        seq = self._seq
        self._seq = seq + 1
        heappush(
            self._events,
            (
                self._now + elapsed,
                seq,
                K_BATCH,
                (executor, executor.epoch, batch, elapsed, tl, tokens),
            ),
        )

    def _on_batch_complete(
        self,
        executor: NodeExecutor,
        epoch: int,
        batch: list[StageWork],
        elapsed: float,
        tl: int,
        tokens: int,
    ) -> None:
        if epoch != executor.epoch:
            return  # the node failed or was re-bound mid-batch
        executor.busy = False
        stats = executor.stats
        stats.batches += 1
        stats.busy_time += elapsed
        stats.token_layers += tl
        stats.tokens += tokens
        if self._notify_progress:
            self.scheduler.notify_node_progress(executor.node_id, tokens, elapsed)

        now = self._now
        disrupted = self._disrupted
        gray = self._gray
        coalesce = self._coalesce and not gray
        scratch = self._scratch
        events = self._events
        seq = self._seq
        token_bytes = self._token_bytes
        abpt = self._abpt
        batch_engine = self._dense is not None
        # Run caches: consecutive works almost always share a pool (same
        # stage) and a channel (same next hop); their mutable fields live
        # in locals for the duration of the run and are written back when
        # the run ends. The arithmetic (values and order) is unchanged.
        pool = None
        p_used = p_cap = p_peak = p_over = 0
        channel = None
        ch_nf = ch_bytes = ch_qd = ch_maxq = ch_bw = ch_lat = 0.0
        ch_msgs = 0
        final = False
        kind = K_GROUP
        g_times = g_seqs = g_works = None
        n_works = len(batch)
        # Long runs of single-token works on one channel (the steady-state
        # decode cohort) vectorize: after the first transmit the channel is
        # continuously busy, so every start time equals the previous end
        # time and the whole chain is one strict left fold —
        # np.add.accumulate reproduces it bit-for-bit (asserted in tests).
        vec_ok = coalesce and not disrupted and n_works >= _VEC_MIN
        scan_limit = 0
        idx = 0
        while idx < n_works:
            work = batch[idx]
            if vec_ok and idx >= scan_limit and work.num_tokens == 1:
                hop = work.hop
                run_channel = hop.channel
                j = idx + 1
                while j < n_works:
                    peer = batch[j]
                    if (
                        peer.num_tokens != 1
                        or peer.hop.channel is not run_channel
                    ):
                        break
                    j += 1
                k = j - idx
                if k >= _VEC_MIN:
                    # Write back the scalar run caches before going wide.
                    if pool is not None:
                        pool.used_tokens = p_used
                        pool.peak_tokens = p_peak
                        pool.overflow_events = p_over
                        pool = None
                    if channel is not None:
                        channel.next_free_time = ch_nf
                        channel.bytes_sent = ch_bytes
                        channel.messages_sent = ch_msgs
                        channel.total_queueing_delay = ch_qd
                        channel.max_queueing_delay = ch_maxq
                        channel = None
                    run = batch[idx:j]
                    hop.pool.charge_run(k)
                    nx = []
                    nx_append = nx.append
                    for peer in run:
                        peer.owner.done += 1
                        nx_append(peer.next)
                    run_final = hop.final
                    num_bytes = token_bytes if run_final else 1 * abpt
                    bw = run_channel.bandwidth
                    transmission = num_bytes / bw
                    nf = run_channel.next_free_time
                    start = nf if nf > now else now
                    chain = _np.empty(k)
                    chain[0] = start + transmission
                    chain[1:] = transmission
                    ends = _np.add.accumulate(chain)
                    queueing = _np.empty(k)
                    queueing[0] = start - now
                    queueing[1:] = ends[:-1] - now
                    arrivals = ends + run_channel.latency
                    run_channel.next_free_time = float(ends[-1])
                    fold = _np.empty(k + 1)
                    fold[0] = run_channel.bytes_sent
                    fold[1:] = num_bytes
                    run_channel.bytes_sent = float(_np.add.accumulate(fold)[-1])
                    run_channel.messages_sent += k
                    fold[0] = run_channel.total_queueing_delay
                    fold[1:] = queueing
                    run_channel.total_queueing_delay = float(
                        _np.add.accumulate(fold)[-1]
                    )
                    top_queueing = float(queueing.max())
                    if top_queueing > run_channel.max_queueing_delay:
                        run_channel.max_queueing_delay = top_queueing
                    group = scratch.get(run_channel)
                    if group is None:
                        group = _HopGroup(K_TOKEN if run_final else K_GROUP)
                        scratch[run_channel] = group
                        if batch_engine:
                            group.utl = nx[0].tl
                    elif batch_engine and group.utl != nx[0].tl:
                        group.utl = -1
                    group.times.extend(arrivals.tolist())
                    group.seqs.extend(range(seq, seq + k))
                    seq += k
                    group.works.extend(nx)
                    idx = j
                    continue
                scan_limit = j  # short run: process it scalar, no rescans
            idx += 1
            owner = work.owner
            if disrupted and not (
                owner.live and owner.attempt == work.attempt
            ):
                continue  # finished under max_time truncation, or disrupted
            hop = work.hop
            num_tokens = work.num_tokens
            # KV grows on this node: the whole prompt once, then one token
            # per decode iteration.
            p = hop.pool
            if p is not pool:
                if pool is not None:
                    pool.used_tokens = p_used
                    pool.peak_tokens = p_peak
                    pool.overflow_events = p_over
                pool = p
                p_used = p.used_tokens
                p_cap = p.capacity_tokens
                p_peak = p.peak_tokens
                p_over = p.overflow_events
            p_used += num_tokens
            if p_used > p_cap:
                p_over += 1
            if p_used > p_peak:
                p_peak = p_used
            owner.done += 1
            # Forward on this hop's FIFO channel (inline transmit — the
            # identical arithmetic LinkChannel.transmit performs).
            ch = hop.channel
            if ch is not channel:
                if channel is not None:
                    channel.next_free_time = ch_nf
                    channel.bytes_sent = ch_bytes
                    channel.messages_sent = ch_msgs
                    channel.total_queueing_delay = ch_qd
                    channel.max_queueing_delay = ch_maxq
                channel = ch
                ch_nf = ch.next_free_time
                ch_bytes = ch.bytes_sent
                ch_msgs = ch.messages_sent
                ch_qd = ch.total_queueing_delay
                ch_maxq = ch.max_queueing_delay
                ch_bw = ch.bandwidth
                ch_lat = ch.latency
                final = hop.final
                kind = K_TOKEN if final else K_GROUP
                if coalesce:
                    group = scratch.get(ch)
                    if group is None:
                        group = _HopGroup(kind)
                        scratch[ch] = group
                    elif batch_engine and group.utl >= 0:
                        # Scalar appends may mix phases and widths; the
                        # uniformity claim no longer holds.
                        group.utl = -1
                    g_times = group.times
                    g_seqs = group.seqs
                    g_works = group.works
            num_bytes = token_bytes if final else num_tokens * abpt
            start = ch_nf if ch_nf > now else now
            queueing = start - now
            transmission = num_bytes / ch_bw
            end = start + transmission
            ch_nf = end
            ch_bytes += num_bytes
            ch_msgs += 1
            ch_qd += queueing
            if queueing > ch_maxq:
                ch_maxq = queueing
            arrival = end + ch_lat
            if gray:
                fault = ch.fault
                if fault is not None:
                    arrival += fault.delay()
            if coalesce:
                g_times.append(arrival)
                g_seqs.append(seq)
                g_works.append(work.next)
            else:
                group = _HopGroup(kind)
                group.times.append(arrival)
                group.seqs.append(seq)
                group.works.append(work.next)
                heappush(events, (arrival, seq, kind, group))
            seq += 1
        self._seq = seq
        if pool is not None:
            pool.used_tokens = p_used
            pool.peak_tokens = p_peak
            pool.overflow_events = p_over
        if channel is not None:
            channel.next_free_time = ch_nf
            channel.bytes_sent = ch_bytes
            channel.messages_sent = ch_msgs
            channel.total_queueing_delay = ch_qd
            channel.max_queueing_delay = ch_maxq
        if coalesce and scratch:
            for group in scratch.values():
                heappush(
                    events,
                    (group.times[0], group.seqs[0], group.kind, group),
                )
                self.grouped_hops += len(group.times)
            scratch.clear()

        if executor.queue:
            self._start_batch(executor)

    def _on_token_group(self, group: _HopGroup) -> None:
        """Drain contiguous token deliveries at the coordinator."""
        times = group.times
        seqs = group.seqs
        works = group.works
        i = group.index
        n = len(times)
        events = self._events
        max_time = self.max_time
        disrupted = self._disrupted
        gray = self._gray
        coalesce = self._coalesce and not gray
        scratch = self._scratch
        tenancy = self._tenancy
        token_bytes = self._token_bytes
        timeline = self._timeline
        tl_counts = timeline._counts
        tl_inv = timeline._inv
        tl_added = 0
        dense = self._dense
        batch_engine = dense is not None
        # The wide token path engages only on the clean steady state: no
        # disruption latch (stale-work filtering stays scalar), no
        # per-token tenancy accounting, coalescing on.
        batch_vec = (
            batch_engine and coalesce and not disrupted and tenancy is None
        )
        vec_scan = i
        # Earliest re-entry arrival accumulated in scratch but not yet in
        # the heap; the drain must not run past it.
        pending_first = math.inf
        # The heap top only changes when a token finishes its request (a
        # pending admission may push prompt events) or, without
        # coalescing, when the re-entry is pushed directly.
        if events:
            top = events[0]
            top_t = top[0]
            top_seq = top[1]
        else:
            top_t = math.inf
            top_seq = 0
        while True:
            t = times[i]
            if t > top_t or (t == top_t and seqs[i] > top_seq):
                break
            if t > pending_first:
                break
            if t > max_time:
                group.index = i
                timeline.count += tl_added
                self._flush_scratch()
                self._halt = True
                return
            if batch_vec and i >= vec_scan and n - i >= _VEC_MIN:
                advanced, skip, pending_first = self._vec_token_run(
                    group, i, top_t, pending_first
                )
                if advanced:
                    i += advanced
                    if i == n:
                        group.index = n
                        timeline.count += tl_added
                        self._flush_scratch()
                        return
                    continue
                # Nothing committed: let the scalar path chew through at
                # least ``skip`` tokens (first/last tokens, channel
                # switches, tie races) before paying the gather again.
                vec_scan = i + (skip if skip >= _VEC_MIN else _VEC_MIN)
            self._now = t
            work = works[i]
            i += 1
            owner = work.owner
            if not disrupted or (owner.live and owner.attempt == work.attempt):
                record = owner.record
                token_times = record.token_times
                if not token_times:
                    peer = owner.hedge
                    if peer is not None:
                        # First token decides the hedge race: this attempt
                        # wins, the peer is cancelled (and the winner, if
                        # it was the shadow, is promoted to primary).
                        owner.hedge = None
                        peer.hedge = None
                        owner.is_hedge = False
                        if peer.sched_id in self._active:
                            self._cancel_attempt(peer)
                        disrupted = True
                        batch_vec = False
                    record.first_token_time = t
                    if tenancy is not None:
                        tenancy.note_first_token(
                            owner.request.tenant_id, t - record.arrival_time
                        )
                token_times.append(t)
                record.tokens_generated += 1
                if batch_engine:
                    dense.tg[owner.dense] += 1
                if tenancy is not None:
                    tenancy.note_token(owner.request.tenant_id, t)
                self._last_token_time = t
                bucket = int(t * tl_inv)
                if bucket < len(tl_counts):
                    tl_counts[bucket] += 1
                    tl_added += 1
                else:
                    timeline.count += tl_added
                    tl_added = 0
                    timeline.add(t)
                if record.tokens_generated >= owner.output_len:
                    self._finish(owner)
                    if events:
                        top = events[0]
                        top_t = top[0]
                        top_seq = top[1]
                    else:
                        top_t = math.inf
                        top_seq = 0
                elif (
                    coalesce
                    and i == n
                    and not scratch
                    and not self._pending
                    and (
                        len(self._active) == 1
                        and not any(
                            hop.executor.busy for hop in owner.hops
                        )
                        or batch_engine
                        and len(self._active) > 1
                        and owner.hedge is None
                        and not any(
                            hop.executor.busy or hop.executor.queue
                            for hop in owner.hops
                        )
                    )
                ):
                    # Closed window: this request decodes over provably
                    # quiescent executors — fast-forward it without the
                    # event loop until it finishes or the next scheduled
                    # event (an arrival, churn, a stale completion) is
                    # due. The hop engine requires it to be the sole live
                    # request; the batch engine generalizes to any
                    # non-interfering request — every other live request
                    # is parked in the heap (its next transition is a
                    # scheduled event at or past the window limit), so
                    # nothing can touch this request's executors or
                    # channels before the limit either way.
                    if len(self._active) > 1:
                        self.group_fast_forwards += 1
                    group.index = n
                    timeline.count += tl_added
                    self._fast_forward(owner)
                    return
                else:
                    # Decode re-entry: coordinator ships one token id back
                    # to the first stage (inline transmit).
                    channel = owner.entry_channel
                    nf = channel.next_free_time
                    start = nf if nf > t else t
                    queueing = start - t
                    transmission = token_bytes / channel.bandwidth
                    end = start + transmission
                    channel.next_free_time = end
                    channel.bytes_sent += token_bytes
                    channel.messages_sent += 1
                    channel.total_queueing_delay += queueing
                    if queueing > channel.max_queueing_delay:
                        channel.max_queueing_delay = queueing
                    arrival = end + channel.latency
                    if gray:
                        fault = channel.fault
                        if fault is not None:
                            arrival += fault.delay()
                    seq = self._seq
                    self._seq = seq + 1
                    if coalesce:
                        subgroup = scratch.get(channel)
                        if subgroup is None:
                            subgroup = _HopGroup(K_GROUP)
                            scratch[channel] = subgroup
                            if batch_engine:
                                subgroup.utl = owner.entry_work.tl
                        elif (
                            batch_engine
                            and subgroup.utl != owner.entry_work.tl
                        ):
                            subgroup.utl = -1
                        subgroup.times.append(arrival)
                        subgroup.seqs.append(seq)
                        subgroup.works.append(owner.decode_works[0])
                        if arrival < pending_first:
                            pending_first = arrival
                    else:
                        subgroup = _HopGroup(K_GROUP)
                        subgroup.times.append(arrival)
                        subgroup.seqs.append(seq)
                        subgroup.works.append(owner.decode_works[0])
                        heappush(events, (arrival, seq, K_GROUP, subgroup))
                        top = events[0]
                        top_t = top[0]
                        top_seq = top[1]
            if i == n:
                group.index = n
                timeline.count += tl_added
                self._flush_scratch()
                return
        # Paused: something else is due first.
        group.index = i
        timeline.count += tl_added
        heappush(events, (times[i], seqs[i], K_TOKEN, group))
        self._flush_scratch()

    def _vec_token_run(
        self,
        group: _HopGroup,
        i: int,
        top_t: float,
        pending_first: float,
    ) -> tuple[int, int, float]:
        """Advance a run of steady-state decode token deliveries at once.

        The scalar drain in :meth:`_on_token_group` performs, per token:
        record bookkeeping, the timeline bucket update, and the re-entry
        transmit on the owner's entry channel. For a run of *mid-decode*
        tokens whose owners share one entry channel, all of that
        collapses into one gather over the dense state plus a handful of
        array folds. Eligibility is decided entirely from the dense
        arrays (``tokens_generated > 0`` excludes first tokens and their
        hedge/TTFT bookkeeping; ``tokens_generated + 1 < output_len``
        excludes finishing tokens and the heap-top refresh they force);
        a candidate run is then cut at the heap top (exact-time ties go
        scalar, where the sequence compare decides), the horizon, and
        the earliest re-entry feedback bound, and finally validated
        against one of two bit-exact channel regimes:

        * **saturated** — every transmit starts at the previous end;
          the end times are the same strict left fold
          ``np.add.accumulate`` replays bit-for-bit (asserted in tests);
        * **free** — every transmit starts at the token's own time;
          queueing is exactly ``0.0`` per token, and ``total += 0.0``
          plus the max update are bit-exact no-ops the scalar path also
          performs, so both are skipped.

        The longer valid prefix matches the true scalar behaviour
        step-for-step (at every index only the regime tracking the real
        ``next_free_time`` survives its validity test; where both
        survive the two formulas coincide exactly), so the committed
        prefix is observably identical to scalar processing.

        Returns ``(advanced, skip, pending_first)``: ``advanced`` tokens
        starting at ``group.index == i`` were fully committed (records,
        dense state, timeline, channel counters, re-entry works, event
        sequence numbers); when 0, the caller should run at least
        ``skip`` tokens through the scalar path before re-attempting.
        """
        times = group.times
        works = group.works
        chunk = len(times) - i
        if chunk > 1024:
            chunk = 1024
        dense = self._dense
        owners = [work.owner for work in works[i:i + chunk]]
        idx = _np.fromiter(
            (owner.dense for owner in owners), _np.int64, count=chunk
        )
        tg = dense.tg[idx]
        ent = dense.ent[idx]
        mask = (tg > 0) & (tg + 1 < dense.out[idx]) & (ent == ent[0])
        if not mask[0]:
            good = _np.flatnonzero(mask)
            return 0, int(good[0]) if good.size else chunk, pending_first
        bad = _np.flatnonzero(~mask)
        k = int(bad[0]) if bad.size else chunk
        t_arr = _np.array(times[i:i + k])
        if t_arr[k - 1] >= top_t:
            k = int(_np.searchsorted(t_arr, top_t, side="left"))
            if k < _VEC_MIN:
                return 0, k, pending_first
            t_arr = t_arr[:k]
        max_time = self.max_time
        if t_arr[k - 1] > max_time:
            k = int(_np.searchsorted(t_arr, max_time, side="right"))
            if k < _VEC_MIN:
                return 0, k, pending_first
            t_arr = t_arr[:k]
        channel = owners[0].entry_channel
        token_bytes = self._token_bytes
        transmission = token_bytes / channel.bandwidth
        nf = channel.next_free_time
        t0 = times[i]
        start0 = nf if nf > t0 else t0
        # The drain must not run past the earliest unflushed re-entry;
        # within this run that is the first token's own re-entry arrival
        # (the entry channel is FIFO, so arrivals are nondecreasing).
        bound = start0 + transmission + channel.latency
        if pending_first < bound:
            bound = pending_first
        if t_arr[k - 1] > bound:
            k = int(_np.searchsorted(t_arr, bound, side="right"))
            if k < _VEC_MIN:
                return 0, k, pending_first
            t_arr = t_arr[:k]
        chain = _np.empty(k)
        chain[0] = start0 + transmission
        chain[1:] = transmission
        ends_sat = _np.add.accumulate(chain)
        later = t_arr[1:]
        bad_sat = _np.flatnonzero(ends_sat[:-1] < later)
        k_sat = int(bad_sat[0]) + 1 if bad_sat.size else k
        if nf > t0:
            k_free = 0
        else:
            bad_free = _np.flatnonzero(t_arr[:-1] + transmission > later)
            k_free = int(bad_free[0]) + 1 if bad_free.size else k
        if k_sat >= k_free:
            saturated = True
            if k_sat < k:
                k = k_sat
                t_arr = t_arr[:k]
            ends = ends_sat[:k]
        else:
            saturated = False
            k = k_free
            t_arr = t_arr[:k]
            ends = t_arr + transmission
        if k < _VEC_MIN:
            return 0, k, pending_first
        # ---- commit ----
        arrivals = ends + channel.latency
        channel.next_free_time = float(ends[k - 1])
        fold = _np.empty(k + 1)
        fold[0] = channel.bytes_sent
        fold[1:] = token_bytes
        channel.bytes_sent = float(_np.add.accumulate(fold)[-1])
        channel.messages_sent += k
        if saturated:
            queueing = _np.empty(k)
            queueing[0] = start0 - t0
            queueing[1:] = ends_sat[:k - 1] - later[:k - 1]
            fold[0] = channel.total_queueing_delay
            fold[1:] = queueing
            channel.total_queueing_delay = float(
                _np.add.accumulate(fold)[-1]
            )
            top_queueing = float(queueing.max())
            if top_queueing > channel.max_queueing_delay:
                channel.max_queueing_delay = top_queueing
        self._timeline.add_many(t_arr)
        dense.tg[idx[:k]] += 1
        scratch = self._scratch
        sub = scratch.get(channel)
        utl = owners[0].entry_work.tl
        if sub is None:
            sub = _HopGroup(K_GROUP)
            sub.utl = utl
            scratch[channel] = sub
        elif sub.utl != utl:
            sub.utl = -1
        seq = self._seq
        sub.seqs.extend(range(seq, seq + k))
        self._seq = seq + k
        arr_list = arrivals.tolist()
        sub.times.extend(arr_list)
        append_work = sub.works.append
        t_list = times[i:i + k]
        for owner, t in zip(owners[:k], t_list):
            record = owner.record
            record.token_times.append(t)
            record.tokens_generated += 1
            append_work(owner.entry_work)
        last = t_list[k - 1]
        self._now = last
        self._last_token_time = last
        self.vectorized_tokens += k
        if arr_list[0] < pending_first:
            pending_first = arr_list[0]
        return k, 0, pending_first

    def _flush_scratch(self) -> None:
        scratch = self._scratch
        if not scratch:
            return
        events = self._events
        for group in scratch.values():
            heappush(events, (group.times[0], group.seqs[0], group.kind, group))
            self.grouped_hops += len(group.times)
        scratch.clear()

    def _fast_forward(self, owner: _ActiveRequest) -> None:
        """Run the decode of the sole live request inline (macro-step).

        Preconditions (checked by the caller): empty pending queue, empty
        scratch, all of the request's executors idle with empty queues,
        current time at its just-emitted token, and every *other* live
        request (the hop engine allows none; the batch engine any number)
        parked in the heap — its next transition a scheduled event at or
        past the window limit. Until the next heap
        event is due, the system is closed: the only thing that can happen
        is this request's own iteration chain. The loop performs the
        identical float operations, in the identical order, as the event
        path would — entry transmit, per-hop batch and forward, token
        delivery — and allocates the identical event sequence numbers, so
        the results (including exact-time tie ordering afterwards) are
        bit-identical; it merely skips the heap, the dispatch, and the
        queue bookkeeping, none of which can be observed inside the
        window. On reaching the boundary — the next heap event's time, or
        the horizon — it stops mid-chain and re-materializes the one
        in-flight event back into the heap.
        """
        events = self._events
        limit = events[0][0] if events else math.inf
        record = owner.record
        hops = owner.hops
        entry = owner.entry_channel
        token_bytes = self._token_bytes
        abpt = self._abpt
        timeline = self._timeline
        notify = self._notify_progress
        notify_fn = self.scheduler.notify_node_progress
        max_time = self.max_time
        token_times = record.token_times
        decode_works = owner.decode_works
        tenancy = self._tenancy
        if (
            self._dense is not None
            and tenancy is None
            and not notify
        ):
            # Batch engine: macro-step whole decode rounds vectorized
            # (guess-and-verify; bit-exact committed prefix). The scalar
            # loop below then handles the boundary round.
            self._vec_fast_forward(owner, limit)
            if record.tokens_generated >= owner.output_len:
                self._dense.tg[owner.dense] = record.tokens_generated
                self._finish(owner)
                return
        seq = self._seq
        t = self._now
        produced = 0
        stopped = False
        tenant_id = owner.request.tenant_id
        while True:
            # Coordinator ships the token id back to the first stage.
            nf = entry.next_free_time
            start = nf if nf > t else t
            queueing = start - t
            transmission = token_bytes / entry.bandwidth
            end = start + transmission
            entry.next_free_time = end
            entry.bytes_sent += token_bytes
            entry.messages_sent += 1
            entry.total_queueing_delay += queueing
            if queueing > entry.max_queueing_delay:
                entry.max_queueing_delay = queueing
            cur = end + entry.latency
            arrival_seq = seq
            seq += 1
            if cur >= limit:
                # The stage-0 arrival is not ours to run: re-materialize it.
                group = _HopGroup(K_GROUP)
                group.times.append(cur)
                group.seqs.append(arrival_seq)
                group.works.append(decode_works[0])
                heappush(events, (cur, arrival_seq, K_GROUP, group))
                stopped = True
                break
            if cur > max_time:
                # The arrival would pop past the horizon; _now stays at
                # the last processed event (the token at t).
                self._halt = True
                stopped = True
                break
            for hop in hops:
                # Arrival at ``cur`` starts a single-work batch immediately
                # (every executor is provably idle in the window).
                executor = hop.executor
                elapsed = hop.decode_time
                completion = cur + elapsed
                batch_seq = seq
                seq += 1
                if completion >= limit:
                    executor.busy = True
                    self._now = cur
                    heappush(events, (
                        completion, batch_seq, K_BATCH,
                        (executor, executor.epoch,
                         [decode_works[hop.stage_index]], elapsed,
                         hop.decode_tl, 1),
                    ))
                    stopped = True
                    break
                if completion > max_time:
                    # The batch started but its completion never pops.
                    executor.busy = True
                    self._now = cur
                    self._halt = True
                    stopped = True
                    break
                stats = executor.stats
                stats.batches += 1
                stats.busy_time += elapsed
                stats.token_layers += hop.decode_tl
                stats.tokens += 1
                if notify:
                    notify_fn(hop.node_id, 1, elapsed)
                pool = hop.pool
                used = pool.used_tokens + 1
                if used > pool.capacity_tokens:
                    pool.overflow_events += 1
                pool.used_tokens = used
                if used > pool.peak_tokens:
                    pool.peak_tokens = used
                owner.done += 1
                # Forward at the completion time.
                num_bytes = token_bytes if hop.final else abpt
                channel = hop.channel
                nf = channel.next_free_time
                start = nf if nf > completion else completion
                queueing = start - completion
                transmission = num_bytes / channel.bandwidth
                end = start + transmission
                channel.next_free_time = end
                channel.bytes_sent += num_bytes
                channel.messages_sent += 1
                channel.total_queueing_delay += queueing
                if queueing > channel.max_queueing_delay:
                    channel.max_queueing_delay = queueing
                cur = end + channel.latency
                forward_seq = seq
                seq += 1
                if cur >= limit:
                    self._now = completion
                    group = _HopGroup(K_TOKEN if hop.final else K_GROUP)
                    group.times.append(cur)
                    group.seqs.append(forward_seq)
                    group.works.append(decode_works[hop.stage_index].next)
                    heappush(
                        events, (cur, forward_seq, group.kind, group)
                    )
                    stopped = True
                    break
                if cur > max_time:
                    # The next arrival (stage or token) never pops.
                    self._now = completion
                    self._halt = True
                    stopped = True
                    break
            if stopped:
                break
            # Token delivered to the coordinator at ``cur``.
            t = cur
            self._now = t
            token_times.append(t)
            record.tokens_generated += 1
            if tenancy is not None:
                tenancy.note_token(tenant_id, t)
            self._last_token_time = t
            timeline.add(t)
            produced += 1
            if record.tokens_generated >= owner.output_len:
                self._seq = seq
                self.fast_forwarded_tokens += produced
                dense = self._dense
                if dense is not None:
                    dense.tg[owner.dense] = record.tokens_generated
                self._finish(owner)
                return
        self._seq = seq
        self.fast_forwarded_tokens += produced
        dense = self._dense
        if dense is not None:
            dense.tg[owner.dense] = record.tokens_generated

    def _vec_fast_forward(self, owner: _ActiveRequest, limit: float) -> int:
        """Macro-step whole decode rounds of a closed window at once.

        Inside a fast-forward window each round applies the same chain of
        float constants — entry transmit, per-hop batch / forward, token
        delivery — to an evolving scalar time. Float addition is not
        associative, so the sequence of token times cannot be collapsed
        into one multiply; instead the chain is *replayed elementwise*:

        1. run ONE reference round in plain float arithmetic (also
           proving every channel starts free, i.e. zero queueing);
        2. extrapolate candidate token times from its delta with one
           ``np.add.accumulate``;
        3. recompute the whole round chain elementwise over the
           candidate start times — each numpy binary add performs the
           identical IEEE operation the scalar loop would — and keep the
           prefix where (a) the chain's output confirms the candidate it
           was seeded from, (b) every channel stays free (its previous
           end at or before its next start, so queueing is exactly
           ``0.0`` and the ``+= 0.0`` / max updates are bit-exact
           no-ops), and (c) the round's final token lands strictly
           before the window limit and within the horizon (the chain is
           nondecreasing inside a round, so the final token bounds every
           intermediate checkpoint).

        The committed prefix is therefore bit-identical to scalar
        execution: token times come from the replayed chain itself (not
        the guess), per-object counter updates collapse into the same
        strict left folds the scalar chain performs (``add.accumulate``
        for float accumulators; integer totals exactly), and the event
        sequence counter advances by the rounds' exact allocation count.
        Returns the tokens produced; the caller's scalar loop handles
        the boundary round (guess misses and saturated channels simply
        end the committed prefix early — correctness never depends on
        the guess being right).
        """
        record = owner.record
        rounds_left = owner.output_len - record.tokens_generated
        entry = owner.entry_channel
        token_bytes = self._token_bytes
        abpt = self._abpt
        hops = owner.hops
        depth = len(hops)
        trans_e = token_bytes / entry.bandwidth
        lat_e = entry.latency
        consts = []
        for hop in hops:
            ch = hop.channel
            nb = token_bytes if hop.final else abpt
            consts.append(
                (hop, ch, nb, nb / ch.bandwidth, ch.latency, hop.decode_time)
            )
        timeline = self._timeline
        token_times = record.token_times
        max_time = self.max_time
        seq_per_round = 1 + 2 * depth
        total = 0
        t = self._now
        while rounds_left - total >= _VEC_MIN:
            # Reference round in plain float arithmetic; numpy scalar
            # adds below perform the identical IEEE operations.
            if entry.next_free_time > t:
                break  # saturated entry: scalar handles the queueing
            cur = (t + trans_e) + lat_e
            free = True
            for _hop, ch, _nb, trans, lat, elapsed in consts:
                completion = cur + elapsed
                if ch.next_free_time > completion:
                    free = False
                    break
                cur = (completion + trans) + lat
            if not free or cur >= limit or cur > max_time:
                break
            t1 = cur
            R = rounds_left - total
            if R > 8192:
                R = 8192
            cand = _np.empty(R)
            cand[0] = t1
            cand[1:] = t1 - t
            guess = _np.add.accumulate(cand)
            starts = _np.empty(R)
            starts[0] = t
            starts[1:] = guess[:-1]
            p = R
            e_end = starts + trans_e
            viol = _np.flatnonzero(e_end[:-1] > starts[1:])
            if viol.size:
                v = int(viol[0]) + 1
                if v < p:
                    p = v
            cur_a = e_end + lat_e
            comps = []
            ends = []
            for _hop, ch, _nb, trans, lat, elapsed in consts:
                comp = cur_a + elapsed
                h_end = comp + trans
                viol = _np.flatnonzero(h_end[:-1] > comp[1:])
                if viol.size:
                    v = int(viol[0]) + 1
                    if v < p:
                        p = v
                comps.append(comp)
                ends.append(h_end)
                cur_a = h_end + lat
            # Round r's chain is seeded from guess[r-1]; the chain output
            # is the truth, so a guess/chain mismatch at r-1 invalidates
            # rounds r onward (round r-1 itself is still exact).
            bad = _np.flatnonzero(cur_a != guess)
            if bad.size:
                v = int(bad[0]) + 1
                if v < p:
                    p = v
            cut = _np.flatnonzero(
                (cur_a[:p] >= limit) | (cur_a[:p] > max_time)
            )
            if cut.size:
                v = int(cut[0])
                if v < p:
                    p = v
            if p < _VEC_MIN:
                break
            # ---- commit p full rounds ----
            tok = cur_a[:p]
            fold = _np.empty(p + 1)
            fold[0] = entry.bytes_sent
            fold[1:] = token_bytes
            entry.bytes_sent = float(_np.add.accumulate(fold)[-1])
            entry.messages_sent += p
            entry.next_free_time = float(e_end[p - 1])
            for (hop, ch, nb, _trans, _lat, elapsed), comp, h_end in zip(
                consts, comps, ends
            ):
                executor = hop.executor
                stats = executor.stats
                stats.batches += p
                fold[0] = stats.busy_time
                fold[1:] = elapsed
                stats.busy_time = float(_np.add.accumulate(fold)[-1])
                # Integer-valued float totals: every partial sum of the
                # scalar chain is integral, so one add is exact.
                stats.token_layers += float(p * hop.decode_tl)
                stats.tokens += float(p)
                hop.pool.charge_run(p)
                fold[0] = ch.bytes_sent
                fold[1:] = nb
                ch.bytes_sent = float(_np.add.accumulate(fold)[-1])
                ch.messages_sent += p
                ch.next_free_time = float(h_end[p - 1])
            owner.done += depth * p
            token_times.extend(tok.tolist())
            record.tokens_generated += p
            timeline.add_many(tok)
            self._seq += seq_per_round * p
            t = float(tok[p - 1])
            self._now = t
            self._last_token_time = t
            total += p
            if p < R:
                break  # cut short: the scalar loop takes over from t
        if total:
            self.fast_forwarded_tokens += total
            self.vec_fast_forwarded_tokens += total
        return total

    def _finish(self, active: _ActiveRequest) -> None:
        record = active.record
        record.finish_time = self._now
        # Recorded on finish, not on schedule: disrupted attempts' pipelines
        # must not contaminate the finished-request depth average.
        self._pipeline_depths.append(active.pipeline.depth)
        for index, hop in enumerate(active.hops):
            hop.pool.free(active.kv_allocated(index))
        active.live = False
        if self._dense is not None:
            self._dense.retire(active.dense)
        del self._active[active.sched_id]
        if self._tenancy is not None:
            self._tenancy.note_release(active.sched_id, self._now)
        self.scheduler.notify_finished(active.sched_id)
        if self._draining:
            self._check_drains()
        self._retry_pending()

    # ------------------------------------------------------------------
    # Online dynamics: failures, repairs, and live replanning
    # ------------------------------------------------------------------
    def _cancel_attempt(self, active: _ActiveRequest) -> None:
        """Kill one attempt without touching its (possibly shared) record.

        Used for hedge losers and abandoned requests: surviving KV charges
        are released, the liveness flip drops every in-flight event, and
        the scheduler forgets the attempt. Unlike :meth:`_requeue` the
        request does not re-enter the pending queue.
        """
        down = self._down_nodes
        silent = self._silent_down
        for index, hop in enumerate(active.hops):
            node_id = hop.node_id
            if node_id not in down and node_id not in silent:
                hop.pool.free(active.kv_allocated(index))
        active.live = False
        self._disrupted = True
        if self._dense is not None:
            self._dense.retire(active.dense)
        del self._active[active.sched_id]
        if self._tenancy is not None:
            self._tenancy.note_release(active.sched_id, self._now)
        self.scheduler.notify_failed(active.sched_id)
        if self._draining:
            self._check_drains()

    def _ttft_check(self, active: _ActiveRequest) -> None:
        """Re-dispatch an attempt that produced no token within the TTFT bound."""
        if not active.live or active.is_hedge:
            return
        if active.record.token_times:
            return
        self._requeue(active, migrated=False)
        self._retry_pending()

    def _deadline_check(self, request_id: str) -> None:
        """Abandon a request that missed its end-to-end deadline."""
        record = self._records.get(request_id)
        if record is None or record.finished or record.shed or record.lost:
            return
        active = self._active.get(request_id)
        if active is not None:
            peer = active.hedge
            if peer is not None:
                active.hedge = None
                peer.hedge = None
                if peer.sched_id in self._active:
                    self._cancel_attempt(peer)
            record.tokens_lost += record.tokens_generated
            record.tokens_generated = 0
            self._cancel_attempt(active)
        else:
            # Waiting in the pending queue (or sitting out a backoff — the
            # re-arm callback checks the lost flag and drops it).
            for request in self._pending:
                if request.request_id == request_id:
                    self._pending.remove(request)
                    break
        record.lost = True
        self._requests_lost += 1
        self._retry_pending()

    def _try_hedge(self, active: _ActiveRequest) -> None:
        """Dispatch a shadow attempt for a first-token-less primary."""
        if not active.live or active.is_hedge or active.hedge is not None:
            return
        record = active.record
        if record.token_times or record.finished:
            return
        hedge_id = active.sched_id + "#hedge"
        if hedge_id in self._active:
            return
        pipeline = self.scheduler.schedule(hedge_id, active.request.input_len)
        if pipeline is None:
            return
        hedge = _ActiveRequest(
            request=active.request, pipeline=pipeline, record=record,
            attempt=active.attempt,
        )
        hedge.sched_id = hedge_id
        hedge.is_hedge = True
        try:
            self._build_hops(hedge)
        except SimulationError:
            self.scheduler.notify_failed(hedge_id)
            return
        dense = self._dense
        if dense is not None:
            hedge.dense = dense.add_row(
                hedge_id, hedge.output_len, hedge.entry_channel,
                hedge.attempt,
            )
        hedge.hedge = active
        active.hedge = hedge
        self._active[hedge_id] = hedge
        if self._tenancy is not None:
            self._tenancy.note_dispatch(
                hedge_id, active.request.tenant_id, self._now
            )
        self._start_prompt(hedge)

    def _requeue(self, active: _ActiveRequest, migrated: bool) -> None:
        """Abort an attempt and send the request back to the pending queue.

        The attempt's tokens become wasted work, its KV charges on
        surviving nodes are released (the failed node's pool was flushed
        wholesale), and the liveness/attempt bump makes every event the old
        attempt still has in flight fall on the floor. Under a lifecycle
        policy the re-dispatch may instead wait out a backoff, or — past
        the retry budget — abandon the request (*lost*).
        """
        peer = active.hedge
        if peer is not None:
            active.hedge = None
            peer.hedge = None
        if active.is_hedge:
            # A shadow attempt dies quietly; the primary (also requeued by
            # the same sweep if it routed through the same node) owns the
            # record and the re-dispatch.
            if active.sched_id in self._active:
                self._cancel_attempt(active)
            return
        if peer is not None and peer.sched_id in self._active:
            self._cancel_attempt(peer)
        record = active.record
        record.tokens_lost += record.tokens_generated
        if migrated:
            record.migrations += 1
        else:
            record.retries += 1
        record.tokens_generated = 0
        record.token_times = []
        record.first_token_time = math.nan
        record.schedule_time = math.nan
        down = self._down_nodes
        silent = self._silent_down
        for index, hop in enumerate(active.hops):
            node_id = hop.node_id
            if node_id not in down and node_id not in silent:
                hop.pool.free(active.kv_allocated(index))
        active.live = False
        self._disrupted = True
        if self._dense is not None:
            self._dense.retire(active.dense)
        del self._active[active.sched_id]
        if self._tenancy is not None:
            self._tenancy.note_release(active.sched_id, self._now)
        self.scheduler.notify_failed(active.sched_id)
        if self._draining:
            self._check_drains()
        policy = self._policy
        if policy is None:
            self._pending.append(active.request)
            return
        attempts = record.retries + record.migrations
        if policy.max_retries is not None and attempts > policy.max_retries:
            record.lost = True
            self._requests_lost += 1
            return
        delay = policy.retry_delay(active.request_id, attempts)
        if delay <= 0:
            self._pending.append(active.request)
            return
        self._backoff_waiting += 1

        def rearm(sim, request=active.request, record=record):
            sim._backoff_waiting -= 1
            if record.lost or record.shed or record.finished:
                return
            sim._pending.append(request)
            sim._retry_pending()

        self.schedule_event(self._now + delay, rearm)

    def fail_node(self, node_id: str, announce: bool = True) -> list[str]:
        """A node crashes: its KV state is lost and its work fails.

        With ``announce`` (the default) everything happens at once:
        queued stage work is dropped, the in-flight batch (if any) never
        completes, every request whose pipeline routes through the node
        is requeued for a fresh scheduling attempt on the surviving
        topology, and the scheduler masks the node until
        :meth:`restore_node`.

        With ``announce=False`` only the *physical* half happens — the
        node stops computing and blackholes everything sent to it — while
        the control plane stays oblivious: the scheduler keeps routing
        there and in-flight requests stall. That limbo ends when a
        failure detector calls :meth:`confirm_node_failure` (or the
        environment heals the node). This is the silent-crash gray
        failure.

        Returns the ids of the requeued requests (empty when silent).
        """
        self.cluster.node(node_id)  # referential check
        if node_id in self._down_nodes:
            return []
        executor = self.executors.get(node_id)
        pool = self.kv_pools.get(node_id)
        if not announce:
            if node_id in self._silent_down:
                return []
            self._zombie_nodes.discard(node_id)
            self._silent_down.add(node_id)
            self._fault_times.setdefault(node_id, self._now)
            if self._residency is not None:
                # The crash wipes VRAM; the control plane learns when the
                # failure is confirmed, but the physics happens now.
                self._residency.flush(node_id)
            if executor is not None:
                executor.epoch += 1
                executor.queue.clear()
                executor.queue_tokens = 0
                executor.queue_tl = 0
                # A permanently-busy executor is a blackhole: arrivals
                # enqueue forever and no batch of the new epoch ever runs.
                executor.busy = True
            if pool is not None:
                pool.used_tokens = 0  # KV state is gone
            return []
        self._silent_down.discard(node_id)
        self._zombie_nodes.discard(node_id)
        self._fault_times.pop(node_id, None)
        self._abort_drain(node_id)
        if self._residency is not None:
            self._residency.flush(node_id)
            self.scheduler.mark_node_warm(node_id)
        self.cluster.set_node_available(node_id, False)
        self._down_nodes.add(node_id)
        self._disrupted = True
        self.scheduler.mark_node_down(node_id)

        if executor is not None:
            executor.epoch += 1
            executor.queue.clear()
            executor.queue_tokens = 0
            executor.queue_tl = 0
            executor.busy = False
        if pool is not None:
            pool.used_tokens = 0  # KV state is gone

        requeued = [
            rid
            for rid, active in self._active.items()
            if node_id in active.pipeline.node_ids
        ]
        for rid in requeued:
            active = self._active.get(rid)
            if active is not None:  # hedge peers vanish with their primary
                self._requeue(active, migrated=False)
        self._retry_pending()
        return requeued

    def confirm_node_failure(self, node_id: str) -> float:
        """A detector confirms a silently-failed/zombie (or healthy) node dead.

        Completes the control-plane half that ``fail_node(announce=False)``
        or :meth:`make_zombie` withheld: the scheduler masks the node,
        stalled requests through it are requeued, and the node's token
        counter is snapshotted — a confirmed-dead node must never emit
        another token (the chaos invariants assert it).

        Returns the detection latency (confirmation time minus the true
        fault onset), or NaN for a false positive: confirming a healthy
        node takes it down all the same, which is exactly the cost a
        trigger-happy detector pays.
        """
        self.cluster.node(node_id)
        if node_id in self._down_nodes:
            return math.nan
        fault_time = self._fault_times.get(node_id)
        self._silent_down.discard(node_id)
        self._zombie_nodes.discard(node_id)
        self._abort_drain(node_id)
        if self._residency is not None:
            self._residency.flush(node_id)
            self.scheduler.mark_node_warm(node_id)
        self.cluster.set_node_available(node_id, False)
        self._down_nodes.add(node_id)
        self._disrupted = True
        self.scheduler.mark_node_down(node_id)
        executor = self.executors.get(node_id)
        if executor is not None:
            executor.epoch += 1
            executor.queue.clear()
            executor.queue_tokens = 0
            executor.queue_tl = 0
            executor.busy = False
            self._confirmed_dead_marks[node_id] = executor.stats.tokens
        pool = self.kv_pools.get(node_id)
        if pool is not None:
            pool.used_tokens = 0
        requeued = [
            rid
            for rid, active in self._active.items()
            if node_id in active.pipeline.node_ids
        ]
        for rid in requeued:
            active = self._active.get(rid)
            if active is not None:
                self._requeue(active, migrated=False)
        self._retry_pending()
        if fault_time is None:
            return math.nan
        return self._now - fault_time

    def make_zombie(self, node_id: str) -> None:
        """A node wedges: it accepts work (and heartbeats) but never finishes.

        The in-flight batch goes stale, the queue keeps accumulating
        arrivals, and — unlike a crash — the KV pool keeps its contents
        (the process is alive, its memory intact). Heartbeat-only
        detectors never notice; a progress watchdog or the stalled
        requests' TTFT timeouts do.
        """
        self.cluster.node(node_id)
        if (
            node_id in self._down_nodes
            or node_id in self._silent_down
            or node_id in self._zombie_nodes
        ):
            return
        self._zombie_nodes.add(node_id)
        self._fault_times.setdefault(node_id, self._now)
        executor = self.executors.get(node_id)
        if executor is not None:
            executor.epoch += 1  # the running batch never completes
            executor.busy = True  # accepts arrivals, never starts a batch

    def set_compute_slowdown(self, node_id: str, factor: float) -> None:
        """A node silently computes ``factor`` times slower (1.0 = healthy).

        Nothing is announced: the scheduler keeps its cost model and the
        planner its constants — exactly the straggler gray failure. Hop
        tables of live attempts re-cache the node's decode time so future
        iterations (including fast-forwarded ones) price correctly.
        """
        if factor <= 0:
            raise SimulationError(
                f"slowdown factor must be positive, got {factor}"
            )
        self.cluster.node(node_id)
        executor = self.executors.get(node_id)
        if executor is None:
            raise SimulationError(
                f"node {node_id!r} holds no layers; cannot straggle"
            )
        executor.set_slowdown(factor)
        for active in self._active.values():
            for hop in active.hops:
                if hop.executor is executor:
                    hop.decode_time = (
                        hop.decode_tl / executor.compute_rate
                        + executor.weights_time
                        + executor.overhead
                    )

    def set_link_flaky(
        self,
        src: str,
        dst: str,
        drop_probability: float,
        retransmit_delay: float,
        bidirectional: bool = True,
    ) -> None:
        """A link turns lossy: each message may pay retransmit delays.

        Attaches a seeded :class:`~repro.online.faults.LinkFault` to the
        channel(s) and latches the simulation into gray mode (per-hop
        events; see ``_gray``). Data messages are delayed, never lost;
        heartbeats crossing the link may be dropped outright.
        """
        from repro.online.faults import LinkFault

        self.cluster.link(src, dst)  # referential check
        keys = [(src, dst)]
        if bidirectional and self.cluster.has_link(dst, src):
            keys.append((dst, src))
        for key in keys:
            channel = self.channels.get(key)
            if channel is None:
                raise SimulationError(
                    f"no channel {key[0]!r}->{key[1]!r} to make flaky"
                )
            channel.fault = LinkFault(
                drop_probability,
                retransmit_delay,
                seed=f"repro-flaky:{self.seed}:{key[0]}:{key[1]}",
            )
        self._gray = True

    def clear_link_flaky(
        self, src: str, dst: str, bidirectional: bool = True
    ) -> None:
        """A flaky link heals.

        Once the *last* live fault object is gone, gray mode unlatches:
        coalescing, vectorization, and the fast-forward come back on. That
        is safe because fault delays only perturb *future* arrivals —
        everything already in the heap was priced when its fault (if any)
        was live, and with no fault remaining, new hop groups are sorted
        again. A differential test asserts post-heal timelines are
        unchanged against a per-hop run.
        """
        keys = [(src, dst)]
        if bidirectional:
            keys.append((dst, src))
        for key in keys:
            channel = self.channels.get(key)
            if channel is not None:
                channel.fault = None
        if self._gray and all(
            channel.fault is None for channel in self.channels.values()
        ):
            self._gray = False

    def restore_node(self, node_id: str) -> None:
        """A failed node rejoins (cold: empty KV, empty queue)."""
        self.cluster.node(node_id)
        if node_id in self._silent_down or node_id in self._zombie_nodes:
            # The environment healed an undetected fault. Surface it as a
            # confirmation first — stalled requests requeue, state resets —
            # then fall through to the normal rejoin.
            self.confirm_node_failure(node_id)
        if node_id not in self._down_nodes:
            return
        self._fault_times.pop(node_id, None)
        mark = self._confirmed_dead_marks.pop(node_id, None)
        if mark is not None:
            executor = self.executors.get(node_id)
            if executor is not None and executor.stats.tokens != mark:
                self._dead_node_breaches.append(node_id)
        self.cluster.set_node_available(node_id, True)
        self._down_nodes.discard(node_id)
        self.scheduler.mark_node_up(node_id)
        pool = self.kv_pools.get(node_id)
        if pool is not None:
            pool.used_tokens = 0
        if self._residency is not None and self.placement.holds_layers(node_id):
            # Recovery is not free: the node must pull its assigned layers
            # before it can serve (no-op if they are still resident — a
            # drained warm spare rejoins instantly).
            self._warm_node(node_id)
        self._retry_pending()

    # ------------------------------------------------------------------
    # Graceful drain
    # ------------------------------------------------------------------
    def drain_node(
        self, node_id: str, on_complete: Callable | None = None
    ) -> None:
        """Gracefully remove a node: finish in-flight work, lose nothing.

        The scheduler stops routing *new* pipelines through the node
        immediately (and replans exclude it — its cluster availability
        flips), but every attempt already routed through it runs to
        completion. When the last one finishes, the node leaves service
        for real: it joins the down set, its executor quiesces, its KV
        accounting is released (a clean drain releases zero — everything
        was freed by the finishing requests), a :class:`DrainRecord` lands
        in :attr:`drain_log`, and ``on_complete(sim)`` fires. Resident
        layers are *retained*: a drained node is a warm spare that can
        rejoin without re-pulling weights.

        Draining a silently-dead or zombie node cannot be graceful — it is
        surfaced as a failure confirmation instead.
        """
        self.cluster.node(node_id)
        if node_id in self._down_nodes or node_id in self._draining:
            return
        if node_id in self._silent_down or node_id in self._zombie_nodes:
            self.confirm_node_failure(node_id)
            return
        self._draining.add(node_id)
        self._drain_started[node_id] = self._now
        if on_complete is not None:
            self._drain_waiters[node_id] = on_complete
        self.scheduler.mark_node_down(node_id)
        self.cluster.set_node_available(node_id, False)
        self._check_drains()

    def _check_drains(self) -> None:
        """Finalize every draining node with no remaining in-flight work."""
        for node_id in sorted(self._draining):
            for active in self._active.values():
                if node_id in active.pipeline.node_ids:
                    break
            else:
                self._finalize_drain(node_id)

    def _finalize_drain(self, node_id: str) -> None:
        started = self._drain_started.pop(node_id, self._now)
        waiter = self._drain_waiters.pop(node_id, None)
        self._draining.discard(node_id)
        self._down_nodes.add(node_id)
        executor = self.executors.get(node_id)
        if executor is not None:
            executor.epoch += 1
            executor.queue.clear()
            executor.queue_tokens = 0
            executor.queue_tl = 0
            executor.busy = False
        kv_leaked = 0
        pool = self.kv_pools.get(node_id)
        if pool is not None:
            kv_leaked = pool.used_tokens
            pool.used_tokens = 0
        self.drain_log.append(
            DrainRecord(node_id, started, self._now, kv_leaked)
        )
        if waiter is not None:
            waiter(self)

    def _abort_drain(self, node_id: str) -> None:
        """A crash supersedes an in-progress drain (no DrainRecord)."""
        self._draining.discard(node_id)
        self._drain_started.pop(node_id, None)
        self._drain_waiters.pop(node_id, None)

    # ------------------------------------------------------------------
    # Layer residency: warm-up pulls and eviction
    # ------------------------------------------------------------------
    def _warm_node(self, node_id: str) -> None:
        """Pull the node's missing assigned layers through the network.

        Each missing layer is one weight transfer on a real link channel
        — from a peer that holds the layer resident when one is reachable,
        else from the coordinator (the weight store) — so warm-up traffic
        queues behind (and delays) inference activations on shared links.
        The node is masked ``warming`` until the last transfer lands.
        Already-resident layers cost nothing; surplus layers are evicted
        when the VRAM layer budget would overflow.
        """
        res = self._residency
        stage = self.placement.interval(node_id)
        needed = set(range(stage.start, stage.end))
        missing = sorted(needed - res.layers_of(node_id))
        if not missing:
            if res.is_warming(node_id):
                res.cancel(node_id)
            self.scheduler.mark_node_warm(node_id)
            return
        if res.is_warming(node_id) and res.pending_layers(node_id) == tuple(
            missing
        ):
            return  # the in-flight pull already covers exactly this need
        budget = self.profiler.max_layers(self.cluster.node(node_id), self.model)
        res.evict_for(node_id, needed, budget, self._now)
        layer_bytes = res.layer_bytes
        now = self._now
        gray = self._gray
        sources: list[str] = []
        latest = now
        for layer in missing:
            src, channel = self._weight_source(node_id, layer)
            sources.append(src)
            arrival = channel.transmit(now, layer_bytes)
            if gray:
                fault = channel.fault
                if fault is not None:
                    arrival += fault.delay()
            if arrival > latest:
                latest = arrival
        token = res.begin(
            node_id, tuple(missing), now,
            layer_bytes * len(missing), tuple(sorted(set(sources))),
        )
        self.scheduler.mark_node_warming(node_id)
        self.schedule_event(
            latest,
            lambda s, nid=node_id, tok=token: s._finish_warmup(nid, tok),
        )

    def _weight_source(self, node_id: str, layer: int):
        """Pick where one layer is pulled from: a resident peer, else the
        coordinator (which stands in for the persistent weight store)."""
        res = self._residency
        for src in sorted(res.resident):
            if src == node_id:
                continue
            if (
                src in self._down_nodes
                or src in self._silent_down
                or src in self._zombie_nodes
                or src in self._draining
            ):
                continue
            if layer in res.resident[src]:
                channel = self.channels.get((src, node_id))
                if channel is not None:
                    return src, channel
        channel = self.channels.get((COORDINATOR, node_id))
        if channel is None:
            raise SimulationError(
                f"no channel to pull weights into {node_id!r}: no resident "
                "peer link and no coordinator link"
            )
        return COORDINATOR, channel

    def _finish_warmup(self, node_id: str, token: int) -> None:
        """The last weight transfer landed: the node becomes schedulable."""
        res = self._residency
        if res is None or not res.still_valid(node_id, token):
            return  # superseded by a newer pull, a crash, or a replan
        if node_id in self._down_nodes or node_id in self._silent_down:
            return
        res.complete(node_id, self._now)
        self.scheduler.mark_node_warm(node_id)
        self._retry_pending()

    def _sync_residency(self) -> None:
        """Reconcile residency with a just-applied placement.

        Warming pulls for nodes that lost their assignment are abandoned;
        every (reachable) node the new placement uses warms toward its
        assigned interval — instantly schedulable when already resident.
        """
        res = self._residency
        placement = self.placement
        for node_id in sorted(res.warming_nodes):
            if not placement.holds_layers(node_id):
                res.cancel(node_id)
                self.scheduler.mark_node_warm(node_id)
        for node_id in placement.used_nodes:
            if (
                node_id in self._down_nodes
                or node_id in self._silent_down
                or node_id in self._zombie_nodes
                or node_id in self._draining
            ):
                continue
            self._warm_node(node_id)

    def degrade_link(
        self, src: str, dst: str, factor: float, bidirectional: bool = True
    ) -> None:
        """Scale a link's bandwidth to ``factor`` of its original value.

        Affects every future transmission (in-flight messages keep their
        already-computed arrival times, like packets already on the wire)
        and, through :meth:`~repro.flow.graph.FlowGraph.refresh_links`, the
        flow capacities the next replanning sees. ``factor`` is relative to
        the link's *original* bandwidth, so repeated degradations do not
        compound; :meth:`restore_link` resets it. With ``bidirectional``
        the reverse direction is degraded too when it exists (links may be
        asymmetric).
        """
        if factor <= 0:
            raise SimulationError(
                f"degradation factor must be positive, got {factor} "
                "(sever connectivity by failing nodes instead)"
            )
        self.cluster.link(src, dst)  # referential check before mutating
        keys = [(src, dst)]
        if bidirectional and self.cluster.has_link(dst, src):
            keys.append((dst, src))
        for key in keys:
            base = self._base_bandwidth.setdefault(
                key, self.cluster.link(*key).bandwidth
            )
            link = self.cluster.set_link_bandwidth(*key, base * factor)
            channel = self.channels.get(key)
            if channel is not None:
                channel.set_link(link)

    def restore_link(
        self, src: str, dst: str, bidirectional: bool = True
    ) -> None:
        """Restore a degraded link to its original bandwidth."""
        keys = [(src, dst)]
        if bidirectional:
            keys.append((dst, src))
        for key in keys:
            base = self._base_bandwidth.pop(key, None)
            if base is None:
                continue
            link = self.cluster.set_link_bandwidth(*key, base)
            channel = self.channels.get(key)
            if channel is not None:
                channel.set_link(link)

    def _attempt_survives(
        self, pipeline: RequestPipeline, placement, rebound: set[str]
    ) -> bool:
        """Whether an in-flight pipeline is still executable.

        A pipeline dies if any of its nodes is down, left the placement, or
        is about to be *re-bound* (its layer interval changed, so its
        executor and KV pool are replaced — queued and in-flight work there
        would vanish with the old executor). A node that is up, still
        placed, and not re-bound holds the exact interval the pipeline was
        built against, so no further stage check is needed. Draining nodes
        are exempt from every check: the whole point of a graceful drain
        is that in-flight pipelines through the node run to completion.
        """
        draining = self._draining
        for stage in pipeline.stages:
            if stage.node_id in draining:
                continue
            if stage.node_id in self._down_nodes:
                return False
            if stage.node_id in rebound:
                return False
            if not placement.holds_layers(stage.node_id):
                return False
        return True

    def apply_placement(self, placement, flow=None) -> list[str]:
        """Hot-swap a replanned placement (and flow) into the live run.

        Requests whose pipelines survive the swap — every stage node still
        up, still holding the same layer interval — keep draining
        untouched. The rest are *migrated*: requeued for scheduling under
        the new placement. Nodes entering service get executors and KV
        pools; nodes whose layer interval changed are re-bound (their
        resident weights are reloaded, which also resets their KV pool —
        every request with state there is migrated first).

        Returns the ids of migrated requests.
        """
        placement.validate()
        if flow is not None and flow.max_flow <= 0:
            # Reject before mutating: the scheduler would refuse this flow
            # anyway, and by then requests would already be requeued and
            # executors rebound against a placement it never adopted.
            raise SimulationError(
                "flow solution carries no flow; refusing to hot-swap"
            )
        old_placement = self.placement
        rebound: set[str] = set()
        for node_id in placement.used_nodes:
            if node_id not in self.executors:
                continue  # entering service: no in-flight state to protect
            old_stage = (
                old_placement.interval(node_id)
                if old_placement.holds_layers(node_id)
                else None
            )
            stage = placement.interval(node_id)
            if old_stage is None or (old_stage.start, old_stage.end) != (
                stage.start, stage.end
            ):
                rebound.add(node_id)

        migrated = []
        for rid, active in list(self._active.items()):
            if rid not in self._active:
                continue  # a hedge peer cancelled earlier in this sweep
            if not self._attempt_survives(active.pipeline, placement, rebound):
                migrated.append(rid)
                self._requeue(active, migrated=True)

        self.placement = placement
        for node_id in placement.used_nodes:
            if node_id not in self.executors or node_id in rebound:
                self._bind_node(node_id)  # bumps the old executor's epoch
        # Nodes leaving service quiesce like failed ones: queued stage work
        # is dropped and the in-flight batch (if any) goes stale, so they
        # stop accruing utilization and scheduler progress. Their executors
        # and KV pools stay registered for run-level statistics.
        for node_id in old_placement.used_nodes:
            if placement.holds_layers(node_id):
                continue
            if node_id in self._draining:
                # A draining node quiesces when its last in-flight attempt
                # finishes (_finalize_drain), not here — a hard quiesce now
                # would drop the very batches the drain promised to finish.
                continue
            executor = self.executors.get(node_id)
            if executor is not None:
                executor.epoch += 1
                executor.queue.clear()
                executor.queue_tokens = 0
                executor.queue_tl = 0
                executor.busy = False
        # A joined node brings new links; give them channels.
        for key, link in self.cluster.links.items():
            if key not in self.channels:
                self.channels[key] = LinkChannel(link)

        self.scheduler.apply_placement(placement, flow=flow)
        if self._residency is not None:
            self._sync_residency()
        self._retry_pending()
        return migrated

    # ------------------------------------------------------------------
    # Introspection for tests and case studies
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def down_nodes(self) -> set[str]:
        """Nodes currently failed."""
        return set(self._down_nodes)

    @property
    def silent_down_nodes(self) -> set[str]:
        """Nodes physically dead but not yet confirmed by any detector."""
        return set(self._silent_down)

    @property
    def draining_nodes(self) -> set[str]:
        """Nodes finishing in-flight work before leaving service."""
        return set(self._draining)

    @property
    def residency(self):
        """The layer-residency ledger, or ``None`` when disabled."""
        return self._residency

    @property
    def warming_nodes(self) -> set[str]:
        """Nodes mid-warm-up (pulling weights, unschedulable)."""
        if self._residency is None:
            return set()
        return self._residency.warming_nodes

    @property
    def zombie_nodes(self) -> set[str]:
        """Nodes accepting work (and heartbeating) without making progress."""
        return set(self._zombie_nodes)

    @property
    def fault_times(self) -> dict[str, float]:
        """Ground-truth onset time of every un-restored gray fault."""
        return dict(self._fault_times)

    @property
    def requests_shed(self) -> int:
        """Arrivals rejected by admission control."""
        return self._requests_shed

    @property
    def requests_lost(self) -> int:
        """Requests abandoned (deadline missed or retry budget exhausted)."""
        return self._requests_lost

    @property
    def in_flight_requests(self) -> int:
        """Requests neither finished, shed, nor lost: active attempts
        (hedge shadows excluded — they share a primary), the pending
        queue, and requests waiting out a retry backoff."""
        active = sum(1 for a in self._active.values() if not a.is_hedge)
        return active + len(self._pending) + self._backoff_waiting

    def dead_node_token_violations(self) -> list[str]:
        """Confirmed-dead nodes whose token counter moved afterwards."""
        bad = list(self._dead_node_breaches)
        for node_id, mark in self._confirmed_dead_marks.items():
            executor = self.executors.get(node_id)
            if executor is not None and executor.stats.tokens != mark:
                bad.append(node_id)
        return bad

    @property
    def pending_requests(self) -> int:
        """Requests waiting in the pending queue."""
        return len(self._pending)

    @property
    def token_timeline(self) -> list[float]:
        """Emission times of every token the system produced, in order.

        Unlike per-request records (reset when an attempt is disrupted),
        this global timeline is append-only: tokens emitted by an attempt
        that later failed stay in it. It is stored in fixed-width buckets
        (``timeline_resolution`` wide), so this derived view reports each
        token at its bucket's start time; memory stays bounded by the
        simulated horizon instead of growing with the token count. Feeding
        it to :func:`~repro.sim.metrics.goodput_timeline` with any window
        that is a multiple of the resolution yields exactly the same
        windowed goodput as the exact times — including the dip around a
        failure and the recovery after replanning.
        """
        return self._timeline.times()

    @property
    def token_buckets(self) -> list[int]:
        """Raw token counts per ``timeline_resolution``-wide bucket."""
        return self._timeline.bucket_counts()

    @property
    def timeline_resolution(self) -> float:
        """Bucket width of the token timeline, in seconds."""
        return self._timeline.resolution

    @property
    def tokens_emitted(self) -> int:
        """Total tokens the system produced (including disrupted attempts)."""
        return self._timeline.count

    @property
    def engine_stats(self) -> dict[str, int]:
        """Hot-loop telemetry: events popped, grouped hops, fast-forwards,
        and the batch engine's wide-path counters (always present, zero
        under the hop engine)."""
        return {
            "events_popped": self.events_popped,
            "grouped_hops": self.grouped_hops,
            "fast_forwarded_tokens": self.fast_forwarded_tokens,
            "vectorized_tokens": self.vectorized_tokens,
            "vec_fast_forwarded_tokens": self.vec_fast_forwarded_tokens,
            "group_fast_forwards": self.group_fast_forwards,
        }

    @property
    def records(self) -> list[RequestRecord]:
        """Records of every request that has arrived so far."""
        return list(self._records.values())

    @property
    def tenancy(self):
        """The run's :class:`~repro.tenancy.manager.TenantManager`
        (``None`` in the single-tenant default configuration)."""
        return self._tenancy

    def kv_usage_by_tenant(self) -> dict[str, dict[str, int]]:
        """KV tokens currently allocated, as ``node_id -> tenant -> tokens``.

        Derived from the per-attempt ``kv_allocated`` counters of every
        in-flight attempt, so by construction each node's per-tenant sum
        equals what those attempts charged to its pool — the tenancy
        invariant compares this against ``pool.used_tokens`` live.
        """
        usage: dict[str, dict[str, int]] = {}
        for active in self._active.values():
            tenant_id = active.request.tenant_id
            for index, hop in enumerate(active.hops):
                allocated = active.kv_allocated(index)
                if allocated:
                    per_node = usage.setdefault(hop.node_id, {})
                    per_node[tenant_id] = (
                        per_node.get(tenant_id, 0) + allocated
                    )
        return usage

    def record_of(self, request_id: str) -> RequestRecord:
        """Per-request record (available after the run)."""
        return self._records[request_id]

    def congestion_report(self, top: int = 5) -> list[tuple[str, str, float]]:
        """Links with the largest mean queueing delay (src, dst, seconds)."""
        ranked = sorted(
            (
                (key[0], key[1], channel.mean_queueing_delay)
                for key, channel in self.channels.items()
                if channel.messages_sent > 0
            ),
            key=lambda row: -row[2],
        )
        return ranked[:top]
