"""The discrete-event serving simulation.

One :class:`Simulation` wires together a cluster, a model placement, a
scheduler, and a request trace, then plays the serving system forward:

1. A request arrives at the coordinator and asks the scheduler for a
   per-request pipeline; if every candidate node is KV-masked it waits in
   a pending queue and is retried whenever capacity frees up (§5.2).
2. The prompt iteration ships the prompt (token ids) to the first stage,
   each stage computes its layers and forwards activations, and the last
   stage returns the first output token to the coordinator.
3. Each subsequent decode iteration re-enters the same pipeline from the
   coordinator (§5's runtime design) until ``output_len`` tokens exist.

Nodes batch dynamically (everything queued joins the next batch), links
are FIFO bandwidth/latency queues, and KV pools track true occupancy.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import COORDINATOR
from repro.cluster.profiler import Profiler
from repro.core.errors import SimulationError
from repro.models.specs import ModelSpec
from repro.scheduling.base import Scheduler
from repro.scheduling.pipelines import RequestPipeline
from repro.sim.kv_cache import KVCachePool
from repro.sim.metrics import RequestRecord, ServingMetrics, aggregate_metrics
from repro.sim.network_sim import LinkChannel
from repro.sim.node_exec import NodeExecutor, StageWork
from repro.sim.request import Request


@dataclass
class _ActiveRequest:
    request: Request
    pipeline: RequestPipeline
    record: RequestRecord
    iterations_started: int = 0  # 1 = prompt, then decode iterations
    kv_tokens_per_node: int = 0


class Simulation:
    """Simulate serving a request trace on a placed cluster.

    Args:
        cluster: The serving cluster.
        model: The served model.
        placement: Model placement in effect.
        scheduler: A configured scheduler (Helix, Swarm, random, ...).
        requests: The trace, sorted or not by arrival time.
        profiler: Timing model; must match the one used for planning.
        max_batch_tokens: Per-batch token cap on every node (bounds the
            batch latency of flooded offline runs).
        max_time: Simulation horizon in seconds; events beyond it are not
            processed.
        warmup: Seconds excluded from the measurement window.
    """

    def __init__(
        self,
        cluster: Cluster,
        model: ModelSpec,
        placement,
        scheduler: Scheduler,
        requests: list[Request],
        profiler: Profiler | None = None,
        max_batch_tokens: int | None = 16384,
        max_time: float = 3600.0,
        warmup: float = 0.0,
    ) -> None:
        if not requests:
            raise SimulationError("request trace is empty")
        self.cluster = cluster
        self.model = model
        self.placement = placement
        self.scheduler = scheduler
        self.profiler = profiler or Profiler()
        self.max_time = max_time
        self.warmup = warmup

        self.requests = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        self.executors: dict[str, NodeExecutor] = {}
        self.kv_pools: dict[str, KVCachePool] = {}
        for node_id in placement.used_nodes:
            node = cluster.node(node_id)
            stage = placement.interval(node_id)
            self.executors[node_id] = NodeExecutor(
                node, model, self.profiler, stage.num_layers, max_batch_tokens
            )
            self.kv_pools[node_id] = KVCachePool(
                node_id=node_id,
                capacity_tokens=self.profiler.kv_capacity(
                    node, model, stage.num_layers
                ),
            )
        self.channels: dict[tuple[str, str], LinkChannel] = {
            key: LinkChannel(link) for key, link in cluster.links.items()
        }

        self._events: list[tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._active: dict[str, _ActiveRequest] = {}
        self._pending: deque[Request] = deque()
        self._records: dict[str, RequestRecord] = {}
        self._pipeline_depths: list[int] = []
        self._last_token_time = 0.0

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, when: float, kind: str, payload: object) -> None:
        if when < self._now - 1e-9:
            raise SimulationError(
                f"event {kind!r} scheduled in the past ({when} < {self._now})"
            )
        heapq.heappush(self._events, (when, next(self._seq), kind, payload))

    def run(self) -> ServingMetrics:
        """Play the trace and return aggregate metrics."""
        for request in self.requests:
            self._push(request.arrival_time, "arrival", request)

        while self._events:
            when, _, kind, payload = heapq.heappop(self._events)
            if when > self.max_time:
                break
            self._now = when
            if kind == "arrival":
                self._on_arrival(payload)
            elif kind == "stage":
                self._on_stage_arrival(*payload)
            elif kind == "batch":
                self._on_batch_complete(*payload)
            elif kind == "token":
                self._on_token(payload)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

        end_time = min(self._now, self.max_time)
        end_time = max(end_time, self.warmup + 1e-9)
        return aggregate_metrics(
            records=list(self._records.values()),
            warmup=self.warmup,
            end_time=end_time,
            kv_overflow_events=sum(
                pool.overflow_events for pool in self.kv_pools.values()
            ),
            pipeline_depths=self._pipeline_depths,
        )

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def _on_arrival(self, request: Request) -> None:
        record = RequestRecord(
            request_id=request.request_id,
            input_len=request.input_len,
            output_len=request.output_len,
            arrival_time=request.arrival_time,
        )
        self._records[request.request_id] = record
        if not self._try_schedule(request):
            self._pending.append(request)

    def _try_schedule(self, request: Request) -> bool:
        pipeline = self.scheduler.schedule(request.request_id, request.input_len)
        if pipeline is None:
            return False
        record = self._records[request.request_id]
        record.schedule_time = self._now
        active = _ActiveRequest(request=request, pipeline=pipeline, record=record)
        self._active[request.request_id] = active
        self._pipeline_depths.append(pipeline.depth)
        self._start_iteration(active, is_prompt=True)
        return True

    def _retry_pending(self) -> None:
        while self._pending:
            request = self._pending[0]
            if not self._try_schedule(request):
                return
            self._pending.popleft()

    def _start_iteration(self, active: _ActiveRequest, is_prompt: bool) -> None:
        active.iterations_started += 1
        first_node = active.pipeline.stages[0].node_id
        num_tokens = active.request.input_len if is_prompt else 1
        message_bytes = num_tokens * self.model.token_bytes
        arrival = self._transmit(COORDINATOR, first_node, message_bytes)
        self._push(arrival, "stage", (active.request.request_id, 0, is_prompt))

    def _transmit(self, src: str, dst: str, num_bytes: float) -> float:
        channel = self.channels.get((src, dst))
        if channel is None:
            raise SimulationError(f"no link {src!r}->{dst!r} for transmission")
        return channel.transmit(self._now, num_bytes)

    def _on_stage_arrival(
        self, request_id: str, stage_index: int, is_prompt: bool
    ) -> None:
        active = self._active.get(request_id)
        if active is None:
            raise SimulationError(f"stage arrival for unknown request {request_id!r}")
        stage = active.pipeline.stages[stage_index]
        num_tokens = active.request.input_len if is_prompt else 1
        work = StageWork(
            request_id=request_id,
            stage_index=stage_index,
            num_tokens=num_tokens,
            num_layers=stage.num_layers,
            is_prompt=is_prompt,
        )
        executor = self.executors[stage.node_id]
        executor.enqueue(work)
        if not executor.busy:
            self._start_batch(stage.node_id)

    def _start_batch(self, node_id: str) -> None:
        executor = self.executors[node_id]
        batch = executor.take_batch()
        if not batch:
            executor.busy = False
            return
        executor.busy = True
        elapsed = executor.batch_time(batch)
        self._push(self._now + elapsed, "batch", (node_id, batch, elapsed))

    def _on_batch_complete(
        self, node_id: str, batch: list[StageWork], elapsed: float
    ) -> None:
        executor = self.executors[node_id]
        executor.busy = False
        executor.record_batch(batch, elapsed)
        tokens = sum(work.num_tokens for work in batch)
        self.scheduler.notify_node_progress(node_id, tokens, elapsed)

        for work in batch:
            active = self._active.get(work.request_id)
            if active is None:
                continue  # finished early under max_time truncation
            # KV grows on this node: the whole prompt once, then one token
            # per decode iteration.
            self.kv_pools[node_id].allocate(work.num_tokens)
            next_index = work.stage_index + 1
            if next_index < active.pipeline.depth:
                next_node = active.pipeline.stages[next_index].node_id
                size = work.num_tokens * self.model.activation_bytes_per_token
                arrival = self._transmit(node_id, next_node, size)
                self._push(
                    arrival,
                    "stage",
                    (work.request_id, next_index, work.is_prompt),
                )
            else:
                arrival = self._transmit(
                    node_id, COORDINATOR, self.model.token_bytes
                )
                self._push(arrival, "token", work.request_id)

        if executor.has_work():
            self._start_batch(node_id)

    def _on_token(self, request_id: str) -> None:
        active = self._active.get(request_id)
        if active is None:
            raise SimulationError(f"token for unknown request {request_id!r}")
        record = active.record
        if not record.token_times:
            record.first_token_time = self._now
        record.token_times.append(self._now)
        record.tokens_generated += 1
        self._last_token_time = self._now

        if record.tokens_generated >= active.request.output_len:
            self._finish(active)
        else:
            self._start_iteration(active, is_prompt=False)

    def _finish(self, active: _ActiveRequest) -> None:
        record = active.record
        record.finish_time = self._now
        # Each pipeline node stored the prompt plus one token per decode
        # iteration processed there.
        tokens_per_node = active.request.input_len + (active.iterations_started - 1)
        for stage in active.pipeline.stages:
            self.kv_pools[stage.node_id].free(tokens_per_node)
        del self._active[active.request.request_id]
        self.scheduler.notify_finished(active.request.request_id)
        self._retry_pending()

    # ------------------------------------------------------------------
    # Introspection for tests and case studies
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def record_of(self, request_id: str) -> RequestRecord:
        """Per-request record (available after the run)."""
        return self._records[request_id]

    def congestion_report(self, top: int = 5) -> list[tuple[str, str, float]]:
        """Links with the largest mean queueing delay (src, dst, seconds)."""
        ranked = sorted(
            (
                (key[0], key[1], channel.mean_queueing_delay)
                for key, channel in self.channels.items()
                if channel.messages_sent > 0
            ),
            key=lambda row: -row[2],
        )
        return ranked[:top]
