"""Frozen pre-overhaul event engine, kept as a differential oracle.

This is the per-(request, stage, token)-hop event loop the simulator
shipped before the hot-path overhaul: one string-keyed heap event per hop,
``Profiler`` consulted per batch, per-token timeline appends. It is kept
verbatim (modulo the class rename) for two jobs:

* **Differential oracle** — ``repro.testkit`` replays scenario addresses
  through both engines and requires exactly equal serving metrics and
  per-request token times (the overhaul must not change any observable
  metric).
* **Benchmark baseline** — ``benchmarks/bench_perf_sim.py`` measures the
  overhauled engine's simulated-tokens-per-wall-second against this
  engine on the same scenarios, so the recorded speedups stay
  reproducible on any machine instead of referring to a number measured
  once on one laptop.

Do not optimize or otherwise modify this module: its value is that it
stays byte-for-byte the old engine. New features land in
``repro.sim.simulator`` only.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.cluster import Cluster
from repro.cluster.node import COORDINATOR
from repro.cluster.profiler import Profiler
from repro.core.errors import SimulationError
from repro.models.specs import ModelSpec
from repro.scheduling.base import Scheduler
from repro.scheduling.pipelines import RequestPipeline
from repro.sim.kv_cache import KVCachePool
from repro.sim.metrics import RequestRecord, ServingMetrics, aggregate_metrics
from repro.sim.request import Request


@dataclass
class _ActiveRequest:
    request: Request
    pipeline: RequestPipeline
    record: RequestRecord
    attempt: int = 0
    # Tokens of KV the attempt has actually allocated on each node; freed
    # exactly on finish or disruption.
    kv_per_node: dict[str, int] = field(default_factory=dict)


class LegacySimulation:
    """The pre-overhaul serving simulation (oracle/baseline only).

    Args:
        cluster: The serving cluster.
        model: The served model.
        placement: Model placement in effect.
        scheduler: A configured scheduler (Helix, Swarm, random, ...).
        requests: The trace, sorted or not by arrival time.
        profiler: Timing model; must match the one used for planning.
        max_batch_tokens: Per-batch token cap on every node (bounds the
            batch latency of flooded offline runs).
        max_time: Simulation horizon in seconds; events beyond it are not
            processed.
        warmup: Seconds excluded from the measurement window.
        seed: Top-level seed recorded for the run. The simulation itself is
            deterministic; thread the *same* seed into the trace and churn
            generators (``random_churn(..., seed=...)``) so one value
            reproduces an entire dynamic run exactly.
        controller: Optional online controller (see
            :class:`repro.online.OnlineController`); its ``start(sim)`` is
            called once before the event loop to inject environment events.
    """

    def __init__(
        self,
        cluster: Cluster,
        model: ModelSpec,
        placement,
        scheduler: Scheduler,
        requests: list[Request],
        profiler: Profiler | None = None,
        max_batch_tokens: int | None = 16384,
        max_time: float = 3600.0,
        warmup: float = 0.0,
        seed: int | None = None,
        controller=None,
    ) -> None:
        if not requests:
            raise SimulationError("request trace is empty")
        self.cluster = cluster
        self.model = model
        self.placement = placement
        self.scheduler = scheduler
        self.profiler = profiler or Profiler()
        self.max_time = max_time
        self.warmup = warmup
        self.max_batch_tokens = max_batch_tokens
        self.seed = seed
        self.controller = controller

        self.requests = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        self._node_epoch: dict[str, int] = {nid: 0 for nid in cluster.node_ids}
        self.executors: dict[str, LegacyNodeExecutor] = {}
        self.kv_pools: dict[str, KVCachePool] = {}
        for node_id in placement.used_nodes:
            self._bind_node(node_id)
        self.channels: dict[tuple[str, str], LegacyLinkChannel] = {
            key: LegacyLinkChannel(link) for key, link in cluster.links.items()
        }

        self._events: list[tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._active: dict[str, _ActiveRequest] = {}
        self._pending: deque[Request] = deque()
        self._records: dict[str, RequestRecord] = {}
        self._pipeline_depths: list[int] = []
        self._last_token_time = 0.0
        self._token_timeline: list[float] = []
        self._down_nodes: set[str] = set()
        self._base_bandwidth: dict[tuple[str, str], float] = {}
        for node_id in cluster.down_node_ids:
            self._down_nodes.add(node_id)
            self.scheduler.mark_node_down(node_id)

    def _bind_node(self, node_id: str) -> None:
        """Create (or re-create) the executor and KV pool for a used node."""
        node = self.cluster.node(node_id)
        stage = self.placement.interval(node_id)
        self.executors[node_id] = LegacyNodeExecutor(
            node, self.model, self.profiler, stage.num_layers,
            self.max_batch_tokens,
        )
        pool = KVCachePool(
            node_id=node_id,
            capacity_tokens=self.profiler.kv_capacity(
                node, self.model, stage.num_layers
            ),
        )
        old_pool = self.kv_pools.get(node_id)
        if old_pool is not None:
            # Overflow/peak history is a run-level statistic (metrics sum
            # over current pools); a rebind must not erase it.
            pool.overflow_events = old_pool.overflow_events
            pool.peak_tokens = old_pool.peak_tokens
        self.kv_pools[node_id] = pool
        self._node_epoch.setdefault(node_id, 0)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, when: float, kind: str, payload: object) -> None:
        if when < self._now - 1e-9:
            raise SimulationError(
                f"event {kind!r} scheduled in the past ({when} < {self._now})"
            )
        heapq.heappush(self._events, (when, next(self._seq), kind, payload))

    def schedule_event(
        self, when: float, fn: Callable[["LegacySimulation"], None]
    ) -> None:
        """Schedule an environment callback ``fn(sim)`` at time ``when``.

        This is how online controllers inject cluster churn — node
        failures, recoveries, link degradations, replan applications —
        into the event loop.
        """
        self._push(when, "env", fn)

    def run(self) -> ServingMetrics:
        """Play the trace and return aggregate metrics."""
        if self.controller is not None:
            self.controller.start(self)
        for request in self.requests:
            self._push(request.arrival_time, "arrival", request)

        while self._events:
            when, _, kind, payload = heapq.heappop(self._events)
            if when > self.max_time:
                break
            self._now = when
            if kind == "arrival":
                self._on_arrival(payload)
            elif kind == "stage":
                self._on_stage_arrival(*payload)
            elif kind == "batch":
                self._on_batch_complete(*payload)
            elif kind == "token":
                self._on_token(*payload)
            elif kind == "env":
                payload(self)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

        end_time = min(self._now, self.max_time)
        end_time = max(end_time, self.warmup + 1e-9)
        return aggregate_metrics(
            records=list(self._records.values()),
            warmup=self.warmup,
            end_time=end_time,
            kv_overflow_events=sum(
                pool.overflow_events for pool in self.kv_pools.values()
            ),
            pipeline_depths=self._pipeline_depths,
        )

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def _on_arrival(self, request: Request) -> None:
        record = RequestRecord(
            request_id=request.request_id,
            input_len=request.input_len,
            output_len=request.output_len,
            arrival_time=request.arrival_time,
        )
        self._records[request.request_id] = record
        if not self._try_schedule(request):
            self._pending.append(request)

    def _try_schedule(self, request: Request) -> bool:
        pipeline = self.scheduler.schedule(request.request_id, request.input_len)
        if pipeline is None:
            return False
        record = self._records[request.request_id]
        record.schedule_time = self._now
        attempt = record.retries + record.migrations
        active = _ActiveRequest(
            request=request, pipeline=pipeline, record=record, attempt=attempt
        )
        self._active[request.request_id] = active
        self._start_iteration(active, is_prompt=True)
        return True

    def _retry_pending(self) -> None:
        while self._pending:
            request = self._pending[0]
            if not self._try_schedule(request):
                return
            self._pending.popleft()

    def _start_iteration(self, active: _ActiveRequest, is_prompt: bool) -> None:
        first_node = active.pipeline.stages[0].node_id
        num_tokens = active.request.input_len if is_prompt else 1
        message_bytes = num_tokens * self.model.token_bytes
        arrival = self._transmit(COORDINATOR, first_node, message_bytes)
        self._push(
            arrival,
            "stage",
            (active.request.request_id, active.attempt, 0, is_prompt),
        )

    def _transmit(self, src: str, dst: str, num_bytes: float) -> float:
        channel = self.channels.get((src, dst))
        if channel is None:
            raise SimulationError(f"no link {src!r}->{dst!r} for transmission")
        return channel.transmit(self._now, num_bytes)

    def _live_attempt(self, request_id: str, attempt: int) -> _ActiveRequest | None:
        """The active request iff ``attempt`` is its current attempt.

        Events minted by a disrupted attempt keep arriving after the
        request was requeued (and possibly rescheduled); they must be
        dropped, not applied to the new attempt. Truly unknown ids still
        raise — that would be a simulator bug.
        """
        active = self._active.get(request_id)
        if active is not None and active.attempt == attempt:
            return active
        if request_id not in self._records:
            raise SimulationError(f"event for unknown request {request_id!r}")
        return None

    def _on_stage_arrival(
        self, request_id: str, attempt: int, stage_index: int, is_prompt: bool
    ) -> None:
        active = self._live_attempt(request_id, attempt)
        if active is None:
            return  # stale: the attempt was disrupted mid-flight
        stage = active.pipeline.stages[stage_index]
        num_tokens = active.request.input_len if is_prompt else 1
        work = LegacyStageWork(
            request_id=request_id,
            stage_index=stage_index,
            num_tokens=num_tokens,
            num_layers=stage.num_layers,
            is_prompt=is_prompt,
            attempt=attempt,
        )
        executor = self.executors[stage.node_id]
        executor.enqueue(work)
        if not executor.busy:
            self._start_batch(stage.node_id)

    def _start_batch(self, node_id: str) -> None:
        executor = self.executors[node_id]
        batch = executor.take_batch()
        if not batch:
            executor.busy = False
            return
        executor.busy = True
        elapsed = executor.batch_time(batch)
        self._push(
            self._now + elapsed,
            "batch",
            (node_id, self._node_epoch[node_id], batch, elapsed),
        )

    def _on_batch_complete(
        self, node_id: str, epoch: int, batch: list[StageWork], elapsed: float
    ) -> None:
        if epoch != self._node_epoch[node_id]:
            return  # the node failed while this batch was executing
        executor = self.executors[node_id]
        executor.busy = False
        executor.record_batch(batch, elapsed)
        tokens = sum(work.num_tokens for work in batch)
        self.scheduler.notify_node_progress(node_id, tokens, elapsed)

        for work in batch:
            active = self._active.get(work.request_id)
            if active is None or active.attempt != work.attempt:
                continue  # finished under max_time truncation, or disrupted
            # KV grows on this node: the whole prompt once, then one token
            # per decode iteration.
            self.kv_pools[node_id].allocate(work.num_tokens)
            active.kv_per_node[node_id] = (
                active.kv_per_node.get(node_id, 0) + work.num_tokens
            )
            next_index = work.stage_index + 1
            if next_index < active.pipeline.depth:
                next_node = active.pipeline.stages[next_index].node_id
                size = work.num_tokens * self.model.activation_bytes_per_token
                arrival = self._transmit(node_id, next_node, size)
                self._push(
                    arrival,
                    "stage",
                    (work.request_id, work.attempt, next_index, work.is_prompt),
                )
            else:
                arrival = self._transmit(
                    node_id, COORDINATOR, self.model.token_bytes
                )
                self._push(arrival, "token", (work.request_id, work.attempt))

        if executor.has_work():
            self._start_batch(node_id)

    def _on_token(self, request_id: str, attempt: int) -> None:
        active = self._live_attempt(request_id, attempt)
        if active is None:
            return
        record = active.record
        if not record.token_times:
            record.first_token_time = self._now
        record.token_times.append(self._now)
        record.tokens_generated += 1
        self._last_token_time = self._now
        self._token_timeline.append(self._now)

        if record.tokens_generated >= active.request.output_len:
            self._finish(active)
        else:
            self._start_iteration(active, is_prompt=False)

    def _finish(self, active: _ActiveRequest) -> None:
        record = active.record
        record.finish_time = self._now
        # Recorded on finish, not on schedule: disrupted attempts' pipelines
        # must not contaminate the finished-request depth average.
        self._pipeline_depths.append(active.pipeline.depth)
        for node_id, tokens in active.kv_per_node.items():
            self.kv_pools[node_id].free(tokens)
        del self._active[active.request.request_id]
        self.scheduler.notify_finished(active.request.request_id)
        self._retry_pending()

    # ------------------------------------------------------------------
    # Online dynamics: failures, repairs, and live replanning
    # ------------------------------------------------------------------
    def _requeue(self, active: _ActiveRequest, migrated: bool) -> None:
        """Abort an attempt and send the request back to the pending queue.

        The attempt's tokens become wasted work, its KV charges on
        surviving nodes are released (the failed node's pool was flushed
        wholesale), and the attempt counter bump makes every event the old
        attempt still has in flight fall on the floor.
        """
        record = active.record
        record.tokens_lost += record.tokens_generated
        if migrated:
            record.migrations += 1
        else:
            record.retries += 1
        record.tokens_generated = 0
        record.token_times = []
        record.first_token_time = math.nan
        record.schedule_time = math.nan
        for node_id, tokens in active.kv_per_node.items():
            if node_id not in self._down_nodes and node_id in self.kv_pools:
                self.kv_pools[node_id].free(tokens)
        del self._active[active.request.request_id]
        self.scheduler.notify_failed(active.request.request_id)
        self._pending.append(active.request)

    def fail_node(self, node_id: str) -> list[str]:
        """A node crashes: its KV state is lost and its work fails.

        Everything the node was doing dies with it — queued stage work is
        dropped, the in-flight batch (if any) never completes, and every
        request whose pipeline routes through the node is requeued for a
        fresh scheduling attempt on the surviving topology. The scheduler
        masks the node until :meth:`restore_node`.

        Returns the ids of the requeued requests.
        """
        self.cluster.node(node_id)  # referential check
        if node_id in self._down_nodes:
            return []
        self.cluster.set_node_available(node_id, False)
        self._down_nodes.add(node_id)
        self.scheduler.mark_node_down(node_id)
        # .get: a joined node that never entered a placement has no epoch yet.
        self._node_epoch[node_id] = self._node_epoch.get(node_id, 0) + 1

        executor = self.executors.get(node_id)
        if executor is not None:
            executor.queue.clear()
            executor.busy = False
        pool = self.kv_pools.get(node_id)
        if pool is not None:
            pool.used_tokens = 0  # KV state is gone

        requeued = [
            rid
            for rid, active in self._active.items()
            if node_id in active.pipeline.node_ids
        ]
        for rid in requeued:
            self._requeue(self._active[rid], migrated=False)
        self._retry_pending()
        return requeued

    def restore_node(self, node_id: str) -> None:
        """A failed node rejoins (cold: empty KV, empty queue)."""
        self.cluster.node(node_id)
        if node_id not in self._down_nodes:
            return
        self.cluster.set_node_available(node_id, True)
        self._down_nodes.discard(node_id)
        self.scheduler.mark_node_up(node_id)
        pool = self.kv_pools.get(node_id)
        if pool is not None:
            pool.used_tokens = 0
        self._retry_pending()

    def degrade_link(
        self, src: str, dst: str, factor: float, bidirectional: bool = True
    ) -> None:
        """Scale a link's bandwidth to ``factor`` of its original value.

        Affects every future transmission (in-flight messages keep their
        already-computed arrival times, like packets already on the wire)
        and, through :meth:`~repro.flow.graph.FlowGraph.refresh_links`, the
        flow capacities the next replanning sees. ``factor`` is relative to
        the link's *original* bandwidth, so repeated degradations do not
        compound; :meth:`restore_link` resets it. With ``bidirectional``
        the reverse direction is degraded too when it exists (links may be
        asymmetric).
        """
        if factor <= 0:
            raise SimulationError(
                f"degradation factor must be positive, got {factor} "
                "(sever connectivity by failing nodes instead)"
            )
        self.cluster.link(src, dst)  # referential check before mutating
        keys = [(src, dst)]
        if bidirectional and self.cluster.has_link(dst, src):
            keys.append((dst, src))
        for key in keys:
            base = self._base_bandwidth.setdefault(
                key, self.cluster.link(*key).bandwidth
            )
            link = self.cluster.set_link_bandwidth(*key, base * factor)
            channel = self.channels.get(key)
            if channel is not None:
                channel.link = link

    def restore_link(
        self, src: str, dst: str, bidirectional: bool = True
    ) -> None:
        """Restore a degraded link to its original bandwidth."""
        keys = [(src, dst)]
        if bidirectional:
            keys.append((dst, src))
        for key in keys:
            base = self._base_bandwidth.pop(key, None)
            if base is None:
                continue
            link = self.cluster.set_link_bandwidth(*key, base)
            channel = self.channels.get(key)
            if channel is not None:
                channel.link = link

    def _attempt_survives(
        self, pipeline: RequestPipeline, placement, rebound: set[str]
    ) -> bool:
        """Whether an in-flight pipeline is still executable.

        A pipeline dies if any of its nodes is down, left the placement, or
        is about to be *re-bound* (its layer interval changed, so its
        executor and KV pool are replaced — queued and in-flight work there
        would vanish with the old executor). A node that is up, still
        placed, and not re-bound holds the exact interval the pipeline was
        built against, so no further stage check is needed.
        """
        for stage in pipeline.stages:
            if stage.node_id in self._down_nodes:
                return False
            if stage.node_id in rebound:
                return False
            if not placement.holds_layers(stage.node_id):
                return False
        return True

    def apply_placement(self, placement, flow=None) -> list[str]:
        """Hot-swap a replanned placement (and flow) into the live run.

        Requests whose pipelines survive the swap — every stage node still
        up, still holding the same layer interval — keep draining
        untouched. The rest are *migrated*: requeued for scheduling under
        the new placement. Nodes entering service get executors and KV
        pools; nodes whose layer interval changed are re-bound (their
        resident weights are reloaded, which also resets their KV pool —
        every request with state there is migrated first).

        Returns the ids of migrated requests.
        """
        placement.validate()
        if flow is not None and flow.max_flow <= 0:
            # Reject before mutating: the scheduler would refuse this flow
            # anyway, and by then requests would already be requeued and
            # executors rebound against a placement it never adopted.
            raise SimulationError(
                "flow solution carries no flow; refusing to hot-swap"
            )
        old_placement = self.placement
        rebound: set[str] = set()
        for node_id in placement.used_nodes:
            if node_id not in self.executors:
                continue  # entering service: no in-flight state to protect
            old_stage = (
                old_placement.interval(node_id)
                if old_placement.holds_layers(node_id)
                else None
            )
            stage = placement.interval(node_id)
            if old_stage is None or (old_stage.start, old_stage.end) != (
                stage.start, stage.end
            ):
                rebound.add(node_id)

        migrated = []
        for rid, active in list(self._active.items()):
            if not self._attempt_survives(active.pipeline, placement, rebound):
                migrated.append(rid)
                self._requeue(active, migrated=True)

        self.placement = placement
        for node_id in placement.used_nodes:
            if node_id not in self.executors:
                self._bind_node(node_id)
            elif node_id in rebound:
                self._node_epoch[node_id] = (
                    self._node_epoch.get(node_id, 0) + 1
                )
                self._bind_node(node_id)
        # Nodes leaving service quiesce like failed ones: queued stage work
        # is dropped and the in-flight batch (if any) goes stale, so they
        # stop accruing utilization and scheduler progress. Their executors
        # and KV pools stay registered for run-level statistics.
        for node_id in old_placement.used_nodes:
            if placement.holds_layers(node_id):
                continue
            executor = self.executors.get(node_id)
            if executor is not None:
                executor.queue.clear()
                executor.busy = False
            self._node_epoch[node_id] = self._node_epoch.get(node_id, 0) + 1
        # A joined node brings new links; give them channels.
        for key, link in self.cluster.links.items():
            if key not in self.channels:
                self.channels[key] = LegacyLinkChannel(link)

        self.scheduler.apply_placement(placement, flow=flow)
        self._retry_pending()
        return migrated

    # ------------------------------------------------------------------
    # Introspection for tests and case studies
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def down_nodes(self) -> set[str]:
        """Nodes currently failed."""
        return set(self._down_nodes)

    @property
    def pending_requests(self) -> int:
        """Requests waiting in the pending queue."""
        return len(self._pending)

    @property
    def token_timeline(self) -> list[float]:
        """Emission times of every token the system produced, in order.

        Unlike per-request records (reset when an attempt is disrupted),
        this global timeline is append-only: tokens emitted by an attempt
        that later failed stay in it. Feeding it to
        :func:`~repro.sim.metrics.goodput_timeline` therefore shows the
        true served-token rate over time — including the dip around a
        failure and the recovery after replanning.
        """
        return list(self._token_timeline)

    @property
    def records(self) -> list[RequestRecord]:
        """Records of every request that has arrived so far."""
        return list(self._records.values())

    def record_of(self, request_id: str) -> RequestRecord:
        """Per-request record (available after the run)."""
        return self._records[request_id]

    def congestion_report(self, top: int = 5) -> list[tuple[str, str, float]]:
        """Links with the largest mean queueing delay (src, dst, seconds)."""
        ranked = sorted(
            (
                (key[0], key[1], channel.mean_queueing_delay)
                for key, channel in self.channels.items()
                if channel.messages_sent > 0
            ),
            key=lambda row: -row[2],
        )
        return ranked[:top]


# ----------------------------------------------------------------------
# Frozen copies of the pre-overhaul runtime components. The live
# modules grew hot-path machinery (slots, cached roofline constants,
# queue-token counters); the baseline must not inherit those, so it
# carries its own verbatim copies under Legacy* names.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LegacyStageWork:
    """One request-iteration's work at one pipeline stage.

    Attributes:
        request_id: The owning request.
        stage_index: Position of this stage in the request's pipeline.
        num_tokens: Tokens processed this iteration (prompt length during
            the prompt phase, 1 during decode).
        num_layers: Layers this stage computes for the request.
        is_prompt: Whether this is the prompt-phase iteration.
        attempt: The owning request's attempt number; work minted by a
            disrupted attempt is dropped when its batch completes.
    """

    request_id: str
    stage_index: int
    num_tokens: int
    num_layers: int
    is_prompt: bool
    attempt: int = 0

    @property
    def token_layers(self) -> float:
        """Work contribution in token-layer units."""
        return float(self.num_tokens * self.num_layers)


@dataclass
class _LegacyBatchStats:
    batches: int = 0
    busy_time: float = 0.0
    token_layers: float = 0.0
    tokens: float = 0.0


class LegacyNodeExecutor:
    """Queue + batch executor for one compute node.

    Args:
        node: The simulated node.
        model: The served model.
        profiler: Timing model.
        resident_layers: Layers the node holds under the placement.
        max_batch_tokens: Optional cap on tokens per batch; ``None`` means
            a batch takes everything queued (the paper's policy).
    """

    def __init__(
        self,
        node: ComputeNode,
        model: ModelSpec,
        profiler: Profiler,
        resident_layers: int,
        max_batch_tokens: int | None = None,
    ) -> None:
        if resident_layers < 1:
            raise ValueError(
                f"node {node.node_id!r} executes with no resident layers"
            )
        if max_batch_tokens is not None and max_batch_tokens < 1:
            raise ValueError("max_batch_tokens must be >= 1 when set")
        self.node = node
        self.model = model
        self.profiler = profiler
        self.resident_layers = resident_layers
        self.max_batch_tokens = max_batch_tokens
        self.queue: list[LegacyStageWork] = []
        self.busy = False
        self.stats = _LegacyBatchStats()

    # ------------------------------------------------------------------
    def enqueue(self, work: LegacyStageWork) -> None:
        """Add work to the node's input queue."""
        self.queue.append(work)

    def has_work(self) -> bool:
        """Whether the queue is non-empty."""
        return bool(self.queue)

    def take_batch(self) -> list[LegacyStageWork]:
        """Remove and return the next batch (FIFO, optionally token-capped).

        Always returns at least one item when work is queued, even if that
        single item exceeds the token cap (a long prompt must still run).
        """
        if not self.queue:
            return []
        if self.max_batch_tokens is None:
            batch = self.queue
            self.queue = []
            return batch
        batch: list[LegacyStageWork] = []
        tokens = 0
        while self.queue:
            item = self.queue[0]
            if batch and tokens + item.num_tokens > self.max_batch_tokens:
                break
            batch.append(self.queue.pop(0))
            tokens += item.num_tokens
        return batch

    def batch_time(self, batch: list[LegacyStageWork]) -> float:
        """Wall time to execute ``batch`` on this node."""
        token_layers = sum(work.token_layers for work in batch)
        return self.profiler.batch_time(
            self.node, self.model, token_layers, self.resident_layers
        )

    def record_batch(self, batch: list[LegacyStageWork], elapsed: float) -> None:
        """Update utilization statistics after a batch completes."""
        self.stats.batches += 1
        self.stats.busy_time += elapsed
        self.stats.token_layers += sum(w.token_layers for w in batch)
        self.stats.tokens += sum(w.num_tokens for w in batch)

    def utilization(self, duration: float) -> float:
        """Busy-time fraction over a duration."""
        if duration <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / duration)


@dataclass
class LegacyLinkChannel:
    """Runtime state of one directed link.

    Attributes:
        link: The static link description.
    """

    link: Link
    next_free_time: float = 0.0
    bytes_sent: float = 0.0
    messages_sent: int = 0
    total_queueing_delay: float = 0.0
    max_queueing_delay: float = 0.0

    def transmit(self, now: float, num_bytes: float) -> float:
        """Enqueue a message at time ``now``; returns its arrival time."""
        if num_bytes < 0:
            raise ValueError(f"negative message size {num_bytes}")
        start = max(now, self.next_free_time)
        queueing = start - now
        transmission = num_bytes / self.link.bandwidth
        self.next_free_time = start + transmission
        self.bytes_sent += num_bytes
        self.messages_sent += 1
        self.total_queueing_delay += queueing
        self.max_queueing_delay = max(self.max_queueing_delay, queueing)
        return start + transmission + self.link.latency

    @property
    def mean_queueing_delay(self) -> float:
        """Average seconds a message waited for this link."""
        if self.messages_sent == 0:
            return 0.0
        return self.total_queueing_delay / self.messages_sent
