"""Actual (not estimated) KV-cache occupancy tracking per node.

The scheduler works from *estimates* (:mod:`repro.scheduling.kv_estimator`);
the simulator tracks the truth. Overflowing the pool does not crash the
simulation — real engines offload to host memory at a throughput cost — but
every overflow is counted so experiments can report whether the scheduler's
high-water masking actually prevented oversubscription.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class KVCachePool:
    """Token-granularity KV pool of one node.

    Attributes:
        node_id: Owning node.
        capacity_tokens: Tokens of KV the node can hold for its resident
            layers.
    """

    node_id: str
    capacity_tokens: int
    used_tokens: int = 0
    peak_tokens: int = 0
    overflow_events: int = 0

    def allocate(self, tokens: int) -> bool:
        """Reserve ``tokens``; returns False (and counts) on overflow.

        The allocation proceeds even on overflow — the engine would spill
        to host memory rather than lose the request.
        """
        if tokens < 0:
            raise ValueError(f"negative allocation of {tokens} tokens")
        overflowed = self.used_tokens + tokens > self.capacity_tokens
        if overflowed:
            self.overflow_events += 1
        self.used_tokens += tokens
        self.peak_tokens = max(self.peak_tokens, self.used_tokens)
        return not overflowed

    def charge_run(self, tokens: int) -> None:
        """Charge a decode run of ``tokens`` single-token allocations.

        Equivalent to ``tokens`` calls of ``allocate(1)`` folded into one
        update: the overflow counter advances by how many of those
        single-token allocations would have landed past capacity
        (``min(tokens, used_after - capacity)`` when positive), and the
        peak is taken once at the end — the running maximum of a
        monotonically growing occupancy is its final value. This is the
        simulator's batch-engine fast path; it must stay observably
        identical to the per-token loop.
        """
        used = self.used_tokens + tokens
        over = used - self.capacity_tokens
        if over > 0:
            self.overflow_events += tokens if over > tokens else over
        self.used_tokens = used
        if used > self.peak_tokens:
            self.peak_tokens = used

    def free(self, tokens: int) -> None:
        """Release ``tokens`` (clamped at zero)."""
        if tokens < 0:
            raise ValueError(f"negative free of {tokens} tokens")
        self.used_tokens = max(0, self.used_tokens - tokens)

    @property
    def utilization(self) -> float:
        """Occupancy fraction (may exceed 1.0 while overflowing)."""
        if self.capacity_tokens <= 0:
            return 0.0
        return self.used_tokens / self.capacity_tokens
