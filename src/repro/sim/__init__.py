"""Discrete-event simulator for distributed LLM serving (paper §6.1).

The paper evaluates most configurations in a simulator validated to <5%
error against its prototype. This package is the equivalent substrate:

* requests flow through per-request pipelines, iteration by iteration
  (prompt phase first, then one decode iteration per output token);
* each compute node runs the paper's dynamic batching — every batch picks
  up all work that arrived while the previous batch was executing;
* each directed network link is a FIFO bandwidth/latency queue, so slow
  links exhibit the queueing/congestion the §6.7 case study dissects;
* each node tracks actual KV-cache occupancy for its resident layers.

Entry point: :class:`~repro.sim.simulator.Simulation`.
"""

from repro.sim.request import Request
from repro.sim.kv_cache import KVCachePool
from repro.sim.network_sim import LinkChannel
from repro.sim.node_exec import NodeExecutor, StageWork
from repro.sim.metrics import (
    RequestRecord,
    ServingMetrics,
    LatencyStats,
    DisruptionReport,
    TenantMetrics,
    TokenTimeline,
    aggregate_tenant_metrics,
    disruption_report,
    goodput_timeline,
)
from repro.sim.policy import RequestPolicy
from repro.sim.residency import (
    EvictionRecord,
    ResidencyConfig,
    ResidencyManager,
    WarmupRecord,
)
from repro.sim.simulator import DrainRecord, Simulation

__all__ = [
    "RequestPolicy",
    "ResidencyConfig",
    "ResidencyManager",
    "WarmupRecord",
    "EvictionRecord",
    "DrainRecord",
    "Request",
    "KVCachePool",
    "LinkChannel",
    "NodeExecutor",
    "StageWork",
    "RequestRecord",
    "ServingMetrics",
    "LatencyStats",
    "DisruptionReport",
    "TenantMetrics",
    "TokenTimeline",
    "aggregate_tenant_metrics",
    "disruption_report",
    "goodput_timeline",
    "Simulation",
]
