"""Serving metrics: the quantities the paper's evaluation reports (§6.2).

* *decode throughput* — decode tokens generated per second inside the
  measurement window (after warmup);
* *prompt latency* — time from request arrival to its first output token;
* *decode latency* — average per-token generation interval of a request.

Latency distributions keep the percentiles the paper's box plots show
(5/25/50/75/95) plus the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as _np


@dataclass
class RequestRecord:
    """Lifecycle timestamps of one simulated request.

    Under online dynamics a request may be disrupted — its node failed or a
    replanning migrated it off a repartitioned node — and restart from the
    pending queue. ``retries``/``migrations`` count those restarts and
    ``tokens_lost`` the output tokens the failed attempts had already
    emitted; the latency/token fields always describe the final attempt.
    """

    request_id: str
    input_len: int
    output_len: int
    arrival_time: float
    schedule_time: float = math.nan
    first_token_time: float = math.nan
    finish_time: float = math.nan
    tokens_generated: int = 0
    token_times: list[float] = field(default_factory=list)
    retries: int = 0
    migrations: int = 0
    tokens_lost: int = 0
    #: Rejected by admission control before ever holding a pipeline.
    shed: bool = False
    #: Abandoned after exhausting its retry budget or missing its deadline.
    lost: bool = False
    #: Owning tenant ("" in the single-tenant legacy configuration).
    tenant_id: str = ""
    #: Admission priority class the request was admitted (or shed) under.
    priority: int = 0

    @property
    def finished(self) -> bool:
        return not math.isnan(self.finish_time)

    @property
    def prompt_latency(self) -> float:
        """Arrival to first token, in seconds."""
        return self.first_token_time - self.arrival_time

    @property
    def decode_latency(self) -> float:
        """Mean inter-token interval after the first token, in seconds."""
        if len(self.token_times) < 2:
            return math.nan
        intervals = [
            b - a for a, b in zip(self.token_times, self.token_times[1:])
        ]
        return sum(intervals) / len(intervals)


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample (the paper's box-plot quantities).

    ``count`` covers only the finite samples the percentiles are computed
    from; ``nan_count`` records how many samples were NaN (lost or
    unfinished requests) — they are excluded from the distribution but
    *not* silently forgotten, so a consumer dividing by request counts can
    see the disagreement instead of inheriting it.
    """

    count: int
    mean: float
    p5: float
    p25: float
    p50: float
    p75: float
    p95: float
    nan_count: int = 0

    def __str__(self) -> str:
        dropped = f" ({self.nan_count} NaN)" if self.nan_count else ""
        if self.count == 0:
            return f"n=0{dropped}"
        return (
            f"n={self.count}{dropped} mean={self.mean:.4f}s "
            f"p5={self.p5:.4f} p25={self.p25:.4f} p50={self.p50:.4f} "
            f"p75={self.p75:.4f} p95={self.p95:.4f}"
        )

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        clean = sorted(s for s in samples if not math.isnan(s))
        nan_count = len(samples) - len(clean)
        if not clean:
            return cls(
                0, math.nan, math.nan, math.nan, math.nan, math.nan,
                math.nan, nan_count=nan_count,
            )

        def percentile(q: float) -> float:
            index = q * (len(clean) - 1)
            low = int(math.floor(index))
            high = int(math.ceil(index))
            if low == high:
                return clean[low]
            frac = index - low
            return clean[low] * (1 - frac) + clean[high] * frac

        return cls(
            count=len(clean),
            mean=sum(clean) / len(clean),
            p5=percentile(0.05),
            p25=percentile(0.25),
            p50=percentile(0.50),
            p75=percentile(0.75),
            p95=percentile(0.95),
            nan_count=nan_count,
        )


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate outcome of one serving experiment.

    Attributes:
        decode_throughput: Decode tokens/second inside the measurement
            window.
        prompt_latency: Distribution of per-request prompt latencies.
        decode_latency: Distribution of per-request mean decode intervals.
        requests_finished: Requests completing within the simulation.
        requests_submitted: Requests that arrived.
        duration: Measurement-window length in seconds.
        decode_tokens: Decode tokens counted in the window.
        kv_overflow_events: Total KV-pool overflows across nodes (should be
            zero when the scheduler's masking works).
        avg_pipeline_depth: Mean pipeline depth across finished requests.
        requests_retried: Requests restarted at least once after a node
            failure (online dynamics).
        requests_migrated: Requests restarted at least once because a
            replanning invalidated their pipeline.
        tokens_lost: Output tokens emitted by attempts that were later
            disrupted (wasted work).
        requests_shed: Requests rejected by admission control (overload
            shedding) before ever holding a pipeline.
        requests_lost: Requests abandoned after exhausting their retry
            budget or missing their deadline.
        requests_shed_by_priority: ``(priority, count)`` rows splitting
            ``requests_shed`` per admission priority class, sorted by
            priority (attributable shed-rate accounting; empty when
            nothing was shed).
    """

    decode_throughput: float
    prompt_latency: LatencyStats
    decode_latency: LatencyStats
    requests_finished: int
    requests_submitted: int
    duration: float
    decode_tokens: int
    kv_overflow_events: int
    avg_pipeline_depth: float
    requests_retried: int = 0
    requests_migrated: int = 0
    tokens_lost: int = 0
    requests_shed: int = 0
    requests_lost: int = 0
    requests_shed_by_priority: tuple[tuple[int, int], ...] = ()

    def summary(self) -> str:
        """One-line report string."""
        return (
            f"decode {self.decode_throughput:.1f} tok/s | "
            f"prompt p50 {self.prompt_latency.p50:.2f}s | "
            f"decode p50 {self.decode_latency.p50 * 1000:.0f}ms | "
            f"{self.requests_finished}/{self.requests_submitted} finished"
        )


def aggregate_metrics(
    records: list[RequestRecord],
    warmup: float,
    end_time: float,
    kv_overflow_events: int,
    pipeline_depths: list[int],
) -> ServingMetrics:
    """Build :class:`ServingMetrics` from per-request records.

    Decode throughput counts tokens whose emission time falls inside
    ``[warmup, end_time]``. Latency distributions include only requests
    that finished after warmup (so cold-start artifacts are excluded).
    """
    if end_time <= warmup:
        raise ValueError(
            f"measurement window is empty: warmup={warmup}, end={end_time}"
        )
    decode_tokens = 0
    for record in records:
        # The first token ends the prompt phase; the rest are decode tokens.
        for token_time in record.token_times[1:]:
            if warmup <= token_time <= end_time:
                decode_tokens += 1
    finished = [r for r in records if r.finished and r.finish_time >= warmup]
    duration = end_time - warmup
    shed_by_priority: dict[int, int] = {}
    for record in records:
        if record.shed:
            shed_by_priority[record.priority] = (
                shed_by_priority.get(record.priority, 0) + 1
            )
    return ServingMetrics(
        decode_throughput=decode_tokens / duration,
        prompt_latency=LatencyStats.from_samples(
            [r.prompt_latency for r in finished]
        ),
        decode_latency=LatencyStats.from_samples(
            [r.decode_latency for r in finished]
        ),
        requests_finished=sum(1 for r in records if r.finished),
        requests_submitted=len(records),
        duration=duration,
        decode_tokens=decode_tokens,
        kv_overflow_events=kv_overflow_events,
        avg_pipeline_depth=(
            sum(pipeline_depths) / len(pipeline_depths) if pipeline_depths else 0.0
        ),
        requests_retried=sum(1 for r in records if r.retries > 0),
        requests_migrated=sum(1 for r in records if r.migrations > 0),
        tokens_lost=sum(r.tokens_lost for r in records),
        requests_shed=sum(1 for r in records if r.shed),
        requests_lost=sum(1 for r in records if r.lost),
        requests_shed_by_priority=tuple(sorted(shed_by_priority.items())),
    )


# ----------------------------------------------------------------------
# Per-tenant metrics (multi-tenant serving)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantMetrics:
    """One tenant's slice of a serving run.

    SLO attainment is the fraction of the tenant's *admitted* requests
    (submitted and not rejected by admission control) whose latency met
    the target: ``ttft_attainment`` against the time-to-first-token
    target (prompt latency), ``tbt_attainment`` against the
    time-between-tokens target (mean decode interval; a finished
    single-token request has no intervals and counts as attained).
    Requests that were lost (deadline/retry-budget abandonment) or never
    finished inside the horizon count *against* attainment — an operator
    cannot claim an SLO was met for a request that never completed. Shed
    requests are excluded from the latency denominators (they never held
    a pipeline; ``requests_shed`` accounts for them separately). The
    tenant's SLO is *met* when both attainments reach the class
    percentile.
    """

    tenant_id: str
    requests_submitted: int
    requests_finished: int
    requests_shed: int
    requests_lost: int
    decode_tokens: int
    goodput: float
    ttft_attainment: float
    tbt_attainment: float
    slo_percentile: float
    slo_met: bool

    def summary(self) -> str:
        """One-line report string."""
        return (
            f"[{self.tenant_id}] {self.goodput:.1f} tok/s | "
            f"ttft {self.ttft_attainment * 100:.0f}% / "
            f"tbt {self.tbt_attainment * 100:.0f}% "
            f"(target p{self.slo_percentile * 100:.0f}: "
            f"{'met' if self.slo_met else 'MISSED'}) | "
            f"{self.requests_finished}/{self.requests_submitted} finished, "
            f"{self.requests_shed} shed"
        )


def aggregate_tenant_metrics(
    records: list[RequestRecord],
    warmup: float,
    end_time: float,
    slo_targets: dict[str, tuple[float, float, float]],
) -> dict[str, "TenantMetrics"]:
    """Per-tenant :class:`TenantMetrics` from request records.

    ``slo_targets`` maps tenant id to ``(ttft_target, tbt_target,
    percentile)`` — duck-typed so this module does not depend on
    :mod:`repro.tenancy`. Tenants with registered targets but no
    records still get a (vacuously attained) row.
    """
    duration = end_time - warmup
    if duration <= 0:
        raise ValueError(
            f"measurement window is empty: warmup={warmup}, end={end_time}"
        )
    by_tenant: dict[str, list[RequestRecord]] = {
        tid: [] for tid in slo_targets
    }
    for record in records:
        by_tenant.setdefault(record.tenant_id, []).append(record)

    out: dict[str, TenantMetrics] = {}
    for tenant_id in sorted(by_tenant):
        rows = by_tenant[tenant_id]
        ttft_target, tbt_target, percentile = slo_targets.get(
            tenant_id, (math.inf, math.inf, 0.95)
        )
        decode_tokens = 0
        for record in rows:
            for token_time in record.token_times[1:]:
                if warmup <= token_time <= end_time:
                    decode_tokens += 1
        finished = [r for r in rows if r.finished]
        # Attainment denominators cover every admitted request, so a lost
        # or never-finished request counts as a miss instead of silently
        # dropping out of the SLO (the NaN latencies that
        # LatencyStats.from_samples excludes are exactly these rows).
        admitted = [r for r in rows if not r.shed]
        ttft_ok = sum(
            1 for r in finished if r.prompt_latency <= ttft_target
        )
        tbt_ok = sum(
            1
            for r in finished
            if math.isnan(r.decode_latency) or r.decode_latency <= tbt_target
        )
        ttft_attainment = ttft_ok / len(admitted) if admitted else 1.0
        tbt_attainment = tbt_ok / len(admitted) if admitted else 1.0
        out[tenant_id] = TenantMetrics(
            tenant_id=tenant_id,
            requests_submitted=len(rows),
            requests_finished=len(finished),
            requests_shed=sum(1 for r in rows if r.shed),
            requests_lost=sum(1 for r in rows if r.lost),
            decode_tokens=decode_tokens,
            goodput=decode_tokens / duration,
            ttft_attainment=ttft_attainment,
            tbt_attainment=tbt_attainment,
            slo_percentile=percentile,
            slo_met=(
                ttft_attainment >= percentile and tbt_attainment >= percentile
            ),
        )
    return out


# ----------------------------------------------------------------------
# Online token-timeline accumulation
# ----------------------------------------------------------------------
class TokenTimeline:
    """Fixed-width-bucket accumulator of token emission times.

    The simulator used to append one float per emitted token to a global
    timeline — O(tokens) memory that dominates long traces. This
    accumulator folds each token into a bucket counter online, so memory
    is bounded by ``horizon / resolution`` regardless of trace length,
    while :meth:`times` stays available as a derived view for existing
    consumers (each token is reported at its bucket's start time).

    ``resolution`` must be positive and should be a power of two (the
    default is 1/16 s): bucket boundaries are then exact binary floats,
    which makes :func:`goodput_timeline` over the derived view return
    bit-identical bucket counts to the exact timeline for any window that
    is a positive integer multiple of the resolution (all windows used by
    the repo's reports: 0.25, 1.0, 2.0, 3.0).
    """

    __slots__ = ("resolution", "_inv", "_counts", "count")

    def __init__(self, resolution: float = 0.0625) -> None:
        if not (resolution > 0.0) or not math.isfinite(resolution):
            raise ValueError(f"resolution must be positive, got {resolution}")
        self.resolution = resolution
        self._inv = 1.0 / resolution
        self._counts: list[int] = []
        self.count = 0

    def add(self, when: float) -> None:
        """Record one token emitted at time ``when`` (>= 0)."""
        index = int(when * self._inv)
        counts = self._counts
        if index >= len(counts):
            counts.extend([0] * (index + 1 - len(counts)))
        counts[index] += 1
        self.count += 1

    def add_many(self, times) -> None:
        """Bulk-fold a sorted-or-not array of emission times.

        Semantically identical to calling :meth:`add` once per element
        (bucket indices are the same ``int(t * 1/resolution)`` truncation
        and counts are integers, so the fold is exact); one
        ``numpy.bincount`` over the touched bucket range replaces the
        per-token Python loop. This is the batch engine's per-run
        timeline write.
        """
        buckets = (_np.asarray(times) * self._inv).astype(_np.int64)
        if buckets.size == 0:
            return
        counts = self._counts
        lo = int(buckets.min())
        hi = int(buckets.max())
        if hi >= len(counts):
            counts.extend([0] * (hi + 1 - len(counts)))
        for offset, added in enumerate(_np.bincount(buckets - lo).tolist()):
            if added:
                counts[lo + offset] += added
        self.count += int(buckets.size)

    def bucket_counts(self) -> list[int]:
        """Token counts per bucket (bucket i covers ``[i*r, (i+1)*r)``)."""
        return list(self._counts)

    def times(self) -> list[float]:
        """Derived per-token view: each token at its bucket start time."""
        resolution = self.resolution
        out: list[float] = []
        for index, count in enumerate(self._counts):
            if count:
                out.extend([index * resolution] * count)
        return out


# ----------------------------------------------------------------------
# Disruption metrics (online dynamics)
# ----------------------------------------------------------------------
def goodput_timeline(
    token_times: list[float],
    window: float,
    end_time: float,
    start: float = 0.0,
    resolution: float | None = None,
) -> list[tuple[float, float]]:
    """Windowed goodput: tokens/second per ``window``-second bucket.

    ``token_times`` are token emission times — normally the simulator's
    append-only :attr:`~repro.sim.simulator.Simulation.token_timeline`, so
    the curve shows the true served rate (the dip around a failure, the
    recovery after replanning). Returns ``(bucket_start, tokens_per_second)``
    rows covering ``[start, end_time)``; the trailing partial bucket is
    dropped so every row is normalized by the same window length. A token
    emitted exactly at the covered horizon end (``start + num_buckets *
    window``) lands in the final bucket instead of being dropped into a
    phantom bucket past the horizon.

    When ``token_times`` came from a bucketed :class:`TokenTimeline`, pass
    its ``resolution``: the derived view is only bit-identical to the
    exact timeline when ``window`` is a positive integer multiple of the
    resolution, and this function then *raises* ``ValueError`` on a
    non-multiple window instead of returning quietly-wrong buckets.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if resolution is not None:
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        multiple = window / resolution
        if multiple < 1 or multiple != int(multiple):
            raise ValueError(
                f"window {window} is not a positive integer multiple of the "
                f"timeline resolution {resolution}: bucketed token times "
                "would split across goodput windows and the derived curve "
                "would silently disagree with the exact one"
            )
    num_buckets = int((end_time - start) / window)
    if num_buckets <= 0:
        return []
    horizon = start + num_buckets * window
    counts = [0] * num_buckets
    for t in token_times:
        if t < start:  # int() truncates toward zero: -0.5 would bucket to 0
            continue
        index = int((t - start) / window)
        if index < num_buckets:
            counts[index] += 1
        elif t == horizon:
            # Horizon-end boundary: the half-open final bucket adopts a
            # token emitted exactly at its closing edge.
            counts[num_buckets - 1] += 1
    return [
        (start + i * window, counts[i] / window) for i in range(num_buckets)
    ]


@dataclass(frozen=True)
class DisruptionReport:
    """How serving behaved across failures and replannings.

    Attributes:
        window: Bucket width of the goodput timeline, in seconds.
        timeline: ``(bucket_start, tokens/s)`` goodput rows.
        pre_disruption_goodput: Mean windowed goodput before the first
            disruption (ramp-up bucket excluded).
        post_recovery_goodput: Mean windowed goodput after the last
            recovery action settled.
        recovery_ratio: ``post / pre`` — the throughput-recovery ratio.
        time_to_recovery: Seconds from the first disruption until windowed
            goodput first regained ``recovery_threshold`` of its
            pre-disruption level (NaN if it never did).
        recovery_threshold: The fraction defining recovery.
        requests_retried: Requests restarted by node failures.
        requests_migrated: Requests restarted by replannings.
        tokens_lost: Output tokens wasted by disrupted attempts.
        replan_count: Replannings applied.
        replan_latency_mean: Mean replanning wall-clock latency in seconds
            (NaN when no replanning ran).
        replan_latency_max: Worst replanning latency (NaN when none ran).
        mttd_mean: Mean time-to-detection across confirmed real failures
            in detection mode, simulated seconds (NaN when none).
        mttd_max: Worst time-to-detection (NaN when none).
        mttr: End-to-end mean-time-to-repair: seconds from the first
            failure until goodput is back above the recovery threshold
            *after the control plane's last reaction* (detection or
            applied replan). Unlike :attr:`time_to_recovery` it cannot be
            satisfied by pre-reaction survival goodput, so by construction
            ``mttd_max <= mttr`` whenever both are finite (NaN if goodput
            never recovered).
        false_positives: Healthy nodes the detector wrongly confirmed dead.
        requests_shed: Requests rejected by admission control.
        requests_lost: Requests abandoned (retry budget / deadline).
    """

    window: float
    timeline: tuple[tuple[float, float], ...]
    pre_disruption_goodput: float
    post_recovery_goodput: float
    recovery_ratio: float
    time_to_recovery: float
    recovery_threshold: float
    requests_retried: int
    requests_migrated: int
    tokens_lost: int
    replan_count: int
    replan_latency_mean: float
    replan_latency_max: float
    mttd_mean: float = math.nan
    mttd_max: float = math.nan
    mttr: float = math.nan
    false_positives: int = 0
    requests_shed: int = 0
    requests_lost: int = 0

    def summary(self) -> str:
        """One-line report string."""
        return (
            f"goodput {self.pre_disruption_goodput:.0f} -> "
            f"{self.post_recovery_goodput:.0f} tok/s "
            f"(recovery {self.recovery_ratio * 100:.0f}%) | "
            f"{self.requests_retried} retried, "
            f"{self.requests_migrated} migrated, "
            f"{self.tokens_lost} tokens lost | "
            f"{self.replan_count} replan(s), "
            f"worst {self.replan_latency_max:.2f}s"
        )


def disruption_report(
    token_times: list[float],
    window: float,
    end_time: float,
    first_disruption: float,
    recovered_from: float,
    *,
    requests_retried: int = 0,
    requests_migrated: int = 0,
    tokens_lost: int = 0,
    replan_latencies: list[float] | None = None,
    recovery_threshold: float = 0.7,
    settle: float | None = None,
    mttd_samples: list[float] | None = None,
    reaction_times: list[float] | None = None,
    false_positives: int = 0,
    requests_shed: int = 0,
    requests_lost: int = 0,
) -> DisruptionReport:
    """Assemble a :class:`DisruptionReport` from a run's raw timeline.

    Args:
        token_times: Useful-token emission times (simulator timeline).
        window: Goodput bucket width in seconds.
        end_time: End of the measurement horizon.
        first_disruption: Time of the first disruptive event.
        recovered_from: Time the last recovery action (replan/repair) took
            effect; the post window starts ``settle`` seconds later.
        requests_retried / requests_migrated / tokens_lost: Counters from
            :class:`ServingMetrics`.
        replan_latencies: Wall-clock seconds of each replanning.
        recovery_threshold: Goodput fraction defining "recovered".
        settle: Seconds after ``recovered_from`` excluded from the post
            window (default: one window).
        mttd_samples: Per-failure detection latencies (detection mode).
        reaction_times: Absolute sim times of control-plane reactions
            (detector confirmations, applied replans); gates the MTTR
            search so goodput measured before the control plane reacted
            does not count as "repaired".
        false_positives: Healthy nodes wrongly confirmed dead.
        requests_shed / requests_lost: Lifecycle counters from
            :class:`ServingMetrics`.
    """
    timeline = goodput_timeline(token_times, window, end_time)
    settle = window if settle is None else settle

    # Pre window: full buckets strictly before the disruption, skipping the
    # first bucket (prompt-phase ramp-up would understate steady goodput).
    pre = [
        rate
        for start, rate in timeline[1:]
        if start + window <= first_disruption
    ]
    post = [
        rate
        for start, rate in timeline
        if start >= recovered_from + settle
    ]
    pre_goodput = sum(pre) / len(pre) if pre else math.nan
    post_goodput = sum(post) / len(post) if post else math.nan
    ratio = (
        post_goodput / pre_goodput
        if pre_goodput and not math.isnan(pre_goodput)
        and not math.isnan(post_goodput)
        else math.nan
    )

    time_to_recovery = math.nan
    mttr = math.nan
    if pre_goodput and not math.isnan(pre_goodput):
        bar = recovery_threshold * pre_goodput
        for start, rate in timeline:
            if start >= first_disruption and rate >= bar:
                time_to_recovery = max(0.0, start - first_disruption)
                break
        # MTTR: the first recovered bucket that *ends* after the control
        # plane's last reaction. Measuring to the bucket end (not start)
        # makes the ordering MTTD <= MTTR structural: a failure confirmed
        # at time t can only be repaired in a bucket reaching past t.
        reactions = [t for t in (reaction_times or []) if not math.isnan(t)]
        gate = max([first_disruption, *reactions])
        for start, rate in timeline:
            if (
                start >= first_disruption
                and start + window > gate
                and rate >= bar
            ):
                mttr = start + window - first_disruption
                break

    latencies = list(replan_latencies or [])
    mttds = [m for m in (mttd_samples or []) if not math.isnan(m)]
    return DisruptionReport(
        window=window,
        timeline=tuple(timeline),
        pre_disruption_goodput=pre_goodput,
        post_recovery_goodput=post_goodput,
        recovery_ratio=ratio,
        time_to_recovery=time_to_recovery,
        recovery_threshold=recovery_threshold,
        requests_retried=requests_retried,
        requests_migrated=requests_migrated,
        tokens_lost=tokens_lost,
        replan_count=len(latencies),
        replan_latency_mean=(
            sum(latencies) / len(latencies) if latencies else math.nan
        ),
        replan_latency_max=max(latencies) if latencies else math.nan,
        mttd_mean=sum(mttds) / len(mttds) if mttds else math.nan,
        mttd_max=max(mttds) if mttds else math.nan,
        mttr=mttr,
        false_positives=false_positives,
        requests_shed=requests_shed,
        requests_lost=requests_lost,
    )
