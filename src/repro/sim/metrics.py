"""Serving metrics: the quantities the paper's evaluation reports (§6.2).

* *decode throughput* — decode tokens generated per second inside the
  measurement window (after warmup);
* *prompt latency* — time from request arrival to its first output token;
* *decode latency* — average per-token generation interval of a request.

Latency distributions keep the percentiles the paper's box plots show
(5/25/50/75/95) plus the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class RequestRecord:
    """Lifecycle timestamps of one simulated request."""

    request_id: str
    input_len: int
    output_len: int
    arrival_time: float
    schedule_time: float = math.nan
    first_token_time: float = math.nan
    finish_time: float = math.nan
    tokens_generated: int = 0
    token_times: list[float] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return not math.isnan(self.finish_time)

    @property
    def prompt_latency(self) -> float:
        """Arrival to first token, in seconds."""
        return self.first_token_time - self.arrival_time

    @property
    def decode_latency(self) -> float:
        """Mean inter-token interval after the first token, in seconds."""
        if len(self.token_times) < 2:
            return math.nan
        intervals = [
            b - a for a, b in zip(self.token_times, self.token_times[1:])
        ]
        return sum(intervals) / len(intervals)


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample (the paper's box-plot quantities)."""

    count: int
    mean: float
    p5: float
    p25: float
    p50: float
    p75: float
    p95: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        clean = sorted(s for s in samples if not math.isnan(s))
        if not clean:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan, math.nan)

        def percentile(q: float) -> float:
            index = q * (len(clean) - 1)
            low = int(math.floor(index))
            high = int(math.ceil(index))
            if low == high:
                return clean[low]
            frac = index - low
            return clean[low] * (1 - frac) + clean[high] * frac

        return cls(
            count=len(clean),
            mean=sum(clean) / len(clean),
            p5=percentile(0.05),
            p25=percentile(0.25),
            p50=percentile(0.50),
            p75=percentile(0.75),
            p95=percentile(0.95),
        )


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate outcome of one serving experiment.

    Attributes:
        decode_throughput: Decode tokens/second inside the measurement
            window.
        prompt_latency: Distribution of per-request prompt latencies.
        decode_latency: Distribution of per-request mean decode intervals.
        requests_finished: Requests completing within the simulation.
        requests_submitted: Requests that arrived.
        duration: Measurement-window length in seconds.
        decode_tokens: Decode tokens counted in the window.
        kv_overflow_events: Total KV-pool overflows across nodes (should be
            zero when the scheduler's masking works).
        avg_pipeline_depth: Mean pipeline depth across finished requests.
    """

    decode_throughput: float
    prompt_latency: LatencyStats
    decode_latency: LatencyStats
    requests_finished: int
    requests_submitted: int
    duration: float
    decode_tokens: int
    kv_overflow_events: int
    avg_pipeline_depth: float

    def summary(self) -> str:
        """One-line report string."""
        return (
            f"decode {self.decode_throughput:.1f} tok/s | "
            f"prompt p50 {self.prompt_latency.p50:.2f}s | "
            f"decode p50 {self.decode_latency.p50 * 1000:.0f}ms | "
            f"{self.requests_finished}/{self.requests_submitted} finished"
        )


def aggregate_metrics(
    records: list[RequestRecord],
    warmup: float,
    end_time: float,
    kv_overflow_events: int,
    pipeline_depths: list[int],
) -> ServingMetrics:
    """Build :class:`ServingMetrics` from per-request records.

    Decode throughput counts tokens whose emission time falls inside
    ``[warmup, end_time]``. Latency distributions include only requests
    that finished after warmup (so cold-start artifacts are excluded).
    """
    if end_time <= warmup:
        raise ValueError(
            f"measurement window is empty: warmup={warmup}, end={end_time}"
        )
    decode_tokens = 0
    for record in records:
        # The first token ends the prompt phase; the rest are decode tokens.
        for token_time in record.token_times[1:]:
            if warmup <= token_time <= end_time:
                decode_tokens += 1
    finished = [r for r in records if r.finished and r.finish_time >= warmup]
    duration = end_time - warmup
    return ServingMetrics(
        decode_throughput=decode_tokens / duration,
        prompt_latency=LatencyStats.from_samples(
            [r.prompt_latency for r in finished]
        ),
        decode_latency=LatencyStats.from_samples(
            [r.decode_latency for r in finished]
        ),
        requests_finished=sum(1 for r in records if r.finished),
        requests_submitted=len(records),
        duration=duration,
        decode_tokens=decode_tokens,
        kv_overflow_events=kv_overflow_events,
        avg_pipeline_depth=(
            sum(pipeline_depths) / len(pipeline_depths) if pipeline_depths else 0.0
        ),
    )
