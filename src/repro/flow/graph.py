"""Graph abstraction of a cluster with a given model placement (paper §4.3).

Each compute node ``c_i`` becomes two vertices ``c_i^in -> c_i^out`` whose
connecting edge carries the node's profiled token throughput ``T_j`` for the
``j`` layers it holds. The coordinator becomes ``source`` and ``sink``.
Network connections become edges whose capacity is bandwidth divided by the
per-token message size — 4-byte token ids on coordinator links, hidden-state
activations on compute-to-compute links.

A connection is *valid* (paper's three criteria) when:

1. ``source -> c_i`` and ``c_i`` holds the first layer;
2. ``c_j -> sink`` and ``c_j`` holds the last layer;
3. ``c_i -> c_j`` and ``c_j`` holds the layers needed right after ``c_i``
   finishes — with partial inference (§4.4), ``s_j <= e_i < e_j``; without
   it, exactly ``e_i == s_j``.

The max flow of the resulting graph is the placement's maximum serving
throughput in tokens/second.

Because the planner evaluates thousands of candidate placements on the same
cluster (§4.5's warm starts, incumbent checks, and our LNS loop), a
:class:`FlowGraph` is built *once* per cluster and re-targeted cheaply:

* The flow network contains every node edge and every physical link as a
  permanent edge; placement only decides each edge's capacity (zero for
  invalid connections and unused nodes). The underlying flat-array kernel
  skips zero-capacity edges entirely, so solves stay as fast as on a graph
  containing only the valid edges.
* Profiler lookups (``T_j`` per stage size, link token capacities) are
  computed once and cached.
* :meth:`FlowGraph.reevaluate` diffs the new placement against the current
  one and rewrites capacities only for node edges whose interval changed
  and link edges incident to a changed node — no vertex, edge, or registry
  reconstruction. Re-evaluating an unchanged placement returns the cached
  solution without re-solving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import COORDINATOR
from repro.cluster.profiler import Profiler
from repro.core.errors import PlacementError
from repro.core.placement_types import ModelPlacement
from repro.flow.maxflow import FlowNetwork
from repro.models.specs import ModelSpec

SOURCE = "source"
SINK = "sink"


def _in_vertex(node_id: str) -> str:
    return f"{node_id}::in"


def _out_vertex(node_id: str) -> str:
    return f"{node_id}::out"


def connection_is_valid(
    placement: ModelPlacement,
    src: str,
    dst: str,
    partial_inference: bool = True,
) -> bool:
    """Whether a directed network connection is usable under ``placement``.

    ``src``/``dst`` may be node ids or :data:`~repro.cluster.node.COORDINATOR`.
    """
    if src == COORDINATOR and dst == COORDINATOR:
        return False
    if src == COORDINATOR:
        return placement.holds_layers(dst) and placement.interval(dst).start == 0
    if dst == COORDINATOR:
        return (
            placement.holds_layers(src)
            and placement.interval(src).end == placement.num_layers
        )
    if not (placement.holds_layers(src) and placement.holds_layers(dst)):
        return False
    src_end = placement.interval(src).end
    dst_stage = placement.interval(dst)
    if partial_inference:
        return dst_stage.start <= src_end < dst_stage.end
    return src_end == dst_stage.start


@dataclass(frozen=True)
class FlowSolution:
    """A solved max-flow over the cluster graph.

    Attributes:
        max_flow: Maximum serving throughput in tokens/second.
        connection_flows: Flow per valid network connection, keyed by
            ``(src, dst)`` where endpoints are node ids or ``COORDINATOR``.
        node_flows: Flow through each node's internal capacity edge.
        node_capacities: The ``T_j`` capacity of each used node.
        connection_capacities: Token capacity per valid connection.
    """

    max_flow: float
    connection_flows: dict[tuple[str, str], float]
    node_flows: dict[str, float]
    node_capacities: dict[str, float]
    connection_capacities: dict[tuple[str, str], float]

    def node_utilization(self, node_id: str) -> float:
        """Fraction of the node's token throughput used by the max flow."""
        capacity = self.node_capacities.get(node_id, 0.0)
        if capacity <= 0:
            return 0.0
        return self.node_flows.get(node_id, 0.0) / capacity

    def outgoing_flows(self, src: str) -> dict[str, float]:
        """Positive flows leaving ``src`` keyed by destination."""
        return {
            dst: flow
            for (s, dst), flow in self.connection_flows.items()
            if s == src and flow > 0.0
        }


class FlowGraph:
    """Builds and solves the paper's graph abstraction, reusably.

    Args:
        cluster: The serving cluster.
        model: The served model.
        placement: A validated model placement.
        profiler: Source of ``T_j`` and link token capacities.
        partial_inference: Whether overlapping intervals may hand off
            mid-interval (paper §4.4's partial inference).
    """

    def __init__(
        self,
        cluster: Cluster,
        model: ModelSpec,
        placement: ModelPlacement,
        profiler: Profiler | None = None,
        partial_inference: bool = True,
    ) -> None:
        self.cluster = cluster
        self.model = model
        self.placement = placement
        self.profiler = profiler or Profiler()
        self.partial_inference = partial_inference
        self._network = FlowNetwork()
        # Static structure, built once per cluster.
        self._node_edge_ids: dict[str, int] = {}
        self._link_edge_ids: dict[tuple[str, str], int] = {}
        self._link_caps: dict[tuple[str, str], float] = {}
        self._links_by_node: dict[str, list[tuple[str, str]]] = {}
        # Placement-dependent state, updated incrementally.
        self._intervals: dict[str, tuple[int, int] | None] = {}
        self._link_valid: dict[tuple[str, str], bool] = {}
        self._node_capacities: dict[str, float] = {}
        self._connection_capacities: dict[tuple[str, str], float] = {}
        self._solution: FlowSolution | None = None
        self._build_network()
        self._apply_placement(placement)

    # ------------------------------------------------------------------
    def _build_network(self) -> None:
        """Create every vertex and edge once; capacities start at zero."""
        net = self._network
        net.add_node(SOURCE)
        net.add_node(SINK)

        for node_id in self.cluster.node_ids:
            edge_id = net.add_edge(_in_vertex(node_id), _out_vertex(node_id), 0.0)
            self._node_edge_ids[node_id] = edge_id
            self._intervals[node_id] = None
            self._links_by_node[node_id] = []

        for (src, dst), link in self.cluster.links.items():
            carries_activations = src != COORDINATOR and dst != COORDINATOR
            capacity = self.profiler.link_token_capacity(
                link, self.model, carries_activations
            )
            if src == COORDINATOR:
                u, v = SOURCE, _in_vertex(dst)
            elif dst == COORDINATOR:
                u, v = _out_vertex(src), SINK
            else:
                u, v = _out_vertex(src), _in_vertex(dst)
            key = (src, dst)
            self._link_edge_ids[key] = net.add_edge(u, v, 0.0)
            self._link_caps[key] = capacity
            self._link_valid[key] = False
            for endpoint in (src, dst):
                if endpoint != COORDINATOR:
                    self._links_by_node[endpoint].append(key)

    def _apply_placement(self, placement: ModelPlacement) -> None:
        """Point the network at ``placement``, rewriting only changed edges."""
        if not placement.first_layer_holders():
            raise PlacementError("no node holds the first layer")
        if not placement.last_layer_holders():
            raise PlacementError("no node holds the last layer")
        for node_id in placement.assignments:
            if node_id not in self._node_edge_ids:
                self.cluster.node(node_id)  # raises ClusterError

        net = self._network
        assignments = placement.assignments
        changed: list[str] = []
        for node_id, previous in self._intervals.items():
            stage = assignments.get(node_id)
            current = (stage.start, stage.end) if stage is not None else None
            if current == previous:
                continue
            changed.append(node_id)
            self._intervals[node_id] = current
            if current is None:
                capacity = 0.0
                self._node_capacities.pop(node_id, None)
            else:
                capacity = self.profiler.throughput(
                    self.cluster.node(node_id), self.model, stage.num_layers
                )
                self._node_capacities[node_id] = capacity
            net.set_capacity(self._node_edge_ids[node_id], capacity)

        # Sink-side validity compares interval ends against num_layers, so a
        # different model length invalidates every link, not just those at
        # changed nodes.
        if placement.num_layers != self.placement.num_layers:
            recheck = list(self._link_valid)
        else:
            seen: set[tuple[str, str]] = set()
            recheck = []
            for node_id in changed:
                for key in self._links_by_node[node_id]:
                    if key not in seen:
                        seen.add(key)
                        recheck.append(key)

        flipped = False
        partial = self.partial_inference
        for key in recheck:
            valid = connection_is_valid(placement, key[0], key[1], partial)
            if valid == self._link_valid[key]:
                continue
            flipped = True
            self._link_valid[key] = valid
            if valid:
                capacity = self._link_caps[key]
                self._connection_capacities[key] = capacity
            else:
                capacity = 0.0
                self._connection_capacities.pop(key, None)
            net.set_capacity(self._link_edge_ids[key], capacity)

        if changed or flipped:
            self._solution = None
        self.placement = placement

    # ------------------------------------------------------------------
    @property
    def network(self) -> FlowNetwork:
        """The underlying flow network (for inspection and tests)."""
        return self._network

    def valid_connections(self) -> list[tuple[str, str]]:
        """All valid network connections under the placement."""
        return list(self._connection_capacities)

    def solve(self) -> FlowSolution:
        """Solve the max flow and aggregate per-connection and per-node flow.

        The solution is cached until the placement changes, so repeated
        value queries on the same placement (common in the planner's
        incumbent checks) cost a dict lookup.
        """
        if self._solution is not None:
            return self._solution
        result = self._network.max_flow(SOURCE, SINK)
        edge_flows = result.edge_flows
        node_flows = {
            node_id: edge_flows[edge_id]
            for node_id, edge_id in self._node_edge_ids.items()
            if node_id in self._node_capacities
        }
        connection_flows = {
            key: edge_flows[self._link_edge_ids[key]]
            for key in self._connection_capacities
        }
        self._solution = FlowSolution(
            max_flow=result.value,
            connection_flows=connection_flows,
            node_flows=node_flows,
            node_capacities=dict(self._node_capacities),
            connection_capacities=dict(self._connection_capacities),
        )
        return self._solution

    def reevaluate(self, placement: ModelPlacement) -> FlowSolution:
        """Re-solve for a new placement without rebuilding the graph.

        Only capacities of edges whose validity or stage size changed are
        rewritten; everything else — vertices, edges, profiler lookups,
        registries — is reused. Raises :class:`PlacementError` (leaving the
        evaluator pointed at the previous placement) when the new placement
        cannot serve at all.
        """
        self._apply_placement(placement)
        return self.solve()

    def refresh_links(
        self, keys: list[tuple[str, str]] | None = None
    ) -> list[tuple[str, str]]:
        """Re-read link bandwidths from the cluster after in-place changes.

        The online controller degrades and repairs links mid-serving by
        swapping the cluster's :class:`~repro.cluster.network.Link` objects;
        this re-derives the affected token capacities and rewrites the
        corresponding edge capacities (for currently-valid connections)
        without touching graph structure. Newly *added* links (node joins)
        are structural and need a fresh :class:`FlowGraph`.

        Args:
            keys: The ``(src, dst)`` connections to refresh; ``None``
                refreshes every known link.

        Returns:
            The connections whose capacity actually changed.
        """
        cluster_links = self.cluster.links
        changed: list[tuple[str, str]] = []
        for key in keys if keys is not None else list(self._link_caps):
            link = cluster_links.get(key)
            if link is None or key not in self._link_edge_ids:
                continue
            carries_activations = (
                key[0] != COORDINATOR and key[1] != COORDINATOR
            )
            capacity = self.profiler.link_token_capacity(
                link, self.model, carries_activations
            )
            if capacity == self._link_caps[key]:
                continue
            changed.append(key)
            self._link_caps[key] = capacity
            if self._link_valid[key]:
                self._connection_capacities[key] = capacity
                self._network.set_capacity(self._link_edge_ids[key], capacity)
        if changed:
            self._solution = None
        return changed


def placement_max_flow(
    cluster: Cluster,
    model: ModelSpec,
    placement: ModelPlacement,
    profiler: Profiler | None = None,
    partial_inference: bool = True,
) -> float:
    """Convenience: the maximum serving throughput of a placement."""
    graph = FlowGraph(cluster, model, placement, profiler, partial_inference)
    return graph.solve().max_flow
