"""Graph abstraction of a cluster with a given model placement (paper §4.3).

Each compute node ``c_i`` becomes two vertices ``c_i^in -> c_i^out`` whose
connecting edge carries the node's profiled token throughput ``T_j`` for the
``j`` layers it holds. The coordinator becomes ``source`` and ``sink``.
Network connections become edges whose capacity is bandwidth divided by the
per-token message size — 4-byte token ids on coordinator links, hidden-state
activations on compute-to-compute links.

A connection is *valid* (paper's three criteria) when:

1. ``source -> c_i`` and ``c_i`` holds the first layer;
2. ``c_j -> sink`` and ``c_j`` holds the last layer;
3. ``c_i -> c_j`` and ``c_j`` holds the layers needed right after ``c_i``
   finishes — with partial inference (§4.4), ``s_j <= e_i < e_j``; without
   it, exactly ``e_i == s_j``.

The max flow of the resulting graph is the placement's maximum serving
throughput in tokens/second.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import COORDINATOR
from repro.cluster.profiler import Profiler
from repro.core.errors import PlacementError
from repro.core.placement_types import ModelPlacement
from repro.flow.maxflow import FlowNetwork
from repro.models.specs import ModelSpec

SOURCE = "source"
SINK = "sink"


def _in_vertex(node_id: str) -> str:
    return f"{node_id}::in"


def _out_vertex(node_id: str) -> str:
    return f"{node_id}::out"


def connection_is_valid(
    placement: ModelPlacement,
    src: str,
    dst: str,
    partial_inference: bool = True,
) -> bool:
    """Whether a directed network connection is usable under ``placement``.

    ``src``/``dst`` may be node ids or :data:`~repro.cluster.node.COORDINATOR`.
    """
    if src == COORDINATOR and dst == COORDINATOR:
        return False
    if src == COORDINATOR:
        return placement.holds_layers(dst) and placement.interval(dst).start == 0
    if dst == COORDINATOR:
        return (
            placement.holds_layers(src)
            and placement.interval(src).end == placement.num_layers
        )
    if not (placement.holds_layers(src) and placement.holds_layers(dst)):
        return False
    src_end = placement.interval(src).end
    dst_stage = placement.interval(dst)
    if partial_inference:
        return dst_stage.start <= src_end < dst_stage.end
    return src_end == dst_stage.start


@dataclass(frozen=True)
class FlowSolution:
    """A solved max-flow over the cluster graph.

    Attributes:
        max_flow: Maximum serving throughput in tokens/second.
        connection_flows: Flow per valid network connection, keyed by
            ``(src, dst)`` where endpoints are node ids or ``COORDINATOR``.
        node_flows: Flow through each node's internal capacity edge.
        node_capacities: The ``T_j`` capacity of each used node.
        connection_capacities: Token capacity per valid connection.
    """

    max_flow: float
    connection_flows: dict[tuple[str, str], float]
    node_flows: dict[str, float]
    node_capacities: dict[str, float]
    connection_capacities: dict[tuple[str, str], float]

    def node_utilization(self, node_id: str) -> float:
        """Fraction of the node's token throughput used by the max flow."""
        capacity = self.node_capacities.get(node_id, 0.0)
        if capacity <= 0:
            return 0.0
        return self.node_flows.get(node_id, 0.0) / capacity

    def outgoing_flows(self, src: str) -> dict[str, float]:
        """Positive flows leaving ``src`` keyed by destination."""
        return {
            dst: flow
            for (s, dst), flow in self.connection_flows.items()
            if s == src and flow > 0.0
        }


class FlowGraph:
    """Builds and solves the paper's graph abstraction.

    Args:
        cluster: The serving cluster.
        model: The served model.
        placement: A validated model placement.
        profiler: Source of ``T_j`` and link token capacities.
        partial_inference: Whether overlapping intervals may hand off
            mid-interval (paper §4.4's partial inference).
    """

    def __init__(
        self,
        cluster: Cluster,
        model: ModelSpec,
        placement: ModelPlacement,
        profiler: Profiler | None = None,
        partial_inference: bool = True,
    ) -> None:
        self.cluster = cluster
        self.model = model
        self.placement = placement
        self.profiler = profiler or Profiler()
        self.partial_inference = partial_inference
        self._network = FlowNetwork()
        self._edge_registry: dict[int, tuple[str, str, str]] = {}
        self._node_capacities: dict[str, float] = {}
        self._connection_capacities: dict[tuple[str, str], float] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        placement = self.placement
        if not placement.first_layer_holders():
            raise PlacementError("no node holds the first layer")
        if not placement.last_layer_holders():
            raise PlacementError("no node holds the last layer")

        net = self._network
        net.add_node(SOURCE)
        net.add_node(SINK)

        for node_id in placement.used_nodes:
            node = self.cluster.node(node_id)
            stage = placement.interval(node_id)
            capacity = self.profiler.throughput(node, self.model, stage.num_layers)
            self._node_capacities[node_id] = capacity
            edge_id = net.add_edge(_in_vertex(node_id), _out_vertex(node_id), capacity)
            self._edge_registry[edge_id] = ("node", node_id, node_id)

        for (src, dst), link in self.cluster.links.items():
            if not connection_is_valid(placement, src, dst, self.partial_inference):
                continue
            carries_activations = src != COORDINATOR and dst != COORDINATOR
            capacity = self.profiler.link_token_capacity(
                link, self.model, carries_activations
            )
            if src == COORDINATOR:
                u, v = SOURCE, _in_vertex(dst)
            elif dst == COORDINATOR:
                u, v = _out_vertex(src), SINK
            else:
                u, v = _out_vertex(src), _in_vertex(dst)
            edge_id = net.add_edge(u, v, capacity)
            self._edge_registry[edge_id] = ("connection", src, dst)
            self._connection_capacities[(src, dst)] = capacity

    # ------------------------------------------------------------------
    @property
    def network(self) -> FlowNetwork:
        """The underlying flow network (for inspection and tests)."""
        return self._network

    def valid_connections(self) -> list[tuple[str, str]]:
        """All valid network connections under the placement."""
        return list(self._connection_capacities)

    def solve(self) -> FlowSolution:
        """Run push-relabel and aggregate per-connection and per-node flow."""
        result = self._network.max_flow(SOURCE, SINK)
        connection_flows: dict[tuple[str, str], float] = {}
        node_flows: dict[str, float] = {}
        for edge_id, flow in result.edge_flows.items():
            kind, src, dst = self._edge_registry[edge_id]
            if kind == "node":
                node_flows[src] = node_flows.get(src, 0.0) + flow
            else:
                key = (src, dst)
                connection_flows[key] = connection_flows.get(key, 0.0) + flow
        return FlowSolution(
            max_flow=result.value,
            connection_flows=connection_flows,
            node_flows=node_flows,
            node_capacities=dict(self._node_capacities),
            connection_capacities=dict(self._connection_capacities),
        )


def placement_max_flow(
    cluster: Cluster,
    model: ModelSpec,
    placement: ModelPlacement,
    profiler: Profiler | None = None,
    partial_inference: bool = True,
) -> float:
    """Convenience: the maximum serving throughput of a placement."""
    graph = FlowGraph(cluster, model, placement, profiler, partial_inference)
    return graph.solve().max_flow
