"""Max-flow machinery: the cluster graph abstraction of paper §4.3.

:mod:`repro.flow.maxflow` is a self-contained flat-array Dinic's-algorithm
kernel (the paper uses preflow-push; the optimum is algorithm-independent
and Dinic terminates with a true flow, which the IWRR scheduler needs).
Arcs live in parallel arrays with an iterative blocking-flow search, and
the network supports ``set_capacity`` + repeated ``max_flow`` calls so the
planner can re-solve without rebuilding. Results are cross-checked against
networkx's preflow-push in the test suite.

:mod:`repro.flow.graph` turns ``(cluster, model, placement)`` into the
directed graph of Fig. 2 — split node vertices whose internal edge carries
the profiled token throughput ``T_j``, and connection edges whose capacity is
bandwidth divided by per-token message size — and solves for the maximum
serving throughput. A :class:`FlowGraph` is built once per cluster and
re-targeted at new candidate placements with ``reevaluate``, which rewrites
only the capacities of edges whose validity or stage size changed.
"""

from repro.flow.maxflow import FlowNetwork, MaxFlowResult
from repro.flow.graph import (
    FlowGraph,
    FlowSolution,
    SOURCE,
    SINK,
    connection_is_valid,
)

__all__ = [
    "FlowNetwork",
    "MaxFlowResult",
    "FlowGraph",
    "FlowSolution",
    "SOURCE",
    "SINK",
    "connection_is_valid",
]
