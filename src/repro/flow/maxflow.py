"""Maximum flow on the cluster graph abstraction.

The paper computes a placement's serving throughput by running a max-flow
algorithm (preflow-push in their implementation, §4.3) on the cluster's
graph abstraction. The optimum is algorithm-independent; we use Dinic's
blocking-flow algorithm because it terminates with a genuine *flow* (not a
preflow), which the scheduler needs intact for deriving IWRR weights from
per-edge flows (§5.1). On cluster-sized graphs (tens of vertices, hundreds
of edges) it solves in microseconds. Results are cross-checked against
networkx's preflow-push in the test suite.

Capacities are floats (tokens/second); a relative epsilon guards
comparisons. Parallel edges are supported and reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass

EPSILON = 1e-9


@dataclass
class _Edge:
    """Internal adjacency-list arc. ``rev`` indexes the reverse arc."""

    to: int
    capacity: float
    flow: float
    rev: int
    original: bool  # True for caller-added arcs, False for residual twins.
    edge_id: int  # Caller-visible id for original arcs, -1 otherwise.

    @property
    def residual(self) -> float:
        return self.capacity - self.flow


@dataclass(frozen=True)
class MaxFlowResult:
    """Outcome of a max-flow computation.

    Attributes:
        value: The maximum flow value from source to sink.
        edge_flows: Flow on each caller-added edge, keyed by the edge id
            returned from :meth:`FlowNetwork.add_edge`.
        min_cut_source_side: Vertex names reachable from the source in the
            residual graph (the source side of a minimum cut).
    """

    value: float
    edge_flows: dict[int, float]
    min_cut_source_side: frozenset[str]


class FlowNetwork:
    """A directed flow network over named vertices.

    Example:
        >>> net = FlowNetwork()
        >>> _ = net.add_edge("s", "a", 5.0)
        >>> _ = net.add_edge("a", "t", 3.0)
        >>> net.max_flow("s", "t").value
        3.0
    """

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._names: list[str] = []
        self._adj: list[list[_Edge]] = []
        self._edge_meta: list[tuple[str, str, float]] = []  # id -> (u, v, cap)
        self._edge_pos: list[tuple[int, int]] = []  # id -> (vertex, adj slot)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> int:
        """Ensure a vertex exists; returns its internal index."""
        if name in self._index:
            return self._index[name]
        idx = len(self._names)
        self._index[name] = idx
        self._names.append(name)
        self._adj.append([])
        return idx

    def add_edge(self, src: str, dst: str, capacity: float) -> int:
        """Add a directed edge; returns an edge id usable to query flow.

        Parallel edges between the same vertices are kept distinct.
        """
        if capacity < 0:
            raise ValueError(f"negative capacity on {src!r}->{dst!r}")
        if src == dst:
            raise ValueError(f"self-loop on {src!r}")
        u = self.add_node(src)
        v = self.add_node(dst)
        edge_id = len(self._edge_meta)
        forward = _Edge(
            to=v, capacity=capacity, flow=0.0, rev=len(self._adj[v]),
            original=True, edge_id=edge_id,
        )
        backward = _Edge(
            to=u, capacity=0.0, flow=0.0, rev=len(self._adj[u]),
            original=False, edge_id=-1,
        )
        self._adj[u].append(forward)
        self._adj[v].append(backward)
        self._edge_meta.append((src, dst, capacity))
        self._edge_pos.append((u, len(self._adj[u]) - 1))
        return edge_id

    @property
    def num_nodes(self) -> int:
        return len(self._names)

    @property
    def num_edges(self) -> int:
        return len(self._edge_meta)

    def node_names(self) -> list[str]:
        """All vertex names in insertion order."""
        return list(self._names)

    def edge_endpoints(self, edge_id: int) -> tuple[str, str, float]:
        """``(src, dst, capacity)`` of a caller-added edge."""
        return self._edge_meta[edge_id]

    # ------------------------------------------------------------------
    # Max flow (Dinic's blocking-flow algorithm)
    # ------------------------------------------------------------------
    def max_flow(self, source: str, sink: str) -> MaxFlowResult:
        """Compute max flow from ``source`` to ``sink``."""
        if source not in self._index or sink not in self._index:
            raise ValueError("source or sink vertex not present in the network")
        if source == sink:
            raise ValueError("source and sink must differ")
        s = self._index[source]
        t = self._index[sink]
        n = self.num_nodes

        scale = max(
            (e.capacity for adj in self._adj for e in adj if e.original),
            default=1.0,
        )
        eps = EPSILON * max(scale, 1.0)

        total = 0.0
        level = [0] * n
        iter_state = [0] * n

        def bfs() -> bool:
            """Build the level graph; returns whether the sink is reachable."""
            for i in range(n):
                level[i] = -1
            level[s] = 0
            queue = [s]
            head = 0
            while head < len(queue):
                u = queue[head]
                head += 1
                for edge in self._adj[u]:
                    if edge.residual > eps and level[edge.to] < 0:
                        level[edge.to] = level[u] + 1
                        queue.append(edge.to)
            return level[t] >= 0

        def dfs(u: int, limit: float) -> float:
            """Send up to ``limit`` along admissible paths from ``u``."""
            if u == t:
                return limit
            while iter_state[u] < len(self._adj[u]):
                edge = self._adj[u][iter_state[u]]
                if edge.residual > eps and level[edge.to] == level[u] + 1:
                    sent = dfs(edge.to, min(limit, edge.residual))
                    if sent > eps:
                        edge.flow += sent
                        self._adj[edge.to][edge.rev].flow -= sent
                        return sent
                iter_state[u] += 1
            return 0.0

        while bfs():
            for i in range(n):
                iter_state[i] = 0
            while True:
                sent = dfs(s, float("inf"))
                if sent <= eps:
                    break
                total += sent

        edge_flows = {}
        for edge_id, (u, slot) in enumerate(self._edge_pos):
            edge_flows[edge_id] = max(0.0, self._adj[u][slot].flow)

        cut = self._residual_reachable(s, eps)
        cut_names = frozenset(self._names[v] for v in cut)
        return MaxFlowResult(
            value=total, edge_flows=edge_flows, min_cut_source_side=cut_names
        )

    def _residual_reachable(self, s: int, eps: float) -> set[int]:
        """Vertices reachable from ``s`` in the residual graph."""
        seen = {s}
        stack = [s]
        while stack:
            u = stack.pop()
            for edge in self._adj[u]:
                if edge.residual > eps and edge.to not in seen:
                    seen.add(edge.to)
                    stack.append(edge.to)
        return seen
