"""Flat-array maximum-flow kernel for the cluster graph abstraction.

The paper computes a placement's serving throughput by running a max-flow
algorithm (preflow-push in their implementation, §4.3) on the cluster's
graph abstraction. The optimum is algorithm-independent; we use Dinic's
blocking-flow algorithm because it terminates with a genuine *flow* (not a
preflow), which the scheduler needs intact for deriving IWRR weights from
per-edge flows (§5.1). Results are cross-checked against networkx's
preflow-push in the test suite.

Because the planner evaluates thousands of candidate placements, the kernel
is built for *reuse*, not one-shot solves:

* Arcs live in parallel flat arrays (``_arc_to`` / ``_arc_cap`` /
  ``_arc_flow``) rather than per-arc objects. Arc ``2*i`` is edge ``i``'s
  forward arc and arc ``2*i + 1`` its residual twin, so the reverse of arc
  ``a`` is always ``a ^ 1``.
* Adjacency is a CSR index (``_csr_start`` / ``_csr_arcs``) over the
  *active* arcs — those whose edge currently has positive capacity — and is
  rebuilt lazily only when the active set changes. Zero-capacity edges
  (e.g. connections invalidated by the current placement) cost nothing
  during a solve.
* The blocking-flow search is iterative (advance/retreat with an explicit
  path stack), so chain networks thousands of vertices deep solve without
  touching Python's recursion limit.
* :meth:`FlowNetwork.set_capacity` retunes an edge in O(1) and
  :meth:`FlowNetwork.max_flow` may be called repeatedly on the same
  network; each call resets flows and solves the current capacities. The
  epsilon scale (largest original capacity) is maintained incrementally on
  ``add_edge``/``set_capacity`` instead of being rescanned per solve.

Capacities are floats (tokens/second); a relative epsilon guards
comparisons. Parallel edges are supported and reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass

EPSILON = 1e-9


@dataclass(frozen=True)
class MaxFlowResult:
    """Outcome of a max-flow computation.

    Attributes:
        value: The maximum flow value from source to sink.
        edge_flows: Flow on each caller-added edge, keyed by the edge id
            returned from :meth:`FlowNetwork.add_edge`.
        min_cut_source_side: Vertex names reachable from the source in the
            residual graph (the source side of a minimum cut).
    """

    value: float
    edge_flows: dict[int, float]
    min_cut_source_side: frozenset[str]


class FlowNetwork:
    """A directed flow network over named vertices, solvable repeatedly.

    Example:
        >>> net = FlowNetwork()
        >>> eid = net.add_edge("s", "a", 5.0)
        >>> _ = net.add_edge("a", "t", 3.0)
        >>> net.max_flow("s", "t").value
        3.0
        >>> net.set_capacity(eid, 1.0)
        >>> net.max_flow("s", "t").value
        1.0
    """

    def __init__(self) -> None:
        self._index: dict[str, int] = {}
        self._names: list[str] = []
        # Parallel arc arrays; arc 2i is edge i's forward arc, 2i+1 its
        # residual twin (rev(a) == a ^ 1; tail(a) == _arc_to[a ^ 1]).
        self._arc_to: list[int] = []
        self._arc_cap: list[float] = []
        self._arc_flow: list[float] = []
        # CSR adjacency over active arcs, rebuilt lazily.
        self._csr_start: list[int] = []
        self._csr_arcs: list[int] = []
        self._csr_dirty = True
        # Largest original capacity, maintained incrementally; goes stale
        # (dirty) only when the current maximum is lowered.
        self._max_cap = 0.0
        self._max_cap_dirty = False

    # ------------------------------------------------------------------
    # Construction and reuse
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> int:
        """Ensure a vertex exists; returns its internal index."""
        if name in self._index:
            return self._index[name]
        idx = len(self._names)
        self._index[name] = idx
        self._names.append(name)
        self._csr_dirty = True
        return idx

    def add_edge(self, src: str, dst: str, capacity: float) -> int:
        """Add a directed edge; returns an edge id usable to query flow.

        Parallel edges between the same vertices are kept distinct.
        """
        if capacity < 0:
            raise ValueError(f"negative capacity on {src!r}->{dst!r}")
        if src == dst:
            raise ValueError(f"self-loop on {src!r}")
        u = self.add_node(src)
        v = self.add_node(dst)
        edge_id = len(self._arc_to) // 2
        self._arc_to.extend((v, u))
        self._arc_cap.extend((capacity, 0.0))
        self._arc_flow.extend((0.0, 0.0))
        if capacity > self._max_cap:
            self._max_cap = capacity
        self._csr_dirty = True
        return edge_id

    def set_capacity(self, edge_id: int, capacity: float) -> None:
        """Retune a caller-added edge's capacity in place.

        The next :meth:`max_flow` call solves with the new capacities; no
        rebuild is needed. Setting a capacity to zero removes the edge from
        the active adjacency, so it costs nothing during solves.
        """
        if capacity < 0:
            raise ValueError(f"negative capacity on edge {edge_id}")
        arc = 2 * edge_id
        if not 0 <= arc < len(self._arc_to):
            raise ValueError(f"unknown edge id {edge_id}")
        old = self._arc_cap[arc]
        if old == capacity:
            return
        self._arc_cap[arc] = capacity
        if (old > 0.0) != (capacity > 0.0):
            self._csr_dirty = True
        if capacity >= self._max_cap:
            self._max_cap = capacity
            self._max_cap_dirty = False
        elif old >= self._max_cap:
            # The former maximum shrank; recompute lazily at the next solve.
            self._max_cap_dirty = True

    def reset_flow(self) -> None:
        """Zero all arc flows (done automatically by :meth:`max_flow`)."""
        self._arc_flow = [0.0] * len(self._arc_flow)

    @property
    def num_nodes(self) -> int:
        return len(self._names)

    @property
    def num_edges(self) -> int:
        return len(self._arc_to) // 2

    def node_names(self) -> list[str]:
        """All vertex names in insertion order."""
        return list(self._names)

    def edge_endpoints(self, edge_id: int) -> tuple[str, str, float]:
        """``(src, dst, capacity)`` of a caller-added edge (current values)."""
        arc = 2 * edge_id
        if not 0 <= arc < len(self._arc_to):
            raise ValueError(f"unknown edge id {edge_id}")
        return (
            self._names[self._arc_to[arc ^ 1]],
            self._names[self._arc_to[arc]],
            self._arc_cap[arc],
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _ensure_csr(self) -> None:
        """Rebuild the active-arc CSR adjacency if it is stale."""
        if not self._csr_dirty:
            return
        n = len(self._names)
        arc_to = self._arc_to
        arc_cap = self._arc_cap
        buckets: list[list[int]] = [[] for _ in range(n)]
        for arc in range(0, len(arc_to), 2):
            if arc_cap[arc] > 0.0:
                buckets[arc_to[arc ^ 1]].append(arc)
                buckets[arc_to[arc]].append(arc ^ 1)
        start = [0] * (n + 1)
        arcs: list[int] = []
        for u in range(n):
            arcs.extend(buckets[u])
            start[u + 1] = len(arcs)
        self._csr_start = start
        self._csr_arcs = arcs
        self._csr_dirty = False

    def _epsilon(self) -> float:
        """Solve epsilon, scaled to the largest original capacity."""
        if self._max_cap_dirty:
            caps = self._arc_cap
            self._max_cap = max(caps[0::2], default=0.0)
            self._max_cap_dirty = False
        return EPSILON * max(self._max_cap, 1.0)

    # ------------------------------------------------------------------
    # Max flow (Dinic's blocking-flow algorithm, iterative)
    # ------------------------------------------------------------------
    def max_flow(self, source: str, sink: str) -> MaxFlowResult:
        """Compute max flow from ``source`` to ``sink``.

        Flows are reset first, so repeated calls — with capacities retuned
        via :meth:`set_capacity` in between — behave exactly like solving a
        freshly built network.
        """
        if source not in self._index or sink not in self._index:
            raise ValueError("source or sink vertex not present in the network")
        if source == sink:
            raise ValueError("source and sink must differ")
        s = self._index[source]
        t = self._index[sink]
        self.reset_flow()
        self._ensure_csr()
        eps = self._epsilon()

        n = len(self._names)
        arc_to = self._arc_to
        arc_cap = self._arc_cap
        arc_flow = self._arc_flow
        csr_start = self._csr_start
        csr_arcs = self._csr_arcs

        total = 0.0
        level = [-1] * n

        while True:
            # --- BFS: build the level graph over active residual arcs.
            for i in range(n):
                level[i] = -1
            level[s] = 0
            queue = [s]
            head = 0
            while head < len(queue):
                u = queue[head]
                head += 1
                lvl = level[u] + 1
                for k in range(csr_start[u], csr_start[u + 1]):
                    a = csr_arcs[k]
                    v = arc_to[a]
                    if level[v] < 0 and arc_cap[a] - arc_flow[a] > eps:
                        level[v] = lvl
                        queue.append(v)
            if level[t] < 0:
                break

            # --- Blocking flow: iterative advance/retreat along the level
            # graph, augmenting whenever the sink is reached.
            it = csr_start[:-1].copy()
            path: list[int] = []
            u = s
            while True:
                if u == t:
                    push = min(arc_cap[a] - arc_flow[a] for a in path)
                    total += push
                    cut = 0
                    for i, a in enumerate(path):
                        arc_flow[a] += push
                        arc_flow[a ^ 1] -= push
                        if cut == 0 and arc_cap[a] - arc_flow[a] <= eps:
                            cut = i + 1
                    # Retreat to the tail of the first saturated arc.
                    first = path[cut - 1]
                    del path[cut - 1 :]
                    u = arc_to[first ^ 1]
                    continue
                advanced = False
                pos = it[u]
                end = csr_start[u + 1]
                while pos < end:
                    a = csr_arcs[pos]
                    v = arc_to[a]
                    if level[v] == level[u] + 1 and arc_cap[a] - arc_flow[a] > eps:
                        it[u] = pos
                        path.append(a)
                        u = v
                        advanced = True
                        break
                    pos += 1
                if advanced:
                    continue
                it[u] = pos
                if u == s:
                    break
                # Dead end: prune the vertex and back out of the last arc.
                level[u] = -1
                a = path.pop()
                u = arc_to[a ^ 1]
                it[u] += 1

        edge_flows = {}
        for edge_id in range(len(arc_to) // 2):
            flow = arc_flow[2 * edge_id]
            edge_flows[edge_id] = flow if flow > 0.0 else 0.0
        cut_names = frozenset(
            self._names[v] for v in self._residual_reachable(s, eps)
        )
        return MaxFlowResult(
            value=total, edge_flows=edge_flows, min_cut_source_side=cut_names
        )

    def _residual_reachable(self, s: int, eps: float) -> set[int]:
        """Vertices reachable from ``s`` in the residual graph."""
        self._ensure_csr()
        arc_to = self._arc_to
        arc_cap = self._arc_cap
        arc_flow = self._arc_flow
        csr_start = self._csr_start
        csr_arcs = self._csr_arcs
        seen = {s}
        stack = [s]
        while stack:
            u = stack.pop()
            for k in range(csr_start[u], csr_start[u + 1]):
                a = csr_arcs[k]
                v = arc_to[a]
                if v not in seen and arc_cap[a] - arc_flow[a] > eps:
                    seen.add(v)
                    stack.append(v)
        return seen
