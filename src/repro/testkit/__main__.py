"""Replay one scenario address with full verification.

This is the command every failing sweep test prints::

    PYTHONPATH=src python -m repro.testkit <family> <seed> [--size smoke]

Exit status 0 means every invariant and oracle held; 1 means violations
(printed, one per line); 2 means a bad address.
"""

from __future__ import annotations

import argparse
import sys

from repro.scenarios.generator import ALL_FAMILIES, generate_scenario
from repro.testkit.differential import check_milp_oracles
from repro.testkit.harness import verify_scenario


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit",
        description="Replay and verify one generated scenario.",
    )
    parser.add_argument("family", choices=ALL_FAMILIES)
    parser.add_argument("seed", type=int)
    parser.add_argument(
        "--size", default="smoke", choices=("smoke", "full"),
        help="sweep tier the scenario was generated at",
    )
    parser.add_argument(
        "--skip-determinism", action="store_true",
        help="skip the double-run determinism check",
    )
    parser.add_argument(
        "--milp-oracles", action="store_true",
        help="also run the (slower) MILP differential oracles",
    )
    args = parser.parse_args(argv)

    scenario = generate_scenario(args.family, args.seed, args.size)
    print(scenario.describe())

    report = verify_scenario(
        args.family, args.seed, args.size,
        determinism=not args.skip_determinism,
    )
    if args.milp_oracles:
        report.violations.extend(
            check_milp_oracles(args.family, args.seed, args.size)
        )

    print(
        f"planner={report.planner_used} "
        f"planned_throughput={report.planned_throughput:.2f} tok/s"
    )
    if report.metrics is not None:
        m = report.metrics
        print(
            f"finished {m.requests_finished}/{m.requests_submitted} requests, "
            f"decode throughput {m.decode_throughput:.2f} tok/s, "
            f"{m.requests_retried} retried, {m.requests_migrated} migrated, "
            f"{m.requests_shed} shed, {m.requests_lost} lost"
        )
    if report.ok:
        print("OK: every invariant and oracle held")
        return 0
    print(report.failure_message(), file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
