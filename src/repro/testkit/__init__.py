"""Invariant and differential verification over generated scenarios.

The regression safety net for the whole stack: any scenario address can
be run end-to-end with every cross-layer invariant and fast-vs-reference
oracle checked, and any failure prints the one-line command that replays
it (``PYTHONPATH=src python -m repro.testkit <family> <seed>``).
"""

from repro.testkit.differential import (
    check_backend_agreement,
    check_batch_engine,
    check_incremental_compile,
    check_lns_modes_agree,
    check_milp_oracles,
    check_reevaluate_vs_rebuild,
    random_placements,
)
from repro.testkit.harness import (
    ScenarioReport,
    assert_scenario_ok,
    placement_intervals,
    plan_scenario,
    run_scenario,
    verify_scenario,
    verify_scenario_record,
)
from repro.testkit.invariants import (
    SchedulerAuditor,
    TenantKVSampler,
    Violation,
    check_chaos,
    check_elastic,
    check_flow_solution,
    check_planner_result,
    check_simulation,
    check_tenancy,
)

__all__ = [
    "ScenarioReport",
    "SchedulerAuditor",
    "TenantKVSampler",
    "Violation",
    "assert_scenario_ok",
    "check_backend_agreement",
    "check_batch_engine",
    "check_chaos",
    "check_elastic",
    "check_flow_solution",
    "check_incremental_compile",
    "check_lns_modes_agree",
    "check_milp_oracles",
    "check_planner_result",
    "check_reevaluate_vs_rebuild",
    "check_simulation",
    "check_tenancy",
    "placement_intervals",
    "plan_scenario",
    "random_placements",
    "run_scenario",
    "verify_scenario",
    "verify_scenario_record",
]
