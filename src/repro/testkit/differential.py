"""Differential oracles: fast paths must agree with their reference paths.

PRs 1-3 added incremental machinery whose only specification is "same
answer as the slow path": :meth:`FlowGraph.reevaluate` vs. a fresh graph
rebuild, incremental :meth:`MilpProblem.compile` vs. a cold compile, the
bounds-tightening LNS vs. ``lns_mode="rebuild"``, and the ``bnb`` vs.
``highs`` MILP backends. Each checker here runs both paths on material
derived from one generated scenario and returns :class:`Violation` lists,
so a sweep cross-validates the whole stack instead of spot-checking
hand-written fixtures.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.errors import PlacementError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.milp.scipy_backend import solve_with_highs
from repro.placement.helix_milp import HelixMilpPlanner
from repro.scenarios.generator import Scenario, _small_model
from repro.testkit.invariants import Violation

#: Nodes kept when a check shrinks a scenario cluster to bound MILP cost.
_MILP_NODE_CAP = 4


def _rng(scenario: Scenario, salt: str) -> random.Random:
    """A derived generator: deterministic per (scenario address, check)."""
    return random.Random(
        f"testkit:{salt}:{scenario.family}:{scenario.seed}:{scenario.size}"
    )


def _milp_material(scenario: Scenario):
    """A bounded (cluster, model) pair for MILP-backed checks.

    MILP differential oracles must terminate quickly on every address in
    a sweep, so they run on at most :data:`_MILP_NODE_CAP` nodes of the
    scenario's topology and always on the small model shape (the wide
    shapes are exercised by the flow-layer checks, which are cheap).
    """
    cluster = scenario.cluster
    if len(cluster) > _MILP_NODE_CAP:
        cluster = cluster.subcluster(
            cluster.node_ids[:_MILP_NODE_CAP],
            name=f"{cluster.name}-milp",
        )
    model = _small_model(_rng(scenario, "milp-model"))
    return cluster, model


# ----------------------------------------------------------------------
# Flow layer: reevaluate vs. rebuild
# ----------------------------------------------------------------------
def random_placements(
    scenario: Scenario, count: int = 12
) -> list[ModelPlacement]:
    """Seeded random placements on the scenario's cluster.

    Placements always pin a first-layer and a last-layer holder (so the
    flow graph accepts them) but are otherwise unconstrained — partial
    covers and zero-flow configurations are deliberately included, since
    the incremental evaluator must agree with the rebuild on those too.
    """
    rng = _rng(scenario, "placements")
    cluster = scenario.cluster
    model = scenario.model
    node_ids = list(cluster.node_ids)
    helper = _bounds_helper(scenario)
    bounds = {nid: max(1, helper[nid]) for nid in node_ids}
    num_layers = model.num_layers

    placements = []
    for _ in range(count):
        intervals: dict[str, tuple[int, int]] = {}
        for nid in node_ids:
            if rng.random() < 0.25:
                continue  # node sits out this placement
            span = rng.randint(1, min(bounds[nid], num_layers))
            start = rng.randrange(num_layers - span + 1)
            intervals[nid] = (start, start + span)
        # Pin entry and exit holders so the placement is graph-admissible.
        first = rng.choice(node_ids)
        span = rng.randint(1, min(bounds[first], num_layers))
        intervals[first] = (0, span)
        last = rng.choice(node_ids)
        span = rng.randint(1, min(bounds[last], num_layers))
        intervals[last] = (num_layers - span, num_layers)
        placements.append(ModelPlacement.from_intervals(num_layers, intervals))
    return placements


def _bounds_helper(scenario: Scenario) -> dict[str, int]:
    from repro.cluster.profiler import Profiler

    profiler = Profiler()
    return {
        nid: min(
            profiler.max_layers(scenario.cluster.node(nid), scenario.model),
            scenario.model.num_layers,
        )
        for nid in scenario.cluster.node_ids
    }


def check_reevaluate_vs_rebuild(
    scenario: Scenario, count: int = 12
) -> list[Violation]:
    """`FlowGraph.reevaluate` must match a from-scratch rebuild exactly."""
    violations: list[Violation] = []
    placements = random_placements(scenario, count)
    evaluator: FlowGraph | None = None
    for index, placement in enumerate(placements):
        try:
            fresh = FlowGraph(
                scenario.cluster, scenario.model, placement
            ).solve()
        except PlacementError:
            # The rebuild rejects it; the incremental path must agree.
            if evaluator is not None:
                try:
                    evaluator.reevaluate(placement)
                except PlacementError:
                    pass
                else:
                    violations.append(Violation(
                        "reevaluate_vs_rebuild",
                        f"placement #{index}: rebuild rejected the "
                        "placement but reevaluate accepted it",
                    ))
            continue
        if evaluator is None:
            evaluator = FlowGraph(
                scenario.cluster, scenario.model, placement
            )
            incremental = evaluator.solve()
        else:
            try:
                incremental = evaluator.reevaluate(placement)
            except PlacementError as exc:
                violations.append(Violation(
                    "reevaluate_vs_rebuild",
                    f"placement #{index}: rebuild accepted the placement "
                    f"but reevaluate rejected it ({exc})",
                ))
                continue
        scale = max(1.0, abs(fresh.max_flow))
        if abs(incremental.max_flow - fresh.max_flow) > 1e-6 * scale:
            violations.append(Violation(
                "reevaluate_vs_rebuild",
                f"placement #{index}: incremental max flow "
                f"{incremental.max_flow} != rebuild {fresh.max_flow}",
            ))
        for key, value in fresh.connection_flows.items():
            other = incremental.connection_flows.get(key)
            if other is None:
                violations.append(Violation(
                    "reevaluate_vs_rebuild",
                    f"placement #{index}: connection {key} missing from "
                    "the incremental solution",
                ))
            # Per-connection flows may legitimately differ between two
            # optimal solutions; only the valid-connection *sets* and the
            # value must agree, checked above and here.
    return violations


# ----------------------------------------------------------------------
# MILP layer: backend agreement
# ----------------------------------------------------------------------
def check_backend_agreement(
    scenario: Scenario,
    time_limit: float = 20.0,
) -> list[Violation]:
    """The ``bnb`` and ``highs`` backends must find equal optima.

    Solves the Helix formulation of a bounded slice of the scenario's
    cluster to (near-)optimality with both backends and compares
    objectives.
    """
    cluster, model = _milp_material(scenario)
    planner = HelixMilpPlanner(cluster, model)
    formulation = planner.build_formulation()
    highs = solve_with_highs(formulation.problem, time_limit=time_limit)
    bnb = BranchAndBoundSolver(
        formulation.problem, time_limit=2 * time_limit, gap_tolerance=1e-6
    ).solve()
    violations: list[Violation] = []
    if not highs.status.has_solution or not bnb.status.has_solution:
        violations.append(Violation(
            "backend_agreement",
            f"missing solution: highs={highs.status.value} "
            f"bnb={bnb.status.value}",
        ))
        return violations
    scale = max(1.0, abs(highs.objective))
    if abs(highs.objective - bnb.objective) > 1e-5 * scale:
        violations.append(Violation(
            "backend_agreement",
            f"objectives disagree: highs={highs.objective} "
            f"bnb={bnb.objective}",
        ))
    return violations


# ----------------------------------------------------------------------
# MILP layer: incremental LNS vs. rebuild LNS
# ----------------------------------------------------------------------
def check_lns_modes_agree(
    scenario: Scenario,
    rounds: int = 3,
    time_limit: float = 5.0,
) -> list[Violation]:
    """Bounds-tightening LNS must match the rebuild-mode reference.

    Both planners run the same seeded window sequence (``lns_window=2``
    keeps the effective window identical across modes) from the same
    warm start, so their final throughputs must agree.
    """
    cluster, model = _milp_material(scenario)
    results = {}
    for mode in ("incremental", "rebuild"):
        planner = HelixMilpPlanner(
            cluster, model,
            time_limit=time_limit,
            lns_rounds=rounds,
            lns_window=2,
            lns_time_limit=time_limit,
            lns_mode=mode,
            lns_seed=scenario.seed,
        )
        results[mode] = planner.plan().max_throughput
    scale = max(1.0, abs(results["rebuild"]))
    if abs(results["incremental"] - results["rebuild"]) > 1e-5 * scale:
        return [Violation(
            "lns_modes_agree",
            f"incremental LNS throughput {results['incremental']} != "
            f"rebuild {results['rebuild']}",
        )]
    return []


# ----------------------------------------------------------------------
# MILP layer: incremental compile vs. cold compile
# ----------------------------------------------------------------------
def check_incremental_compile(scenario: Scenario) -> list[Violation]:
    """Append/truncate compiles must equal an invalidated cold compile."""
    cluster, model = _milp_material(scenario)
    planner = HelixMilpPlanner(cluster, model)
    formulation = planner.build_formulation()
    problem = formulation.problem

    violations: list[Violation] = []

    def compare(tag: str) -> None:
        warm = problem.compile()
        problem.invalidate()
        cold = problem.compile()
        if not np.array_equal(
            warm.a_matrix.toarray(), cold.a_matrix.toarray()
        ):
            violations.append(Violation(
                "incremental_compile",
                f"{tag}: constraint matrices diverge between incremental "
                "and cold compile",
            ))
        for name in ("c", "constraint_lower", "constraint_upper",
                     "lower", "upper", "integrality"):
            if not np.array_equal(getattr(warm, name), getattr(cold, name)):
                violations.append(Violation(
                    "incremental_compile",
                    f"{tag}: array {name!r} diverges between incremental "
                    "and cold compile",
                ))

    problem.compile()  # prime the cache
    some_var = problem.variables[0]
    base_len = len(problem.constraints)
    problem.add_constraint(some_var <= some_var.upper, name="testkit_append")
    compare("append")
    del problem.constraints[base_len:]
    compare("truncate")
    return violations


def check_milp_oracles(
    family: str, seed: int, size: str = "smoke"
) -> list[Violation]:
    """All MILP differential oracles for one scenario address.

    Each check gets a freshly-generated scenario (planning mutates
    nothing, but the oracles must not share evaluator state), so this is
    the one entry point the CLI and the extended sweep both use.
    """
    from repro.scenarios.generator import generate_scenario

    violations: list[Violation] = []
    for check in (
        check_backend_agreement,
        check_lns_modes_agree,
        check_incremental_compile,
    ):
        violations.extend(check(generate_scenario(family, seed, size)))
    return violations


# ----------------------------------------------------------------------
# Simulation engines: hop-table engine vs. per-hop vs. the frozen baseline
# ----------------------------------------------------------------------
def _nan_equal(a: float, b: float) -> bool:
    """Exact float equality with NaN == NaN (unset timestamps)."""
    return a == b or (a != a and b != b)


def _run_engine(family: str, seed: int, size: str, engine: str):
    """Plan and serve one freshly-generated scenario on one engine.

    ``engine`` is ``"legacy"`` (the frozen pre-overhaul loop), ``"hop"``
    (the current engine), ``"perhop"`` (the current engine with
    coalescing disabled — one heap event per hop), or ``"batch"`` (the
    cross-request batch-level engine). Every engine gets its own
    generation: serving and churn mutate the cluster, and schedulers are
    stateful.
    """
    from repro.bench.runner import make_planner, make_scheduler
    from repro.core.errors import ReproError
    from repro.scenarios.generator import generate_scenario
    from repro.sim._legacy_reference import LegacySimulation
    from repro.sim.simulator import Simulation

    scenario = generate_scenario(family, seed, size)
    tried = [scenario.planner_method] + [
        method for method in ("swarm", "petals", "sp+")
        if method != scenario.planner_method
    ]
    planner = result = None
    for method in tried:
        try:
            planner = make_planner(method, scenario.cluster, scenario.model)
            result = planner.plan()
        except ReproError:
            continue
        if result.max_throughput > 0:
            break
    else:  # pragma: no cover - harness guarantees a planner serves
        raise ReproError(f"no planner serves {scenario.describe()}")
    scheduler = make_scheduler(
        scenario.scheduler_method, scenario.cluster, scenario.model,
        result, seed=scenario.seed,
    )
    kwargs = {}
    if engine == "legacy":
        sim_cls = LegacySimulation
    else:
        sim_cls = Simulation
        if engine == "perhop":
            kwargs["coalescing"] = False
        elif engine == "batch":
            kwargs["engine"] = "batch"
    sim = sim_cls(
        cluster=scenario.cluster,
        model=scenario.model,
        placement=result.placement,
        scheduler=scheduler,
        requests=scenario.requests,
        max_time=scenario.max_time,
        seed=scenario.seed,
        **kwargs,
    )
    for event in scenario.churn:
        if event.time <= scenario.max_time:
            sim.schedule_event(event.time, event.apply)
    metrics = sim.run()
    return sim, metrics


def _engine_observables(sim, metrics) -> dict:
    """Every externally-visible quantity an engine run produces."""
    from repro.sim.metrics import TokenTimeline

    records = {}
    for record in sim.records:
        records[record.request_id] = (
            record.tokens_generated,
            tuple(record.token_times),
            record.arrival_time,
            record.schedule_time,
            record.first_token_time,
            record.finish_time,
            record.retries,
            record.migrations,
            record.tokens_lost,
        )
    pools = {
        node_id: (pool.used_tokens, pool.peak_tokens, pool.overflow_events)
        for node_id, pool in sim.kv_pools.items()
    }
    executors = {
        node_id: (
            executor.stats.batches,
            executor.stats.busy_time,
            executor.stats.token_layers,
            executor.stats.tokens,
        )
        for node_id, executor in sim.executors.items()
    }
    channels = {
        key: (
            channel.messages_sent,
            channel.bytes_sent,
            channel.next_free_time,
            channel.total_queueing_delay,
            channel.max_queueing_delay,
        )
        for key, channel in sim.channels.items()
    }
    # The legacy engine keeps exact token times; fold them into the new
    # engine's bucket layout so the timelines compare like for like.
    if hasattr(sim, "token_buckets"):
        buckets = sim.token_buckets
    else:
        timeline = TokenTimeline()
        for when in sim.token_timeline:
            timeline.add(when)
        buckets = timeline.bucket_counts()
    while buckets and buckets[-1] == 0:
        buckets.pop()
    tenancy = None
    manager = getattr(sim, "tenancy", None)
    if manager is not None:
        tenancy = {
            "tokens_by_tenant": dict(manager.tokens_by_tenant),
            "starvation_events": len(manager.starvation_events),
        }
    return {
        "records": records,
        "pools": pools,
        "executors": executors,
        "channels": channels,
        "buckets": buckets,
        "metrics": metrics,
        "now": sim.now,
        "tenancy": tenancy,
    }


def _compare_observables(tag: str, ours: dict, reference: dict) -> list[Violation]:
    """Exact comparison of two engines' observables (NaN-tolerant)."""
    violations: list[Violation] = []

    def flag(what: str, detail: str) -> None:
        violations.append(Violation(
            "sim_engine_equivalence", f"[{tag}] {what}: {detail}"
        ))

    for name in ("records", "pools", "executors", "channels"):
        a, b = ours[name], reference[name]
        if set(a) != set(b):
            flag(name, f"key sets differ: {set(a) ^ set(b)}")
            continue
        for key in a:
            row_a, row_b = a[key], b[key]
            same = len(row_a) == len(row_b) and all(
                x == y or (isinstance(x, float) and isinstance(y, float)
                           and _nan_equal(x, y))
                for x, y in zip(row_a, row_b)
            )
            if not same:
                flag(name, f"{key!r}: {row_a} != {row_b}")
    if ours["buckets"] != reference["buckets"]:
        flag("token_timeline", "bucket counts differ")
    if ours.get("tenancy") != reference.get("tenancy"):
        flag(
            "tenancy",
            f"{ours.get('tenancy')} != {reference.get('tenancy')}",
        )
    if not _nan_equal(ours["now"], reference["now"]):
        flag("now", f"{ours['now']} != {reference['now']}")
    m_a, m_b = ours["metrics"], reference["metrics"]
    for field_name in (
        "decode_throughput", "requests_finished", "requests_submitted",
        "duration", "decode_tokens", "kv_overflow_events",
        "avg_pipeline_depth", "requests_retried", "requests_migrated",
        "tokens_lost",
    ):
        if not _nan_equal(
            float(getattr(m_a, field_name)), float(getattr(m_b, field_name))
        ):
            flag("metrics", f"{field_name}: {getattr(m_a, field_name)} != "
                            f"{getattr(m_b, field_name)}")
    for dist in ("prompt_latency", "decode_latency"):
        stats_a, stats_b = getattr(m_a, dist), getattr(m_b, dist)
        for q in ("count", "mean", "p5", "p25", "p50", "p75", "p95"):
            if not _nan_equal(
                float(getattr(stats_a, q)), float(getattr(stats_b, q))
            ):
                flag("metrics", f"{dist}.{q}: {getattr(stats_a, q)} != "
                                f"{getattr(stats_b, q)}")
    return violations


def check_sim_engines(
    family: str, seed: int, size: str = "smoke"
) -> list[Violation]:
    """The simulator-overhaul differential oracle for one address.

    Replays the scenario through the frozen pre-overhaul engine, the
    hop-table engine, the hop-table engine with coalescing disabled, and
    the cross-request batch-level engine, and requires *exactly* equal
    observables — per-request token times, serving metrics, KV pools,
    executor utilization, and per-channel network statistics. This is the
    guarantee behind the overhaul: hop groups, the closed-window
    fast-forward, the vectorized forwarding, and the batch engine's dense
    arrays and macro-stepping change wall-clock speed and nothing else.
    """
    legacy = _engine_observables(*_run_engine(family, seed, size, "legacy"))
    hop = _engine_observables(*_run_engine(family, seed, size, "hop"))
    perhop = _engine_observables(*_run_engine(family, seed, size, "perhop"))
    batch = _engine_observables(*_run_engine(family, seed, size, "batch"))
    violations = _compare_observables("hop-vs-legacy", hop, legacy)
    violations.extend(_compare_observables("perhop-vs-legacy", perhop, legacy))
    violations.extend(_compare_observables("batch-vs-legacy", batch, legacy))
    return violations


def check_batch_engine(
    family: str, seed: int, size: str = "smoke"
) -> list[Violation]:
    """Batch-engine differential for full-config scenario addresses.

    The plain engine matrix (:func:`check_sim_engines`) serves requests
    and raw churn only; this oracle replays one address through the
    *complete* harness configuration — detection-mode chaos controllers,
    elastic residency and autoscaling, tenancy with fair queueing and
    admission — on the hop-table engine and the batch engine, and
    requires exactly equal observables (per-tenant token accounting
    included). Works for every family in
    :data:`repro.scenarios.generator.ALL_FAMILIES`; the chaos / elastic /
    tenant families are the ones only this oracle covers.
    """
    # Imported lazily: the harness imports this module at load time.
    from repro.scenarios.generator import generate_scenario
    from repro.testkit.harness import run_scenario

    runs = {}
    violations: list[Violation] = []
    for engine in ("hop", "batch"):
        report = run_scenario(generate_scenario(family, seed, size), engine)
        for violation in report.violations:
            violations.append(Violation(
                violation.invariant,
                f"[{engine} engine] {violation.detail}",
            ))
        runs[engine] = _engine_observables(report.sim, report.metrics)
    violations.extend(
        _compare_observables("batch-vs-hop", runs["batch"], runs["hop"])
    )
    return violations
