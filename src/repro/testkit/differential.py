"""Differential oracles: fast paths must agree with their reference paths.

PRs 1-3 added incremental machinery whose only specification is "same
answer as the slow path": :meth:`FlowGraph.reevaluate` vs. a fresh graph
rebuild, incremental :meth:`MilpProblem.compile` vs. a cold compile, the
bounds-tightening LNS vs. ``lns_mode="rebuild"``, and the ``bnb`` vs.
``highs`` MILP backends. Each checker here runs both paths on material
derived from one generated scenario and returns :class:`Violation` lists,
so a sweep cross-validates the whole stack instead of spot-checking
hand-written fixtures.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.errors import PlacementError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.milp.branch_and_bound import BranchAndBoundSolver
from repro.milp.scipy_backend import solve_with_highs
from repro.placement.helix_milp import HelixMilpPlanner
from repro.scenarios.generator import Scenario, _small_model
from repro.testkit.invariants import Violation

#: Nodes kept when a check shrinks a scenario cluster to bound MILP cost.
_MILP_NODE_CAP = 4


def _rng(scenario: Scenario, salt: str) -> random.Random:
    """A derived generator: deterministic per (scenario address, check)."""
    return random.Random(
        f"testkit:{salt}:{scenario.family}:{scenario.seed}:{scenario.size}"
    )


def _milp_material(scenario: Scenario):
    """A bounded (cluster, model) pair for MILP-backed checks.

    MILP differential oracles must terminate quickly on every address in
    a sweep, so they run on at most :data:`_MILP_NODE_CAP` nodes of the
    scenario's topology and always on the small model shape (the wide
    shapes are exercised by the flow-layer checks, which are cheap).
    """
    cluster = scenario.cluster
    if len(cluster) > _MILP_NODE_CAP:
        cluster = cluster.subcluster(
            cluster.node_ids[:_MILP_NODE_CAP],
            name=f"{cluster.name}-milp",
        )
    model = _small_model(_rng(scenario, "milp-model"))
    return cluster, model


# ----------------------------------------------------------------------
# Flow layer: reevaluate vs. rebuild
# ----------------------------------------------------------------------
def random_placements(
    scenario: Scenario, count: int = 12
) -> list[ModelPlacement]:
    """Seeded random placements on the scenario's cluster.

    Placements always pin a first-layer and a last-layer holder (so the
    flow graph accepts them) but are otherwise unconstrained — partial
    covers and zero-flow configurations are deliberately included, since
    the incremental evaluator must agree with the rebuild on those too.
    """
    rng = _rng(scenario, "placements")
    cluster = scenario.cluster
    model = scenario.model
    node_ids = list(cluster.node_ids)
    helper = _bounds_helper(scenario)
    bounds = {nid: max(1, helper[nid]) for nid in node_ids}
    num_layers = model.num_layers

    placements = []
    for _ in range(count):
        intervals: dict[str, tuple[int, int]] = {}
        for nid in node_ids:
            if rng.random() < 0.25:
                continue  # node sits out this placement
            span = rng.randint(1, min(bounds[nid], num_layers))
            start = rng.randrange(num_layers - span + 1)
            intervals[nid] = (start, start + span)
        # Pin entry and exit holders so the placement is graph-admissible.
        first = rng.choice(node_ids)
        span = rng.randint(1, min(bounds[first], num_layers))
        intervals[first] = (0, span)
        last = rng.choice(node_ids)
        span = rng.randint(1, min(bounds[last], num_layers))
        intervals[last] = (num_layers - span, num_layers)
        placements.append(ModelPlacement.from_intervals(num_layers, intervals))
    return placements


def _bounds_helper(scenario: Scenario) -> dict[str, int]:
    from repro.cluster.profiler import Profiler

    profiler = Profiler()
    return {
        nid: min(
            profiler.max_layers(scenario.cluster.node(nid), scenario.model),
            scenario.model.num_layers,
        )
        for nid in scenario.cluster.node_ids
    }


def check_reevaluate_vs_rebuild(
    scenario: Scenario, count: int = 12
) -> list[Violation]:
    """`FlowGraph.reevaluate` must match a from-scratch rebuild exactly."""
    violations: list[Violation] = []
    placements = random_placements(scenario, count)
    evaluator: FlowGraph | None = None
    for index, placement in enumerate(placements):
        try:
            fresh = FlowGraph(
                scenario.cluster, scenario.model, placement
            ).solve()
        except PlacementError:
            # The rebuild rejects it; the incremental path must agree.
            if evaluator is not None:
                try:
                    evaluator.reevaluate(placement)
                except PlacementError:
                    pass
                else:
                    violations.append(Violation(
                        "reevaluate_vs_rebuild",
                        f"placement #{index}: rebuild rejected the "
                        "placement but reevaluate accepted it",
                    ))
            continue
        if evaluator is None:
            evaluator = FlowGraph(
                scenario.cluster, scenario.model, placement
            )
            incremental = evaluator.solve()
        else:
            try:
                incremental = evaluator.reevaluate(placement)
            except PlacementError as exc:
                violations.append(Violation(
                    "reevaluate_vs_rebuild",
                    f"placement #{index}: rebuild accepted the placement "
                    f"but reevaluate rejected it ({exc})",
                ))
                continue
        scale = max(1.0, abs(fresh.max_flow))
        if abs(incremental.max_flow - fresh.max_flow) > 1e-6 * scale:
            violations.append(Violation(
                "reevaluate_vs_rebuild",
                f"placement #{index}: incremental max flow "
                f"{incremental.max_flow} != rebuild {fresh.max_flow}",
            ))
        for key, value in fresh.connection_flows.items():
            other = incremental.connection_flows.get(key)
            if other is None:
                violations.append(Violation(
                    "reevaluate_vs_rebuild",
                    f"placement #{index}: connection {key} missing from "
                    "the incremental solution",
                ))
            # Per-connection flows may legitimately differ between two
            # optimal solutions; only the valid-connection *sets* and the
            # value must agree, checked above and here.
    return violations


# ----------------------------------------------------------------------
# MILP layer: backend agreement
# ----------------------------------------------------------------------
def check_backend_agreement(
    scenario: Scenario,
    time_limit: float = 20.0,
) -> list[Violation]:
    """The ``bnb`` and ``highs`` backends must find equal optima.

    Solves the Helix formulation of a bounded slice of the scenario's
    cluster to (near-)optimality with both backends and compares
    objectives.
    """
    cluster, model = _milp_material(scenario)
    planner = HelixMilpPlanner(cluster, model)
    formulation = planner.build_formulation()
    highs = solve_with_highs(formulation.problem, time_limit=time_limit)
    bnb = BranchAndBoundSolver(
        formulation.problem, time_limit=2 * time_limit, gap_tolerance=1e-6
    ).solve()
    violations: list[Violation] = []
    if not highs.status.has_solution or not bnb.status.has_solution:
        violations.append(Violation(
            "backend_agreement",
            f"missing solution: highs={highs.status.value} "
            f"bnb={bnb.status.value}",
        ))
        return violations
    scale = max(1.0, abs(highs.objective))
    if abs(highs.objective - bnb.objective) > 1e-5 * scale:
        violations.append(Violation(
            "backend_agreement",
            f"objectives disagree: highs={highs.objective} "
            f"bnb={bnb.objective}",
        ))
    return violations


# ----------------------------------------------------------------------
# MILP layer: incremental LNS vs. rebuild LNS
# ----------------------------------------------------------------------
def check_lns_modes_agree(
    scenario: Scenario,
    rounds: int = 3,
    time_limit: float = 5.0,
) -> list[Violation]:
    """Bounds-tightening LNS must match the rebuild-mode reference.

    Both planners run the same seeded window sequence (``lns_window=2``
    keeps the effective window identical across modes) from the same
    warm start, so their final throughputs must agree.
    """
    cluster, model = _milp_material(scenario)
    results = {}
    for mode in ("incremental", "rebuild"):
        planner = HelixMilpPlanner(
            cluster, model,
            time_limit=time_limit,
            lns_rounds=rounds,
            lns_window=2,
            lns_time_limit=time_limit,
            lns_mode=mode,
            lns_seed=scenario.seed,
        )
        results[mode] = planner.plan().max_throughput
    scale = max(1.0, abs(results["rebuild"]))
    if abs(results["incremental"] - results["rebuild"]) > 1e-5 * scale:
        return [Violation(
            "lns_modes_agree",
            f"incremental LNS throughput {results['incremental']} != "
            f"rebuild {results['rebuild']}",
        )]
    return []


# ----------------------------------------------------------------------
# MILP layer: incremental compile vs. cold compile
# ----------------------------------------------------------------------
def check_incremental_compile(scenario: Scenario) -> list[Violation]:
    """Append/truncate compiles must equal an invalidated cold compile."""
    cluster, model = _milp_material(scenario)
    planner = HelixMilpPlanner(cluster, model)
    formulation = planner.build_formulation()
    problem = formulation.problem

    violations: list[Violation] = []

    def compare(tag: str) -> None:
        warm = problem.compile()
        problem.invalidate()
        cold = problem.compile()
        if not np.array_equal(
            warm.a_matrix.toarray(), cold.a_matrix.toarray()
        ):
            violations.append(Violation(
                "incremental_compile",
                f"{tag}: constraint matrices diverge between incremental "
                "and cold compile",
            ))
        for name in ("c", "constraint_lower", "constraint_upper",
                     "lower", "upper", "integrality"):
            if not np.array_equal(getattr(warm, name), getattr(cold, name)):
                violations.append(Violation(
                    "incremental_compile",
                    f"{tag}: array {name!r} diverges between incremental "
                    "and cold compile",
                ))

    problem.compile()  # prime the cache
    some_var = problem.variables[0]
    base_len = len(problem.constraints)
    problem.add_constraint(some_var <= some_var.upper, name="testkit_append")
    compare("append")
    del problem.constraints[base_len:]
    compare("truncate")
    return violations


def check_milp_oracles(
    family: str, seed: int, size: str = "smoke"
) -> list[Violation]:
    """All MILP differential oracles for one scenario address.

    Each check gets a freshly-generated scenario (planning mutates
    nothing, but the oracles must not share evaluator state), so this is
    the one entry point the CLI and the extended sweep both use.
    """
    from repro.scenarios.generator import generate_scenario

    violations: list[Violation] = []
    for check in (
        check_backend_agreement,
        check_lns_modes_agree,
        check_incremental_compile,
    ):
        violations.extend(check(generate_scenario(family, seed, size)))
    return violations
