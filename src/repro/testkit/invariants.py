"""Cross-layer invariants every scenario run must satisfy.

Each checker returns a list of :class:`Violation` (empty = pass) rather
than raising, so the harness can collect everything wrong with one run
and report it alongside the one-line repro command. The invariants tie
the layers together:

* flow: conservation at every vertex, flows within capacities, source
  out-flow == sink in-flow == max flow;
* placement: the planner's claimed throughput is exactly its flow
  solution's value, never exceeds the §4.5 compute-sum upper bound, and
  the placement validates against per-node VRAM bounds;
* simulation: goodput never exceeds the planned max flow, KV pools never
  go negative / over capacity (and fully drain when everything finished),
  all finished work is accounted;
* scheduling: no pipeline is ever routed through a node that is down at
  schedule time (checked live via :class:`SchedulerAuditor`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import COORDINATOR
from repro.flow.graph import FlowSolution
from repro.models.specs import ModelSpec
from repro.placement.base import PlannerResult
from repro.scheduling.base import Scheduler
from repro.sim.metrics import ServingMetrics
from repro.sim.simulator import Simulation

#: Relative slack for floating-point flow comparisons.
_REL_TOL = 1e-6
#: Simulated goodput may transiently exceed the planned rate inside a
#: short measurement window (a burst of queued decodes landing together),
#: so the sim-vs-plan bound gets a coarser allowance.
_GOODPUT_SLACK = 1.10


@dataclass(frozen=True)
class Violation:
    """One invariant breach.

    Attributes:
        invariant: Short machine-readable name (e.g. ``flow_conservation``).
        detail: Human-readable description with the offending numbers.
    """

    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}] {self.detail}"


def _tol(scale: float) -> float:
    return max(1e-9, abs(scale) * _REL_TOL)


# ----------------------------------------------------------------------
# Flow-layer invariants
# ----------------------------------------------------------------------
def check_flow_solution(flow: FlowSolution) -> list[Violation]:
    """Conservation and capacity invariants of one max-flow solution."""
    violations: list[Violation] = []

    inflow: dict[str, float] = {}
    outflow: dict[str, float] = {}
    for (src, dst), value in flow.connection_flows.items():
        if value < -_tol(flow.max_flow):
            violations.append(Violation(
                "flow_nonnegative",
                f"connection {src}->{dst} carries negative flow {value}",
            ))
        outflow[src] = outflow.get(src, 0.0) + value
        inflow[dst] = inflow.get(dst, 0.0) + value

    source_out = outflow.get(COORDINATOR, 0.0)
    sink_in = inflow.get(COORDINATOR, 0.0)
    if abs(source_out - flow.max_flow) > _tol(flow.max_flow):
        violations.append(Violation(
            "flow_source_value",
            f"source out-flow {source_out} != max_flow {flow.max_flow}",
        ))
    if abs(sink_in - flow.max_flow) > _tol(flow.max_flow):
        violations.append(Violation(
            "flow_sink_value",
            f"sink in-flow {sink_in} != max_flow {flow.max_flow}",
        ))

    for node_id, through in flow.node_flows.items():
        node_in = inflow.get(node_id, 0.0)
        node_out = outflow.get(node_id, 0.0)
        if abs(node_in - node_out) > _tol(flow.max_flow):
            violations.append(Violation(
                "flow_conservation",
                f"node {node_id}: inflow {node_in} != outflow {node_out}",
            ))
        if abs(node_in - through) > _tol(flow.max_flow):
            violations.append(Violation(
                "flow_conservation",
                f"node {node_id}: inflow {node_in} != node edge flow {through}",
            ))
        capacity = flow.node_capacities.get(node_id, 0.0)
        if through > capacity + _tol(capacity):
            violations.append(Violation(
                "flow_node_capacity",
                f"node {node_id}: flow {through} exceeds capacity {capacity}",
            ))

    for key, value in flow.connection_flows.items():
        capacity = flow.connection_capacities.get(key, 0.0)
        if value > capacity + _tol(capacity):
            violations.append(Violation(
                "flow_link_capacity",
                f"connection {key[0]}->{key[1]}: flow {value} exceeds "
                f"capacity {capacity}",
            ))
    return violations


# ----------------------------------------------------------------------
# Placement-layer invariants
# ----------------------------------------------------------------------
def check_planner_result(
    result: PlannerResult,
    cluster: Cluster,
    model: ModelSpec,
    profiler=None,
    max_weight_fraction: float | None = None,
) -> list[Violation]:
    """Placement validity and throughput-bound invariants.

    Args:
        max_weight_fraction: VRAM fraction the planner was allowed to
            spend on weights. The SP baselines deliberately relax the
            profiler's half-VRAM rule (§6.3), so their placements must be
            bounded at their own fraction, not the default.
    """
    from repro.placement.swarm import SwarmPlanner  # concrete, for helpers

    violations: list[Violation] = []
    helper = SwarmPlanner(cluster, model, profiler)
    bounds = {
        nid: helper.max_layers(nid, max_weight_fraction)
        for nid in cluster.node_ids
    }
    try:
        result.placement.validate(max_layers_per_node=bounds)
    except Exception as exc:  # PlacementError subclasses ReproError
        violations.append(Violation(
            "placement_valid", f"placement fails validation: {exc}"
        ))
        return violations

    violations.extend(check_flow_solution(result.flow))

    # §4.5 compute-sum bound, at the planner's own VRAM provisioning: a
    # relaxed weight fraction packs more layers per node, which raises
    # both the placement's throughput and the bound consistently.
    upper = 0.0
    for nid in cluster.node_ids:
        k = bounds[nid]
        if k < 1:
            continue
        node = cluster.node(nid)
        upper += max(
            helper.profiler.throughput(node, model, j) * j
            for j in range(1, k + 1)
        )
    upper /= model.num_layers
    if result.max_throughput > upper + _tol(upper):
        violations.append(Violation(
            "throughput_upper_bound",
            f"placement throughput {result.max_throughput} exceeds the "
            f"compute-sum upper bound {upper}",
        ))
    return violations


# ----------------------------------------------------------------------
# Simulation-layer invariants
# ----------------------------------------------------------------------
def check_simulation(
    sim: Simulation,
    metrics: ServingMetrics,
    planned_flow: FlowSolution,
) -> list[Violation]:
    """Post-run invariants tying the simulator back to the plan."""
    violations: list[Violation] = []

    planned = planned_flow.max_flow
    if metrics.decode_throughput > planned * _GOODPUT_SLACK + _tol(planned):
        violations.append(Violation(
            "goodput_le_planned",
            f"simulated decode throughput {metrics.decode_throughput:.3f} "
            f"tok/s exceeds the planned max flow {planned:.3f} tok/s",
        ))

    all_finished = metrics.requests_finished == metrics.requests_submitted
    for node_id, pool in sim.kv_pools.items():
        if pool.used_tokens < 0:
            violations.append(Violation(
                "kv_nonnegative",
                f"KV pool of {node_id} went negative: {pool.used_tokens}",
            ))
        if pool.peak_tokens > pool.capacity_tokens and pool.overflow_events == 0:
            violations.append(Violation(
                "kv_overflow_accounting",
                f"KV pool of {node_id} peaked at {pool.peak_tokens} over "
                f"capacity {pool.capacity_tokens} without counting an "
                "overflow event",
            ))
        if all_finished and not sim.down_nodes and pool.used_tokens != 0:
            violations.append(Violation(
                "kv_drained",
                f"all requests finished but KV pool of {node_id} still "
                f"holds {pool.used_tokens} tokens",
            ))

    if metrics.requests_finished > metrics.requests_submitted:
        violations.append(Violation(
            "requests_accounting",
            f"finished {metrics.requests_finished} > submitted "
            f"{metrics.requests_submitted}",
        ))
    for record in sim.records:
        if record.finished and record.tokens_generated != record.output_len:
            violations.append(Violation(
                "tokens_accounting",
                f"request {record.request_id} finished with "
                f"{record.tokens_generated}/{record.output_len} tokens",
            ))
    return violations


# ----------------------------------------------------------------------
# Chaos / request-lifecycle invariants
# ----------------------------------------------------------------------
def check_chaos(sim: Simulation, metrics: ServingMetrics) -> list[Violation]:
    """Invariants specific to gray-failure / lifecycle-policy runs.

    * every request ends in at most one terminal state (finished, shed,
      or lost — never two);
    * request conservation: ``submitted == finished + shed + lost +
      in-flight`` (active attempts, pending queue, retry backoffs);
    * a node confirmed dead by the detector never emits another token.
    """
    violations: list[Violation] = []

    for record in sim.records:
        terminal = int(record.finished) + int(record.shed) + int(record.lost)
        if terminal > 1:
            violations.append(Violation(
                "terminal_state_exclusive",
                f"request {record.request_id} ended in multiple terminal "
                f"states (finished={record.finished}, shed={record.shed}, "
                f"lost={record.lost})",
            ))

    in_flight = sim.in_flight_requests
    accounted = (
        metrics.requests_finished
        + metrics.requests_shed
        + metrics.requests_lost
        + in_flight
    )
    if accounted != metrics.requests_submitted:
        violations.append(Violation(
            "request_conservation",
            f"submitted {metrics.requests_submitted} != finished "
            f"{metrics.requests_finished} + shed {metrics.requests_shed} "
            f"+ lost {metrics.requests_lost} + in-flight {in_flight}",
        ))

    for node_id in sim.dead_node_token_violations():
        violations.append(Violation(
            "dead_node_progress",
            f"node {node_id} emitted tokens after being confirmed dead",
        ))
    return violations


# ----------------------------------------------------------------------
# Elasticity / residency invariants
# ----------------------------------------------------------------------
def check_elastic(sim: Simulation, metrics: ServingMetrics) -> list[Violation]:
    """Invariants specific to residency/autoscaler (elastic) runs.

    * everything :func:`check_chaos` guarantees (request conservation,
      exclusive terminal states);
    * a graceful drain leaks no KV accounting and loses no tokens
      (``DrainRecord.kv_leaked == 0`` for every completed drain);
    * warm-up records are sane: non-negative windows, every pulled layer
      resident afterwards.
    """
    violations = check_chaos(sim, metrics)

    for record in sim.drain_log:
        if record.kv_leaked != 0:
            violations.append(Violation(
                "drain_zero_loss",
                f"drain of {record.node_id} leaked {record.kv_leaked} KV "
                "tokens (graceful drain must release everything)",
            ))
        if record.completed < record.started:
            violations.append(Violation(
                "drain_ordering",
                f"drain of {record.node_id} completed at {record.completed} "
                f"before it started at {record.started}",
            ))

    residency = sim.residency
    if residency is not None:
        for record in residency.warmup_log:
            if record.completed < record.started:
                violations.append(Violation(
                    "warmup_ordering",
                    f"warm-up of {record.node_id} completed at "
                    f"{record.completed} before it started at "
                    f"{record.started}",
                ))
        for node_id in residency.warming_nodes:
            if node_id not in sim.scheduler.warming_nodes:
                violations.append(Violation(
                    "warming_masked",
                    f"node {node_id} is warming but not masked from "
                    "scheduling",
                ))
    return violations


# ----------------------------------------------------------------------
# Multi-tenancy invariants
# ----------------------------------------------------------------------
def check_tenancy(sim: Simulation, metrics: ServingMetrics) -> list[Violation]:
    """Invariants specific to multi-tenant (tenancy-enabled) runs.

    * everything :func:`check_chaos` guarantees (request conservation,
      exclusive terminal states);
    * every request carries a tenant id the registry knows;
    * no cross-tenant starvation: the manager's watchdog fired no
      :class:`~repro.tenancy.manager.StarvationEvent` (a backlogged
      tenant always got served within one fairness horizon);
    * shed accounting splits exactly: the per-priority shed counts sum
      to the global ``requests_shed``;
    * token accounting: the manager's per-tenant token counters sum to
      every token the system emitted (disrupted attempts included).
    """
    violations = check_chaos(sim, metrics)
    manager = sim.tenancy
    if manager is None:
        return violations + [Violation(
            "tenancy_enabled",
            "check_tenancy called on a run without a tenancy config",
        )]

    known = set(manager.config.registry.ids)
    for record in sim.records:
        if record.tenant_id not in known:
            violations.append(Violation(
                "tenant_registered",
                f"request {record.request_id} carries tenant "
                f"{record.tenant_id!r} unknown to the registry {sorted(known)}",
            ))

    for event in manager.starvation_events:
        violations.append(Violation(
            "no_cross_tenant_starvation",
            f"tenant {event.tenant_id} was backlogged from "
            f"{event.backlogged_since:.2f}s and still unserved at "
            f"{event.detected_at:.2f}s (horizon "
            f"{manager.config.fairness.horizon:.2f}s)",
        ))

    shed_split = sum(count for _, count in metrics.requests_shed_by_priority)
    if shed_split != metrics.requests_shed:
        violations.append(Violation(
            "shed_by_priority_sums",
            f"per-priority shed counts sum to {shed_split} but "
            f"requests_shed is {metrics.requests_shed}",
        ))

    noted = sum(manager.tokens_by_tenant.values())
    if noted != sim.tokens_emitted:
        violations.append(Violation(
            "tenant_token_accounting",
            f"per-tenant token counters sum to {noted} but the system "
            f"emitted {sim.tokens_emitted} tokens",
        ))
    return violations


class TenantKVSampler:
    """Live sampler proving per-tenant KV charges sum to pool totals.

    Rides the simulator's environment-event queue: every ``interval``
    simulated seconds it folds :meth:`Simulation.kv_usage_by_tenant`
    per node and compares each sum against that node's
    ``pool.used_tokens`` — the tentpole accounting invariant (no KV
    token is ever charged without a tenant owning it, and none is owned
    twice). Install before the run; it stops rescheduling itself once
    every request has arrived and none is in flight. Read
    ``violations`` after the run.
    """

    def __init__(self, interval: float = 1.0) -> None:
        self.interval = interval
        self.samples = 0
        self.violations: list[Violation] = []

    def install(self, sim: Simulation) -> None:
        """Arm the first sample on ``sim``'s event queue."""
        sim.schedule_event(self.interval, self._sample)

    def _sample(self, sim: Simulation) -> None:
        self.samples += 1
        usage = sim.kv_usage_by_tenant()
        for node_id, pool in sim.kv_pools.items():
            total = sum(usage.get(node_id, {}).values())
            if total != pool.used_tokens:
                self.violations.append(Violation(
                    "tenant_kv_sums_to_pool",
                    f"t={sim.now:.2f}: node {node_id} per-tenant KV sum "
                    f"{total} != pool used_tokens {pool.used_tokens}",
                ))
        done = (
            len(sim.records) >= len(sim.requests)
            and sim.in_flight_requests == 0
        )
        if not done:
            sim.schedule_event(sim.now + self.interval, self._sample)


# ----------------------------------------------------------------------
# Scheduling-layer invariants (live audit)
# ----------------------------------------------------------------------
class SchedulerAuditor:
    """Wraps a scheduler's ``schedule`` to audit every pipeline it emits.

    Records a violation whenever a freshly-built pipeline routes through a
    node the scheduler itself considers down, or through a node outside
    the current placement. With a residency ledger attached, additionally
    asserts the tentpole invariant: a node never receives a stage whose
    layers are not resident in its VRAM at schedule time. Install before
    the run; read ``violations`` after.
    """

    def __init__(self, scheduler: Scheduler, residency=None) -> None:
        self.scheduler = scheduler
        self.residency = residency
        self.violations: list[Violation] = []
        self.pipelines_audited = 0
        self._inner = scheduler.schedule
        scheduler.schedule = self._audited_schedule  # type: ignore[method-assign]

    def _audited_schedule(self, request_id: str, input_len: int):
        pipeline = self._inner(request_id, input_len)
        if pipeline is None:
            return None
        self.pipelines_audited += 1
        for stage in pipeline.stages:
            if stage.node_id in self.scheduler.down_nodes:
                self.violations.append(Violation(
                    "route_through_down_node",
                    f"request {request_id} scheduled through down node "
                    f"{stage.node_id}",
                ))
            if not self.scheduler.placement.holds_layers(stage.node_id):
                self.violations.append(Violation(
                    "route_through_unplaced_node",
                    f"request {request_id} scheduled through {stage.node_id} "
                    "which holds no layers in the current placement",
                ))
            if self.residency is not None and not self.residency.is_resident(
                stage.node_id, stage.start, stage.end
            ):
                self.violations.append(Violation(
                    "route_through_nonresident_layers",
                    f"request {request_id} scheduled layers "
                    f"[{stage.start}, {stage.end}) on {stage.node_id}, "
                    "which does not have them resident",
                ))
        return pipeline
