"""End-to-end scenario execution with invariant and oracle checking.

:func:`run_scenario` plays one generated scenario through the full stack
— plan, schedule, simulate (applying any churn schedule) — collecting
:class:`~repro.testkit.invariants.Violation` objects instead of raising,
and fingerprints the run for determinism comparisons.
:func:`verify_scenario` is the sweep entry point: it generates the
scenario from its ``(family, seed, size)`` address, runs it (twice when
checking determinism — churn and serving mutate the cluster, so each run
gets a fresh generation), optionally cross-validates the incremental flow
evaluator, and folds everything into one :class:`ScenarioReport` whose
failure text always carries the one-line repro command.
"""

from __future__ import annotations

import hashlib
import math
import time
import traceback
from dataclasses import dataclass, field, replace

from repro.bench.runner import make_planner, make_scheduler
from repro.core.errors import ReproError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.online.autoscale import Autoscaler
from repro.online.controller import OnlineController
from repro.placement.base import PlannerResult
from repro.scenarios.generator import Scenario, generate_scenario
from repro.sim.metrics import (
    DisruptionReport,
    ServingMetrics,
    aggregate_tenant_metrics,
)
from repro.sim.simulator import Simulation
from repro.testkit.differential import check_reevaluate_vs_rebuild
from repro.testkit.invariants import (
    SchedulerAuditor,
    TenantKVSampler,
    Violation,
    check_chaos,
    check_elastic,
    check_planner_result,
    check_simulation,
    check_tenancy,
)

#: Planner fallback order when a scenario's suggested method cannot serve
#: its draw (heuristics are topology-blind and may legitimately fail).
_PLANNER_FALLBACKS = ("swarm", "petals", "sp+")


@dataclass
class ScenarioReport:
    """Everything one verified scenario run produced.

    Attributes:
        scenario: The (post-run, mutated) scenario object.
        planner_used: The placement method that actually served.
        planned_throughput: Max-flow value of the placement.
        metrics: Aggregate serving metrics of the run.
        disruption: Detection/recovery telemetry (MTTD, false positives,
            goodput recovery) — for detection-mode (chaos) and elastic
            runs.
        elasticity: Residency/drain/autoscaler telemetry — only for
            elastic runs (warm-up count/seconds/bytes, drains, scaling
            actions).
        tenancy: Multi-tenant telemetry — only for tenancy-enabled runs
            (per-tenant :class:`~repro.sim.metrics.TenantMetrics`, the
            end-of-run Jain fairness index, starvation/shed counts, and
            how many live KV-accounting samples the run survived).
        violations: Every invariant/oracle breach found (empty = pass).
        fingerprint: Digest of the run's observable outcome, stable
            across identical replays.
    """

    scenario: Scenario
    planner_used: str = "?"
    planned_throughput: float = 0.0
    metrics: ServingMetrics | None = None
    disruption: DisruptionReport | None = None
    elasticity: dict | None = None
    tenancy: dict | None = None
    violations: list[Violation] = field(default_factory=list)
    fingerprint: str = ""
    #: The simulation object itself (post-run). Kept so differential
    #: oracles can compare full engine observables across configurations
    #: the plain engine matrix cannot express (detection-mode chaos,
    #: elastic residency, tenancy).
    sim: Simulation | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """Whether the run satisfied every checked invariant."""
        return not self.violations

    def failure_message(self) -> str:
        """Multi-line report ending with the one-line repro command."""
        lines = [self.scenario.describe()]
        lines += [f"  {v}" for v in self.violations]
        lines.append(f"  reproduce: {self.scenario.repro_command()}")
        return "\n".join(lines)


def _plan(scenario: Scenario) -> tuple[str, object, PlannerResult]:
    """Plan the scenario, falling back across heuristic methods.

    Elastic scenarios start with their spare pool out of service, so the
    initial plan goes on the *available* subcluster — exactly what a real
    deployment would see before the autoscaler loans anything in.
    """
    cluster = scenario.cluster
    if cluster.down_node_ids:
        cluster = cluster.subcluster()
    errors: list[str] = []
    tried = [scenario.planner_method] + [
        method for method in _PLANNER_FALLBACKS
        if method != scenario.planner_method
    ]
    for method in tried:
        try:
            planner = make_planner(method, cluster, scenario.model)
            result = planner.plan()
        except ReproError as exc:
            errors.append(f"{method}: {exc}")
            continue
        if result.max_throughput > 0:
            return method, planner, result
        errors.append(f"{method}: zero-throughput placement")
    raise ReproError(
        "no planner produced a servable placement for "
        f"{scenario.describe()} ({'; '.join(errors)}); "
        f"reproduce: {scenario.repro_command()}"
    )


def plan_scenario(scenario: Scenario) -> tuple[str, PlannerResult]:
    """Plan a scenario and return ``(method, result)`` without running it.

    The planner search is deterministic per address, so callers evaluating
    the *same* scenario under several scheduling policies (a policy-grid
    experiment) can plan once, serialize the placement intervals, and
    replay them through :func:`run_scenario`'s ``plan`` argument instead
    of re-running the search per policy cell.
    """
    method, _, result = _plan(scenario)
    return method, result


def placement_intervals(result: PlannerResult) -> dict[str, tuple[int, int]]:
    """The plain ``{node_id: (start, end)}`` form of a planned placement.

    This is the picklable currency of the experiment harness's per-process
    plan cache: intervals survive process boundaries and fresh scenario
    generations, unlike the planner/flow objects bound to one cluster
    instance.
    """
    return {
        node_id: (stage.start, stage.end)
        for node_id, stage in result.placement.assignments.items()
    }


def _plan_from_hint(
    scenario: Scenario, plan: tuple[str, dict[str, tuple[int, int]]]
) -> tuple[str, PlannerResult]:
    """Rebuild a planner result from cached ``(method, intervals)``.

    The max-flow solve is recomputed on the fresh cluster (cheap) so the
    result is bound to *this* generation — only the expensive placement
    search is skipped. Bit-identical to planning from scratch because the
    planners are deterministic per address.
    """
    method, intervals = plan
    cluster = scenario.cluster
    if cluster.down_node_ids:
        cluster = cluster.subcluster()
    placement = ModelPlacement.from_intervals(
        scenario.model.num_layers,
        {node_id: tuple(span) for node_id, span in intervals.items()},
    )
    flow = FlowGraph(cluster, scenario.model, placement).solve()
    return method, PlannerResult(
        planner_name=method, placement=placement, flow=flow
    )


def _fingerprint(sim: Simulation, metrics: ServingMetrics) -> str:
    """Digest of a run's observable outcome (exact, not rounded)."""
    payload = repr((
        metrics.requests_finished,
        metrics.requests_submitted,
        metrics.decode_tokens,
        metrics.decode_throughput,
        metrics.requests_retried,
        metrics.requests_migrated,
        metrics.requests_shed,
        metrics.requests_lost,
        sim.token_timeline,
    )).encode()
    return hashlib.sha256(payload).hexdigest()


def run_scenario(
    scenario: Scenario,
    engine: str = "hop",
    plan: tuple[str, dict[str, tuple[int, int]]] | None = None,
) -> ScenarioReport:
    """Play one scenario end-to-end, collecting invariant violations.

    The scenario object is consumed: serving and churn mutate its cluster
    (availability, link bandwidths). Regenerate for a second run.

    Args:
        scenario: The generated scenario to serve.
        engine: Simulation engine (``"hop"`` or ``"batch"``); every
            invariant must hold on both.
        plan: Cached ``(method, intervals)`` from an earlier
            :func:`plan_scenario` of the same address, to skip the
            placement search (policy-grid cells evaluate one plan under
            several schedulers).
    """
    report = ScenarioReport(scenario=scenario)
    planner = None
    try:
        if plan is not None:
            method, planner_result = _plan_from_hint(scenario, plan)
        else:
            method, planner, planner_result = _plan(scenario)
    except ReproError as exc:
        report.violations.append(Violation("planner_serves", str(exc)))
        return report
    report.planner_used = method
    report.planned_throughput = planner_result.max_throughput

    report.violations.extend(
        check_planner_result(
            planner_result, scenario.cluster, scenario.model,
            # SP relaxes the half-VRAM rule; bound it at its own fraction.
            max_weight_fraction=getattr(planner, "max_weight_fraction", None),
        )
    )

    scheduler = make_scheduler(
        scenario.scheduler_method,
        scenario.cluster,
        scenario.model,
        planner_result,
        seed=scenario.seed,
    )
    elastic = (
        scenario.residency is not None or scenario.autoscaler is not None
    )
    controller = None
    autoscaler = None
    if scenario.detection:
        # Chaos scenarios route churn through the online controller so
        # failures happen *silently* and only the failure detector's
        # confirmation masks the node (tier-1 flow rewrite; the slow
        # replanning path stays off to keep sweeps fast). debug_validate
        # re-validates the cluster after every applied event.
        controller = OnlineController(
            scenario.model,
            events=scenario.churn,
            replan=False,
            detection_mode=True,
        )
    elif elastic:
        # Elastic scenarios need the slow path (replanning folds loaned
        # spares in), but in the deterministic ``lns_rounds=0`` mode —
        # wall-clock-budgeted LNS would break fingerprint replay.
        if scenario.autoscaler is not None:
            autoscaler = Autoscaler(scenario.autoscaler, scenario.spares)
        controller = OnlineController(
            scenario.model,
            events=scenario.churn,
            replan=True,
            replan_lns_rounds=0,
            autoscaler=autoscaler,
        )
    sim = Simulation(
        cluster=scenario.cluster,
        model=scenario.model,
        placement=planner_result.placement,
        scheduler=scheduler,
        requests=scenario.requests,
        max_time=scenario.max_time,
        seed=scenario.seed,
        controller=controller,
        policy=scenario.policy,
        debug_validate=scenario.detection,
        residency=scenario.residency,
        tenancy=scenario.tenancy,
        engine=engine,
    )
    report.sim = sim
    auditor = SchedulerAuditor(scheduler, residency=sim.residency)
    kv_sampler = None
    if scenario.tenancy is not None:
        kv_sampler = TenantKVSampler()
        kv_sampler.install(sim)
    if controller is None:
        for event in scenario.churn:
            if event.time <= scenario.max_time:
                sim.schedule_event(
                    event.time, lambda s, ev=event: s.apply_event(ev)
                )

    metrics = sim.run()
    report.metrics = metrics
    if controller is not None:
        report.disruption = controller.report(sim)
    if elastic:
        residency = sim.residency
        report.elasticity = {
            "warmups": len(residency.warmup_log) if residency else 0,
            "warmup_seconds_total": (
                sum(r.duration for r in residency.warmup_log)
                if residency else 0.0
            ),
            "warmup_bytes_total": (
                sum(r.bytes_pulled for r in residency.warmup_log)
                if residency else 0
            ),
            "evictions": len(residency.eviction_log) if residency else 0,
            "drains": len(sim.drain_log),
            "autoscaler_actions": (
                list(autoscaler.actions) if autoscaler is not None else []
            ),
        }
    report.fingerprint = _fingerprint(sim, metrics)
    sim_violations = check_simulation(sim, metrics, planner_result.flow)
    if elastic:
        # Scale-up can add capacity beyond the *initial* plan, so the
        # goodput-vs-planned bound does not apply to elastic runs.
        sim_violations = [
            v for v in sim_violations if v.invariant != "goodput_le_planned"
        ]
    report.violations.extend(sim_violations)
    if elastic:
        report.violations.extend(check_elastic(sim, metrics))
    elif scenario.tenancy is not None:
        report.violations.extend(check_tenancy(sim, metrics))
    elif scenario.detection or scenario.policy is not None:
        report.violations.extend(check_chaos(sim, metrics))
    if scenario.tenancy is not None:
        manager = sim.tenancy
        registry = scenario.tenancy.registry
        end_time = max(min(sim.now, sim.max_time), sim.warmup + 1e-9)
        per_tenant = aggregate_tenant_metrics(
            sim.records,
            warmup=sim.warmup,
            end_time=end_time,
            slo_targets={
                spec.tenant_id: (
                    spec.slo.ttft_target,
                    spec.slo.tbt_target,
                    spec.slo.percentile,
                )
                for spec in registry
            },
        )
        report.tenancy = {
            "per_tenant": per_tenant,
            "fairness_index": manager.fairness_index(end_time),
            "starvation_events": len(manager.starvation_events),
            "shed_by_priority": dict(metrics.requests_shed_by_priority),
            "kv_samples": kv_sampler.samples if kv_sampler else 0,
        }
        if kv_sampler is not None:
            report.violations.extend(kv_sampler.violations)
    report.violations.extend(auditor.violations)
    if auditor.pipelines_audited == 0:
        report.violations.append(Violation(
            "pipelines_scheduled",
            "the run never scheduled a single pipeline",
        ))
    return report


def verify_scenario(
    family: str,
    seed: int,
    size: str = "smoke",
    determinism: bool = True,
    flow_differential: bool = True,
    engine: str = "hop",
    scheduler: str | None = None,
    plan: tuple[str, dict[str, tuple[int, int]]] | None = None,
) -> ScenarioReport:
    """Generate, run, and cross-check the scenario at one address.

    Args:
        family: Topology family.
        seed: Scenario seed.
        size: Sweep tier (``"smoke"`` or ``"full"``).
        determinism: Replay the address a second time (fresh generation)
            and require a bit-identical outcome fingerprint.
        flow_differential: Cross-validate ``FlowGraph.reevaluate`` against
            fresh rebuilds on seeded random placements of this scenario.
        engine: Simulation engine to run on.
        scheduler: Scheduling-policy override (``None`` = the scenario's
            own draw) — policy-grid experiments sweep this axis.
        plan: Cached ``(method, intervals)`` plan hint, forwarded to
            :func:`run_scenario` on every (re)play.
    """
    def fresh() -> Scenario:
        scenario = generate_scenario(family, seed, size)
        if scheduler is not None:
            scenario = replace(scenario, scheduler_method=scheduler)
        return scenario

    report = run_scenario(fresh(), engine=engine, plan=plan)
    if flow_differential:
        # Fresh generation: the first run mutated the cluster.
        report.violations.extend(
            check_reevaluate_vs_rebuild(generate_scenario(family, seed, size))
        )
    if determinism:
        replay = run_scenario(fresh(), engine=engine, plan=plan)
        if replay.fingerprint != report.fingerprint:
            report.violations.append(Violation(
                "per_seed_determinism",
                "two runs of the same (family, seed, size) produced "
                f"different outcomes ({report.fingerprint[:12]} vs "
                f"{replay.fingerprint[:12]})",
            ))
    return report


def _finite(value: float | None) -> float | None:
    """NaN/inf -> ``None`` so records serialize as strict RFC-8259 JSON."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def verify_scenario_record(
    family: str,
    seed: int,
    size: str = "full",
    milp_oracles: bool = False,
    determinism: bool = True,
    flow_differential: bool = True,
    engine: str = "hop",
    scheduler: str | None = None,
    plan: tuple[str, dict[str, tuple[int, int]]] | None = None,
) -> dict:
    """One sweep cell as a pure, picklable function returning plain JSON.

    This is the experiment harness's unit of work: everything the sweep
    aggregators consume (status, fingerprint, counters, per-family
    telemetry) lands in one JSON-serializable dict, and any crash inside
    the address is converted to a ``sweep_crash`` violation so a worker
    never takes the whole sweep down with it. Importable and callable at
    module top level — :mod:`multiprocessing` workers can pickle it.
    """
    from repro.testkit.differential import check_milp_oracles

    started = time.perf_counter()
    repro = (
        "PYTHONPATH=src python -m repro.testkit "
        f"{family} {seed} --size {size}"
    )
    record: dict = {
        "family": family,
        "seed": seed,
        "size": size,
        "planner": "?",
        "planned_throughput": 0.0,
        "fingerprint": "",
        "repro": repro,
    }
    if scheduler is not None:
        record["scheduler"] = scheduler
    try:
        report = verify_scenario(
            family, seed, size,
            determinism=determinism, flow_differential=flow_differential,
            engine=engine, scheduler=scheduler, plan=plan,
        )
        violations = list(report.violations)
        if milp_oracles:
            violations += check_milp_oracles(family, seed, size)
        record["planner"] = report.planner_used
        record["planned_throughput"] = report.planned_throughput
        record["fingerprint"] = report.fingerprint
        record["repro"] = report.scenario.repro_command()
        metrics = report.metrics
        if metrics is not None:
            record["counters"] = {
                "submitted": metrics.requests_submitted,
                "finished": metrics.requests_finished,
                "shed": metrics.requests_shed,
                "lost": metrics.requests_lost,
            }
            record["decode_throughput"] = _finite(metrics.decode_throughput)
        disruption = report.disruption
        if disruption is not None:
            record["disruption"] = {
                "mttd_mean_s": _finite(disruption.mttd_mean),
                "mttd_max_s": _finite(disruption.mttd_max),
                "mttr_s": _finite(disruption.mttr),
                "time_to_recovery_s": _finite(disruption.time_to_recovery),
                "recovery_ratio": _finite(disruption.recovery_ratio),
                "false_positives": disruption.false_positives,
            }
        if report.elasticity is not None:
            elasticity = dict(report.elasticity)
            elasticity["autoscaler_actions"] = [
                list(action) for action in elasticity["autoscaler_actions"]
            ]
            record["elasticity"] = elasticity
        if report.tenancy is not None:
            per_tenant = report.tenancy["per_tenant"]
            record["tenancy"] = {
                "tenants": len(per_tenant),
                "fairness_index": _finite(report.tenancy["fairness_index"]),
                "starvation_events": report.tenancy["starvation_events"],
                "shed_by_priority": {
                    str(priority): count
                    for priority, count
                    in report.tenancy["shed_by_priority"].items()
                },
                "kv_samples": report.tenancy["kv_samples"],
                "slo_pairs": len(per_tenant),
                "slo_met": sum(
                    1 for tm in per_tenant.values() if tm.slo_met
                ),
            }
    except Exception:  # noqa: BLE001 — a cell must never kill the sweep
        violations = [Violation(
            "sweep_crash",
            f"unhandled exception:\n{traceback.format_exc()}",
        )]
    record["ok"] = not violations
    if violations:
        record["violations"] = [
            {"invariant": v.invariant, "detail": v.detail}
            for v in violations
        ]
    record["seconds"] = round(time.perf_counter() - started, 3)
    return record


def assert_scenario_ok(report: ScenarioReport) -> None:
    """Raise ``AssertionError`` with the repro command on any violation."""
    if not report.ok:
        raise AssertionError(report.failure_message())
