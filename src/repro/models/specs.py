"""Transformer model specifications.

A :class:`ModelSpec` records the architectural shape of a decoder-only
Transformer: layer count, hidden size, attention head layout, and MLP width.
From these we derive the three quantities the Helix formulation needs:

* ``params_per_layer`` — weight bytes each pipeline stage layer contributes,
  which bounds how many layers a node can hold (paper §4.4, Table 1);
* ``activation_bytes_per_token`` — the per-token message size on inter-node
  links (the "16 KB" in the paper's Fig. 2 example for LLaMA-2 70B);
* ``kv_bytes_per_token_layer`` — KV-cache growth per generated token per
  layer, which drives the scheduler's KV-cache estimation (paper §5.2).

The catalog covers the models in the paper's Table 1 plus LLaMA-1 30B used in
the evaluation. Marketing parameter counts (``nominal_params``) are kept
separately from the architecture-derived count because Table 1's GPU minimums
are computed from the nominal sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


TOKEN_BYTES = 4
"""Bytes transmitted per token on coordinator links (paper Fig. 2: 4 B)."""


@dataclass(frozen=True)
class ModelSpec:
    """Architectural description of a decoder-only Transformer.

    Attributes:
        name: Human-readable model name, e.g. ``"LLaMA-70B"``.
        num_layers: Number of Transformer layers (pipeline-partitionable).
        hidden_size: Model hidden dimension.
        num_heads: Number of attention query heads.
        num_kv_heads: Number of key/value heads (< ``num_heads`` under GQA).
        intermediate_size: MLP inner dimension.
        vocab_size: Vocabulary size (embeddings live on the coordinator and
            are excluded from per-layer accounting, matching the paper's
            placements).
        nominal_params: The published parameter count (e.g. 70e9), used only
            for Table-1-style totals.
        dtype_bytes: Bytes per parameter / activation element (2 for FP16).
        mlp_matrices: Number of MLP weight matrices per layer (3 for gated
            SwiGLU models such as LLaMA, 2 for classic GPT blocks).
        params_per_layer_override: Explicit per-layer parameter count for
            architectures the analytic formula does not cover (e.g. MoE).
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    intermediate_size: int
    vocab_size: int = 32_000
    nominal_params: float = 0.0
    dtype_bytes: int = 2
    mlp_matrices: int = 3
    params_per_layer_override: float | None = None

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if self.hidden_size <= 0:
            raise ValueError(f"hidden_size must be positive, got {self.hidden_size}")
        if self.num_heads <= 0 or self.num_kv_heads <= 0:
            raise ValueError("head counts must be positive")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                "num_heads must be a multiple of num_kv_heads for GQA, got "
                f"{self.num_heads} / {self.num_kv_heads}"
            )

    @property
    def head_dim(self) -> int:
        """Dimension of one attention head."""
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) projection output under GQA."""
        return self.head_dim * self.num_kv_heads

    @property
    def params_per_layer(self) -> float:
        """Parameter count of one Transformer layer.

        Attention contributes Q and O projections (``hidden²`` each) plus K
        and V projections (``hidden · kv_dim`` each); the MLP contributes
        ``mlp_matrices`` matrices of ``hidden × intermediate``. Norm weights
        are negligible and omitted.
        """
        if self.params_per_layer_override is not None:
            return self.params_per_layer_override
        attention = 2 * self.hidden_size**2 + 2 * self.hidden_size * self.kv_dim
        mlp = self.mlp_matrices * self.hidden_size * self.intermediate_size
        return float(attention + mlp)

    @property
    def total_layer_params(self) -> float:
        """Architecture-derived parameter count across all layers."""
        return self.params_per_layer * self.num_layers

    @property
    def layer_bytes(self) -> float:
        """Weight bytes of a single Transformer layer."""
        return self.params_per_layer * self.dtype_bytes

    @property
    def activation_bytes_per_token(self) -> float:
        """Bytes of the hidden-state activation transmitted per token."""
        return float(self.hidden_size * self.dtype_bytes)

    @property
    def kv_bytes_per_token_layer(self) -> float:
        """KV-cache bytes one token consumes in one layer (K + V)."""
        return float(2 * self.kv_dim * self.dtype_bytes)

    @property
    def token_bytes(self) -> int:
        """Bytes transmitted per token id on coordinator links."""
        return TOKEN_BYTES

    def flops_per_token_layer(self) -> float:
        """Approximate FLOPs to process one token through one layer.

        The standard ``2 · params`` matmul estimate; attention score
        computation is sequence-length dependent and folded into the
        profiler's efficiency factor instead.
        """
        return 2.0 * self.params_per_layer


LLAMA_30B = ModelSpec(
    name="LLaMA-30B",
    num_layers=60,
    hidden_size=6656,
    num_heads=52,
    num_kv_heads=52,
    intermediate_size=17920,
    nominal_params=30e9,
)

LLAMA_70B = ModelSpec(
    name="LLaMA-70B",
    num_layers=80,
    hidden_size=8192,
    num_heads=64,
    num_kv_heads=8,
    intermediate_size=28672,
    nominal_params=70e9,
)

GPT3_175B = ModelSpec(
    name="GPT-3",
    num_layers=96,
    hidden_size=12288,
    num_heads=96,
    num_kv_heads=96,
    intermediate_size=49152,
    vocab_size=50_257,
    nominal_params=175e9,
    mlp_matrices=2,
)

GROK_314B = ModelSpec(
    name="Grok-1",
    num_layers=64,
    hidden_size=6144,
    num_heads=48,
    num_kv_heads=8,
    intermediate_size=32768,
    vocab_size=131_072,
    nominal_params=314e9,
    # MoE layers: use the dense-equivalent per-layer share of the nominal
    # parameter count, since every expert's weights must be resident.
    params_per_layer_override=314e9 / 64,
)

LLAMA3_405B = ModelSpec(
    name="LLaMA-3-405B",
    num_layers=126,
    hidden_size=16384,
    num_heads=128,
    num_kv_heads=8,
    intermediate_size=53248,
    vocab_size=128_256,
    nominal_params=405e9,
)

MODEL_CATALOG: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (LLAMA_30B, LLAMA_70B, GPT3_175B, GROK_314B, LLAMA3_405B)
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by name, raising ``KeyError`` with suggestions."""
    try:
        return MODEL_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_CATALOG))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
