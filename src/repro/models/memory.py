"""Memory accounting used throughout placement and simulation.

The paper's convention (Table 1 caption): *half* of a GPU's memory stores
model parameters and the other half is reserved for KV cache. That single
rule determines both the Table-1 minimum GPU counts and the maximum number of
layers each node may hold in the MILP (variable ``k`` in §4.4).
"""

from __future__ import annotations

import math

from repro.models.specs import ModelSpec


def weight_bytes_total(model: ModelSpec, nominal: bool = True) -> float:
    """Total weight bytes of the model.

    Args:
        model: The model spec.
        nominal: If true, use the published parameter count (what Table 1
            does); otherwise use the architecture-derived per-layer count.
    """
    if nominal and model.nominal_params > 0:
        return model.nominal_params * model.dtype_bytes
    return model.total_layer_params * model.dtype_bytes


def usable_weight_vram(vram_bytes: float, weight_fraction: float = 0.5) -> float:
    """VRAM available for weights under the half-weights/half-KV rule."""
    if not 0.0 < weight_fraction <= 1.0:
        raise ValueError(f"weight_fraction must be in (0, 1], got {weight_fraction}")
    return vram_bytes * weight_fraction


def min_gpus_required(
    model: ModelSpec, vram_bytes: float, weight_fraction: float = 0.5
) -> int:
    """Minimum number of identical GPUs needed to hold the model's weights.

    Reproduces Table 1: ``ceil(weights / (VRAM · weight_fraction))`` with
    nominal parameter counts.
    """
    per_gpu = usable_weight_vram(vram_bytes, weight_fraction)
    return math.ceil(weight_bytes_total(model, nominal=True) / per_gpu)


def max_layers_on_vram(
    model: ModelSpec, vram_bytes: float, weight_fraction: float = 0.5
) -> int:
    """Maximum whole layers a device can hold in its weight partition.

    This is the ``k`` bound on the MILP's per-node layer-count binaries
    (paper §4.4) and matches the per-node layer counts visible in the
    paper's placement case studies (T4 → 4, L4 → 7, A100 → 11 layers of
    LLaMA-2 70B).
    """
    per_gpu = usable_weight_vram(vram_bytes, weight_fraction)
    return int(per_gpu // model.layer_bytes)


def kv_bytes_per_token_layer(model: ModelSpec) -> float:
    """KV-cache bytes per token per layer; re-exported for convenience."""
    return model.kv_bytes_per_token_layer


def kv_token_capacity(
    model: ModelSpec,
    vram_bytes: float,
    num_layers_held: int,
) -> int:
    """How many tokens of KV cache a node can hold for its resident layers.

    The KV partition is whatever VRAM remains after the *actually held*
    weights (the half-VRAM rule is a provisioning bound on how many layers
    may be placed, not a cap on KV usage). A token occupies KV cache in
    every resident layer, so capacity shrinks on nodes holding more layers.
    """
    if num_layers_held <= 0:
        return 0
    kv_vram = vram_bytes - num_layers_held * model.layer_bytes
    if kv_vram <= 0:
        return 0
    per_token = model.kv_bytes_per_token_layer * num_layers_held
    return int(kv_vram // per_token)
