"""LLM architecture specifications and memory accounting.

The placement planner and the simulator never touch real model weights; they
only need the *shape* of the model: how many Transformer layers it has, how
large each layer's parameters are, how big the per-token activation is, and
how much KV cache each token consumes. :class:`~repro.models.specs.ModelSpec`
captures exactly that, and :mod:`repro.models.memory` derives the quantities
the paper reports in Table 1.
"""

from repro.models.specs import (
    ModelSpec,
    LLAMA_30B,
    LLAMA_70B,
    GPT3_175B,
    GROK_314B,
    LLAMA3_405B,
    MODEL_CATALOG,
    get_model,
)
from repro.models.memory import (
    min_gpus_required,
    max_layers_on_vram,
    weight_bytes_total,
    kv_bytes_per_token_layer,
)

__all__ = [
    "ModelSpec",
    "LLAMA_30B",
    "LLAMA_70B",
    "GPT3_175B",
    "GROK_314B",
    "LLAMA3_405B",
    "MODEL_CATALOG",
    "get_model",
    "min_gpus_required",
    "max_layers_on_vram",
    "weight_bytes_total",
    "kv_bytes_per_token_layer",
]
