"""Preset cluster topologies from the paper's evaluation (§6.2).

Three evaluation clusters plus the toy examples used in the exposition:

* :func:`single_cluster_24` — 4 A100 + 8 L4 + 12 T4, 10 Gb/s full mesh
  within one region (Fig. 6 experiments).
* :func:`geo_distributed_24` — the same 24 GPUs split across three regions
  with 100 Mb/s / 50 ms inter-region links (Fig. 7 experiments).
* :func:`high_heterogeneity_42` — 42 nodes spanning 7 GPU configurations
  (Fig. 8 experiments).
* :func:`toy_cluster_fig1` / :func:`toy_cluster_fig2` — the small examples
  of Figs. 1 and 2, used for tests and the quickstart.
* :func:`small_cluster_fig12` — 4 L4 + 6 T4 used for the solver-quality
  study (Fig. 12).
"""

from __future__ import annotations

from repro.core.units import GBIT, MBIT
from repro.cluster.cluster import Cluster
from repro.cluster.gpus import A100_40G, L4, T4, V100
from repro.cluster.node import COORDINATOR

INTRA_REGION_BANDWIDTH = 10 * GBIT
INTRA_REGION_LATENCY = 0.001
INTER_REGION_BANDWIDTH = 100 * MBIT
INTER_REGION_LATENCY = 0.050


def _add_group(cluster, gpu, count, prefix, region, num_gpus=1):
    """Add ``count`` identical nodes named ``prefix-0 .. prefix-{count-1}``."""
    ids = []
    for i in range(count):
        node_id = f"{prefix}-{i}"
        cluster.add_node(node_id, gpu, num_gpus=num_gpus, region=region)
        ids.append(node_id)
    return ids


def single_cluster_24() -> Cluster:
    """The paper's single-cluster setup: 4 A100 + 8 L4 + 12 T4 at 10 Gb/s."""
    cluster = Cluster(name="single-24")
    ids = []
    ids += _add_group(cluster, A100_40G, 4, "a100", "region-0")
    ids += _add_group(cluster, L4, 8, "l4", "region-0")
    ids += _add_group(cluster, T4, 12, "t4", "region-0")
    cluster.connect_full_mesh(
        ids, INTRA_REGION_BANDWIDTH, INTRA_REGION_LATENCY, include_coordinator=True
    )
    cluster.validate()
    return cluster


def geo_distributed_24() -> Cluster:
    """Three regional sub-clusters: (4 A100), (2 L4 + 8 T4), (6 L4 + 4 T4).

    Intra-region links run at 10 Gb/s / 1 ms; inter-region links at
    100 Mb/s / 50 ms (the paper's simulated cross-region conditions, based on
    its Table-7 measurements). The coordinator sits in region 0.
    """
    cluster = Cluster(name="geo-24")
    region_ids: list[list[str]] = []
    region_ids.append(_add_group(cluster, A100_40G, 4, "a100", "region-0"))
    group1 = _add_group(cluster, L4, 2, "l4a", "region-1")
    group1 += _add_group(cluster, T4, 8, "t4a", "region-1")
    region_ids.append(group1)
    group2 = _add_group(cluster, L4, 6, "l4b", "region-2")
    group2 += _add_group(cluster, T4, 4, "t4b", "region-2")
    region_ids.append(group2)

    for ids in region_ids:
        cluster.connect_full_mesh(
            ids, INTRA_REGION_BANDWIDTH, INTRA_REGION_LATENCY,
            include_coordinator=False,
        )
    for i, ids_a in enumerate(region_ids):
        for ids_b in region_ids[i + 1 :]:
            for a in ids_a:
                for b in ids_b:
                    cluster.connect(a, b, INTER_REGION_BANDWIDTH, INTER_REGION_LATENCY)
    # Coordinator in region 0: fast links locally, slow links cross-region.
    for a in region_ids[0]:
        cluster.connect(COORDINATOR, a, INTRA_REGION_BANDWIDTH, INTRA_REGION_LATENCY)
    for ids in region_ids[1:]:
        for a in ids:
            cluster.connect(COORDINATOR, a, INTER_REGION_BANDWIDTH, INTER_REGION_LATENCY)
    cluster.validate()
    return cluster


def high_heterogeneity_42() -> Cluster:
    """42 nodes, 7 GPU configurations, single region at 10 Gb/s (§6.5).

    Composition: 4 A100, 6 V100, 8 L4, 10 T4, 4 nodes of 2xL4, 6 nodes of
    2xT4, and 4 nodes of 4xT4.
    """
    cluster = Cluster(name="heterogeneous-42")
    ids = []
    ids += _add_group(cluster, A100_40G, 4, "a100", "region-0")
    ids += _add_group(cluster, V100, 6, "v100", "region-0")
    ids += _add_group(cluster, L4, 8, "l4", "region-0")
    ids += _add_group(cluster, T4, 10, "t4", "region-0")
    ids += _add_group(cluster, L4, 4, "2l4", "region-0", num_gpus=2)
    ids += _add_group(cluster, T4, 6, "2t4", "region-0", num_gpus=2)
    ids += _add_group(cluster, T4, 4, "4t4", "region-0", num_gpus=4)
    cluster.connect_full_mesh(
        ids, INTRA_REGION_BANDWIDTH, INTRA_REGION_LATENCY, include_coordinator=True
    )
    cluster.validate()
    return cluster


def toy_cluster_fig1() -> Cluster:
    """Fig. 1's example: an A100 region and an (L4 + 3 T4) region.

    Inter-region bandwidth is low; intra-region bandwidth is high.
    """
    cluster = Cluster(name="toy-fig1")
    cluster.add_node("a100-0", A100_40G, region="region-1")
    region2 = ["l4-0", "t4-0", "t4-1", "t4-2"]
    cluster.add_node("l4-0", L4, region="region-2")
    for i in range(3):
        cluster.add_node(f"t4-{i}", T4, region="region-2")
    cluster.connect_full_mesh(
        region2, INTRA_REGION_BANDWIDTH, INTRA_REGION_LATENCY,
        include_coordinator=False,
    )
    for other in region2:
        cluster.connect("a100-0", other, INTER_REGION_BANDWIDTH, INTER_REGION_LATENCY)
    cluster.connect(COORDINATOR, "a100-0", INTRA_REGION_BANDWIDTH, INTRA_REGION_LATENCY)
    for other in region2:
        cluster.connect(COORDINATOR, other, INTER_REGION_BANDWIDTH, INTER_REGION_LATENCY)
    cluster.validate()
    return cluster


def toy_cluster_fig2() -> Cluster:
    """Fig. 2's 3-node example: one A100 and two T4s with Mb/s-scale links.

    Bandwidths follow Fig. 2a: coordinator->A100 80 Mb/s, A100->T4-1
    40 Mb/s, A100->T4-2 20 Mb/s, T4-1->T4-2 60 Mb/s, T4-1->coordinator
    50 Mb/s (via its holding of the last layer), T4-2->coordinator 90 Mb/s.
    """
    cluster = Cluster(name="toy-fig2")
    cluster.add_node("a100", A100_40G, region="region-0")
    cluster.add_node("t4-1", T4, region="region-0")
    cluster.add_node("t4-2", T4, region="region-0")
    cluster.connect(COORDINATOR, "a100", 80 * MBIT, 0.001, bidirectional=False)
    cluster.connect("a100", "t4-1", 40 * MBIT, 0.001, bidirectional=False)
    cluster.connect("a100", "t4-2", 20 * MBIT, 0.001, bidirectional=False)
    cluster.connect("t4-1", "t4-2", 60 * MBIT, 0.001, bidirectional=False)
    cluster.connect("t4-1", COORDINATOR, 50 * MBIT, 0.001, bidirectional=False)
    cluster.connect("t4-2", COORDINATOR, 90 * MBIT, 0.001, bidirectional=False)
    cluster.validate()
    return cluster


def small_cluster_fig12() -> Cluster:
    """Fig. 12's solver-quality cluster: 4 L4 + 6 T4 at 10 Gb/s."""
    cluster = Cluster(name="small-fig12")
    ids = []
    ids += _add_group(cluster, L4, 4, "l4", "region-0")
    ids += _add_group(cluster, T4, 6, "t4", "region-0")
    cluster.connect_full_mesh(
        ids, INTRA_REGION_BANDWIDTH, INTRA_REGION_LATENCY, include_coordinator=True
    )
    cluster.validate()
    return cluster
