"""Analytic stand-in for Helix's one-time hardware profiling.

The paper measures two families of constants on real hardware (§4.3):

* ``T_j`` — the maximum tokens/second a node sustains when it holds ``j``
  model layers (capacity of the ``c_in -> c_out`` edge);
* link capacities — tokens/second a network connection can carry, i.e.
  bandwidth divided by the per-token message size.

We derive the same constants from datasheet numbers with a two-term roofline:
processing a batch of ``B`` tokens through ``j`` resident layers costs

    time = B * j / R_c  +  j * weight_read_time  +  overhead

where ``R_c = mfu * FLOPs / flops_per_token_layer`` is the compute rate in
token-layers/second, and ``weight_read_time = layer_bytes / (bw * eff)``
models one streaming read of the resident weights per batch (the
memory-bound component of decode). The same formula drives the simulator's
batch timing, so the MILP's capacity constants and the simulated behaviour
agree by construction — mirroring how the paper's profiled constants match
its testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.models.specs import ModelSpec
from repro.models.memory import kv_token_capacity, max_layers_on_vram
from repro.cluster.network import Link
from repro.cluster.node import ComputeNode


@dataclass(frozen=True)
class NodeProfile:
    """Profiled constants for one node serving one model.

    Attributes:
        node_id: The profiled node.
        max_layers: Most layers the node can hold (weight half of VRAM).
        compute_rate: Token-layers/second of compute (``R_c`` above).
        weight_read_time: Seconds to stream one resident layer's weights.
        batch_overhead: Fixed per-batch overhead in seconds.
        throughput_per_layers: ``T_j`` for ``j = 1 .. max_layers``; index 0
            corresponds to holding one layer.
    """

    node_id: str
    max_layers: int
    compute_rate: float
    weight_read_time: float
    batch_overhead: float
    throughput_per_layers: tuple[float, ...]

    def throughput(self, num_layers: int) -> float:
        """``T_j`` — max tokens/second when holding ``num_layers`` layers."""
        if not 1 <= num_layers <= self.max_layers:
            raise ValueError(
                f"node {self.node_id!r} cannot hold {num_layers} layers "
                f"(max {self.max_layers})"
            )
        return self.throughput_per_layers[num_layers - 1]


@dataclass(frozen=True)
class Profiler:
    """Performance model turning datasheets into serving constants.

    Attributes:
        mfu: Model FLOPs utilization applied to peak compute (typical
            serving MFU; the absolute value shifts all nodes equally).
        bandwidth_efficiency: Achievable fraction of peak memory bandwidth.
        batch_overhead: Fixed per-batch cost (kernel launches, framework).
        reference_batch: Batch size at which ``T_j`` is quoted; matches the
            saturated continuous-batching regime the paper profiles in.
        weight_fraction: Fraction of VRAM reserved for weights (paper: 0.5).
        kv_capacity_scale: Multiplier on KV token capacities. Experiments
            that scale request lengths by ``s`` should scale KV capacity by
            ``s`` too, so per-node request concurrency — the quantity KV
            pressure actually limits — matches the full-scale system.
    """

    mfu: float = 0.45
    bandwidth_efficiency: float = 0.8
    batch_overhead: float = 0.004
    reference_batch: int = 64
    weight_fraction: float = 0.5
    kv_capacity_scale: float = 1.0

    # ------------------------------------------------------------------
    # Node-side constants
    # ------------------------------------------------------------------
    def max_layers(self, node: ComputeNode, model: ModelSpec) -> int:
        """Maximum layers the node can hold in its weight partition."""
        return _cached_max_layers(self, node, model)

    def compute_rate(self, node: ComputeNode, model: ModelSpec) -> float:
        """Compute rate in token-layers/second (``R_c``)."""
        return self.mfu * node.fp16_flops / model.flops_per_token_layer()

    def weight_read_time(self, node: ComputeNode, model: ModelSpec) -> float:
        """Seconds to stream one layer's weights from device memory."""
        effective_bw = node.mem_bandwidth * self.bandwidth_efficiency
        return model.layer_bytes / effective_bw

    def batch_time(
        self,
        node: ComputeNode,
        model: ModelSpec,
        token_layers: float,
        resident_layers: int,
    ) -> float:
        """Wall time for one batch on ``node``.

        Args:
            node: The executing node.
            model: The served model.
            token_layers: Total work in token-layer units (each token
                processed through each of its layers counts once).
            resident_layers: Layers whose weights the batch touches.
        """
        if token_layers < 0 or resident_layers < 0:
            raise ValueError("work quantities must be non-negative")
        compute = token_layers / self.compute_rate(node, model)
        weights = resident_layers * self.weight_read_time(node, model)
        return compute + weights + self.batch_overhead

    def throughput(
        self, node: ComputeNode, model: ModelSpec, num_layers: int
    ) -> float:
        """``T_j``: steady-state tokens/second when holding ``num_layers``.

        Evaluated at ``reference_batch`` tokens per batch, which is where
        continuous batching operates once the cluster is saturated.
        """
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        return _cached_throughput(self, node, model, num_layers)

    def node_profile(self, node: ComputeNode, model: ModelSpec) -> NodeProfile:
        """Profile a node: max layers and the full ``T_j`` table."""
        k = self.max_layers(node, model)
        table = tuple(self.throughput(node, model, j) for j in range(1, k + 1))
        return NodeProfile(
            node_id=node.node_id,
            max_layers=k,
            compute_rate=self.compute_rate(node, model),
            weight_read_time=self.weight_read_time(node, model),
            batch_overhead=self.batch_overhead,
            throughput_per_layers=table,
        )

    def kv_capacity(
        self, node: ComputeNode, model: ModelSpec, resident_layers: int
    ) -> int:
        """KV-cache token capacity for a node holding ``resident_layers``.

        Computed from the VRAM left after the held weights, so placements
        that exceed the half-VRAM provisioning rule (e.g. the SP baseline
        on large models) pay for it with proportionally less KV cache —
        the effect the paper reports in §6.3.
        """
        capacity = kv_token_capacity(model, node.vram_bytes, resident_layers)
        return int(capacity * self.kv_capacity_scale)

    # ------------------------------------------------------------------
    # Link-side constants
    # ------------------------------------------------------------------
    def link_token_capacity(
        self, link: Link, model: ModelSpec, carries_activations: bool
    ) -> float:
        """Tokens/second a link can carry.

        Coordinator links move 4-byte token ids; compute-to-compute links
        move ``hidden_size * dtype`` activations (paper Fig. 2).
        """
        return _cached_link_token_capacity(self, link, model, carries_activations)


# ----------------------------------------------------------------------
# Memoized kernels. Profiler, ComputeNode, Link, and ModelSpec are all
# frozen (hashable) dataclasses, so identical lookups — which the planners
# issue thousands of times while evaluating candidate placements — hit the
# cache instead of re-deriving the same timing-model constants.
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _cached_max_layers(profiler: Profiler, node: ComputeNode, model: ModelSpec) -> int:
    return max_layers_on_vram(model, node.vram_bytes, profiler.weight_fraction)


@lru_cache(maxsize=None)
def _cached_throughput(
    profiler: Profiler, node: ComputeNode, model: ModelSpec, num_layers: int
) -> float:
    batch = float(profiler.reference_batch)
    time = profiler.batch_time(node, model, batch * num_layers, num_layers)
    return batch / time


@lru_cache(maxsize=None)
def _cached_link_token_capacity(
    profiler: Profiler, link: Link, model: ModelSpec, carries_activations: bool
) -> float:
    if carries_activations:
        per_token = model.activation_bytes_per_token
    else:
        per_token = float(model.token_bytes)
    return link.bandwidth / per_token
