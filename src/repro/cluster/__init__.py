"""Cluster modeling: GPUs, nodes, network links, and preset topologies.

This package is the substrate every other layer builds on. A
:class:`~repro.cluster.cluster.Cluster` is a coordinator plus a set of
heterogeneous compute nodes joined by directed network links; the
:mod:`~repro.cluster.profiler` converts datasheet numbers into the
token-throughput constants (``T_j``, link capacities) the paper obtains by
one-time profiling; and :mod:`~repro.cluster.presets` provides the exact
cluster configurations used in the paper's evaluation (single 24-node,
geo-distributed, high-heterogeneity 42-node, and the toy examples of
Figs. 1-2).
"""

from repro.cluster.gpus import (
    GPUSpec,
    GPU_CATALOG,
    H100,
    A100_40G,
    A100_80G,
    L4,
    T4,
    V100,
    get_gpu,
)
from repro.cluster.node import ComputeNode, COORDINATOR
from repro.cluster.network import Link
from repro.cluster.cluster import Cluster
from repro.cluster.profiler import Profiler, NodeProfile
from repro.cluster.presets import (
    single_cluster_24,
    geo_distributed_24,
    high_heterogeneity_42,
    toy_cluster_fig1,
    toy_cluster_fig2,
    small_cluster_fig12,
)

__all__ = [
    "GPUSpec",
    "GPU_CATALOG",
    "H100",
    "A100_40G",
    "A100_80G",
    "L4",
    "T4",
    "V100",
    "get_gpu",
    "ComputeNode",
    "COORDINATOR",
    "Link",
    "Cluster",
    "Profiler",
    "NodeProfile",
    "single_cluster_24",
    "geo_distributed_24",
    "high_heterogeneity_42",
    "toy_cluster_fig1",
    "toy_cluster_fig2",
    "small_cluster_fig12",
]
