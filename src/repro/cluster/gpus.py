"""GPU specification catalog (paper Table 3, plus V100 used in §6.5).

Two FLOP figures are stored per GPU: ``datasheet_fp16_tflops`` reproduces the
numbers printed in Table 3 (which, for H100 and L4, are the 2:1-sparsity
figures NVIDIA advertises), while ``fp16_flops`` is the dense FP16 rate the
performance model uses. Memory bandwidth matters as much as FLOPs for decode
throughput, so both enter the profiler's roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.units import GB, TFLOPS


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Attributes:
        name: Catalog key, e.g. ``"A100-40G"``.
        fp16_flops: Dense FP16 throughput in FLOP/s (used by the profiler).
        datasheet_fp16_tflops: The Table-3 headline TFLOPs figure.
        vram_bytes: On-device memory in bytes.
        mem_bandwidth: HBM/GDDR bandwidth in bytes/s.
        power_watts: TDP, reported for Table-3 reproduction.
        price_usd: Representative unit price, reported for Table-3
            reproduction (midpoint of the ranges the paper quotes).
    """

    name: str
    fp16_flops: float
    datasheet_fp16_tflops: float
    vram_bytes: float
    mem_bandwidth: float
    power_watts: float
    price_usd: float

    def __post_init__(self) -> None:
        if self.fp16_flops <= 0 or self.vram_bytes <= 0 or self.mem_bandwidth <= 0:
            raise ValueError(f"GPU {self.name!r} has non-positive capability")


H100 = GPUSpec(
    name="H100",
    fp16_flops=990 * TFLOPS,
    datasheet_fp16_tflops=1979,
    vram_bytes=80 * GB,
    mem_bandwidth=3350 * GB,
    power_watts=700,
    price_usd=32_500,
)

A100_40G = GPUSpec(
    name="A100-40G",
    fp16_flops=312 * TFLOPS,
    datasheet_fp16_tflops=312,
    vram_bytes=40 * GB,
    mem_bandwidth=1555 * GB,
    power_watts=400,
    price_usd=12_500,
)

A100_80G = GPUSpec(
    name="A100-80G",
    fp16_flops=312 * TFLOPS,
    datasheet_fp16_tflops=312,
    vram_bytes=80 * GB,
    mem_bandwidth=2039 * GB,
    power_watts=400,
    price_usd=15_000,
)

L4 = GPUSpec(
    name="L4",
    fp16_flops=121 * TFLOPS,
    datasheet_fp16_tflops=242,
    vram_bytes=24 * GB,
    mem_bandwidth=300 * GB,
    power_watts=72,
    price_usd=3_000,
)

T4 = GPUSpec(
    name="T4",
    fp16_flops=65 * TFLOPS,
    datasheet_fp16_tflops=65,
    vram_bytes=16 * GB,
    mem_bandwidth=300 * GB,
    power_watts=70,
    price_usd=1_000,
)

V100 = GPUSpec(
    name="V100",
    fp16_flops=125 * TFLOPS,
    datasheet_fp16_tflops=125,
    vram_bytes=16 * GB,
    mem_bandwidth=900 * GB,
    power_watts=300,
    price_usd=8_000,
)

GPU_CATALOG: dict[str, GPUSpec] = {
    gpu.name: gpu for gpu in (H100, A100_40G, A100_80G, L4, T4, V100)
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by catalog name."""
    try:
        return GPU_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(GPU_CATALOG))
        raise KeyError(f"unknown GPU {name!r}; known GPUs: {known}") from None
