"""Directed network links between cluster nodes.

Links are directed because cloud bandwidth is asymmetric in general (the
paper's Table 7 measures different rates in each direction between regions).
A link carries either raw token ids (coordinator <-> compute) or hidden-state
activations (compute <-> compute); the per-token message size is decided by
the flow-graph layer, not here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Link:
    """A directed network connection.

    Attributes:
        src: Source node id (may be the coordinator).
        dst: Destination node id (may be the coordinator).
        bandwidth: Sustained bandwidth in bytes/second.
        latency: One-way propagation latency in seconds.
    """

    src: str
    dst: str
    bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop link on {self.src!r}")
        if self.bandwidth <= 0:
            raise ValueError(
                f"link {self.src!r}->{self.dst!r} must have positive bandwidth"
            )
        if self.latency < 0:
            raise ValueError(
                f"link {self.src!r}->{self.dst!r} has negative latency"
            )

    @property
    def key(self) -> tuple[str, str]:
        """Dictionary key for this link's direction."""
        return (self.src, self.dst)

    def transmission_time(self, num_bytes: float) -> float:
        """Time to push ``num_bytes`` through the link, excluding latency."""
        return num_bytes / self.bandwidth
