"""The :class:`Cluster` container: nodes + coordinator + directed links."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.errors import ClusterError
from repro.cluster.gpus import GPUSpec
from repro.cluster.network import Link
from repro.cluster.node import COORDINATOR, ComputeNode


@dataclass
class Cluster:
    """A heterogeneous serving cluster.

    The coordinator is implicit (id :data:`~repro.cluster.node.COORDINATOR`);
    compute nodes and directed links are added through the builder methods.
    The class enforces referential integrity (links only between known nodes,
    no duplicate ids) so downstream layers can trust the topology.

    Nodes additionally carry an up/down *availability* state for online
    dynamics: a node that failed mid-serving stays part of the topology (its
    links, profiles, and identity survive so it can recover) but is reported
    unavailable until marked up again. Planning against only the live part of
    the cluster goes through :meth:`subcluster`.

    Attributes:
        name: Human-readable cluster label used in reports.
    """

    name: str = "cluster"
    _nodes: dict[str, ComputeNode] = field(default_factory=dict)
    _links: dict[tuple[str, str], Link] = field(default_factory=dict)
    _down: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        gpu: GPUSpec,
        num_gpus: int = 1,
        region: str = "default",
    ) -> ComputeNode:
        """Add a compute node; returns the created node."""
        if node_id in self._nodes:
            raise ClusterError(f"duplicate node id {node_id!r}")
        node = ComputeNode(node_id=node_id, gpu=gpu, num_gpus=num_gpus, region=region)
        self._nodes[node_id] = node
        return node

    def connect(
        self,
        src: str,
        dst: str,
        bandwidth: float,
        latency: float = 0.0,
        bidirectional: bool = True,
    ) -> None:
        """Add a directed link (and its reverse unless ``bidirectional`` is
        false). Re-connecting an existing pair replaces the old link."""
        for endpoint in (src, dst):
            if endpoint != COORDINATOR and endpoint not in self._nodes:
                raise ClusterError(f"link endpoint {endpoint!r} is not a known node")
        self._links[(src, dst)] = Link(src, dst, bandwidth, latency)
        if bidirectional:
            self._links[(dst, src)] = Link(dst, src, bandwidth, latency)

    def connect_full_mesh(
        self,
        node_ids: Iterable[str],
        bandwidth: float,
        latency: float = 0.0,
        include_coordinator: bool = True,
    ) -> None:
        """Connect every pair among ``node_ids`` (and optionally the
        coordinator) with symmetric links of the given bandwidth/latency."""
        ids = list(node_ids)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                self.connect(a, b, bandwidth, latency)
        if include_coordinator:
            for a in ids:
                self.connect(COORDINATOR, a, bandwidth, latency)

    def remove_link(self, src: str, dst: str) -> None:
        """Remove one directed link; raises if absent."""
        try:
            del self._links[(src, dst)]
        except KeyError:
            raise ClusterError(f"no link {src!r}->{dst!r}") from None

    def remove_node(self, node_id: str) -> ComputeNode:
        """Remove a compute node and every link incident to it.

        Dropping the incident links keeps the referential integrity that
        :meth:`validate` checks — no dangling link may reference the removed
        node. Returns the removed node; raises if unknown.
        """
        try:
            node = self._nodes.pop(node_id)
        except KeyError:
            raise ClusterError(f"unknown node {node_id!r}") from None
        for key in [k for k in self._links if node_id in k]:
            del self._links[key]
        self._down.discard(node_id)
        return node

    def set_link_bandwidth(self, src: str, dst: str, bandwidth: float) -> Link:
        """Replace the ``src -> dst`` link with one at ``bandwidth``.

        Links are frozen (profiler lookups memoize on them), so changing a
        live link's bandwidth — degradation, partition, repair — swaps in a
        fresh :class:`Link` with the same latency. Returns the new link.
        """
        old = self.link(src, dst)
        new = Link(src, dst, bandwidth, old.latency)
        self._links[(src, dst)] = new
        return new

    # ------------------------------------------------------------------
    # Availability (online dynamics)
    # ------------------------------------------------------------------
    def set_node_available(self, node_id: str, available: bool) -> None:
        """Mark a node up or down; raises if the node is unknown."""
        self.node(node_id)  # referential check
        if available:
            self._down.discard(node_id)
        else:
            self._down.add(node_id)

    def node_available(self, node_id: str) -> bool:
        """Whether a node is currently up; raises if unknown."""
        self.node(node_id)
        return node_id not in self._down

    @property
    def available_node_ids(self) -> list[str]:
        """Ids of nodes currently up, in insertion order."""
        return [nid for nid in self._nodes if nid not in self._down]

    @property
    def down_node_ids(self) -> list[str]:
        """Ids of nodes currently down, in insertion order."""
        return [nid for nid in self._nodes if nid in self._down]

    def subcluster(self, node_ids: Iterable[str] | None = None,
                   name: str | None = None) -> "Cluster":
        """A new cluster over ``node_ids`` (default: the available nodes).

        Keeps the selected nodes, every link between them, and their
        coordinator links; node and link objects are shared (both are
        frozen). All kept nodes start available. This is what online
        replanning hands to a planner after failures.
        """
        keep = set(self.available_node_ids if node_ids is None else node_ids)
        unknown = keep - set(self._nodes)
        if unknown:
            raise ClusterError(f"unknown nodes {sorted(unknown)!r}")
        sub = Cluster(name=name or f"{self.name}-sub{len(keep)}")
        for nid, node in self._nodes.items():
            if nid in keep:
                sub._nodes[nid] = node
        for (src, dst), link in self._links.items():
            if (src in keep or src == COORDINATOR) and (
                dst in keep or dst == COORDINATOR
            ):
                sub._links[(src, dst)] = link
        return sub

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> dict[str, ComputeNode]:
        """Mapping of node id to node (excluding the coordinator)."""
        return dict(self._nodes)

    @property
    def node_ids(self) -> list[str]:
        """Node ids in insertion order."""
        return list(self._nodes)

    @property
    def links(self) -> dict[tuple[str, str], Link]:
        """All directed links keyed by ``(src, dst)``."""
        return dict(self._links)

    def node(self, node_id: str) -> ComputeNode:
        """Fetch a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ClusterError(f"unknown node {node_id!r}") from None

    def link(self, src: str, dst: str) -> Link:
        """Fetch the directed link ``src -> dst``."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise ClusterError(f"no link {src!r}->{dst!r}") from None

    def has_link(self, src: str, dst: str) -> bool:
        """Whether a directed link ``src -> dst`` exists."""
        return (src, dst) in self._links

    def links_from(self, src: str) -> list[Link]:
        """All outgoing links of ``src`` (which may be the coordinator)."""
        return [l for (s, _), l in self._links.items() if s == src]

    def links_to(self, dst: str) -> list[Link]:
        """All incoming links of ``dst`` (which may be the coordinator)."""
        return [l for (_, d), l in self._links.items() if d == dst]

    def regions(self) -> list[str]:
        """Distinct region labels, in first-appearance order."""
        seen: dict[str, None] = {}
        for node in self._nodes.values():
            seen.setdefault(node.region, None)
        return list(seen)

    def nodes_in_region(self, region: str) -> list[ComputeNode]:
        """All compute nodes whose region label matches."""
        return [n for n in self._nodes.values() if n.region == region]

    def gpu_type_counts(self) -> dict[str, int]:
        """Histogram of node GPU labels (``"T4"``, ``"2xL4"``, ...)."""
        counts: dict[str, int] = {}
        for node in self._nodes.values():
            counts[node.gpu_label] = counts.get(node.gpu_label, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ComputeNode]:
        return iter(self._nodes.values())

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants needed by placement and simulation.

        Raises:
            ClusterError: If the cluster has no nodes, the coordinator is
                disconnected, or a link references a missing node.
        """
        if not self._nodes:
            raise ClusterError("cluster has no compute nodes")
        for (src, dst), _ in self._links.items():
            for endpoint in (src, dst):
                if endpoint != COORDINATOR and endpoint not in self._nodes:
                    raise ClusterError(
                        f"link {src!r}->{dst!r} references unknown node"
                    )
        stale = self._down - set(self._nodes)
        if stale:
            raise ClusterError(
                f"availability state references unknown nodes {sorted(stale)!r}"
            )
        if not self.links_from(COORDINATOR):
            raise ClusterError("coordinator has no outgoing links")
        if not self.links_to(COORDINATOR):
            raise ClusterError("coordinator has no incoming links")

    def describe(self) -> str:
        """One-line summary, e.g. ``single-24: 24 nodes (4xA100-40G, ...)``."""
        parts = [f"{count}x{label}" for label, count in self.gpu_type_counts().items()]
        return f"{self.name}: {len(self)} nodes ({', '.join(parts)})"
