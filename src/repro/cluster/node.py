"""Compute nodes and the coordinator sentinel.

A compute node aggregates one or more identical GPUs into a single logical
device, following the paper's abstraction (§4.1: "Compute nodes with multiple
GPUs can be abstracted as a single logical node, aggregating GPUs' combined
computational capacity and GPU VRAM resources"). Intra-node parallelism is
tensor parallelism, so FLOPs, bandwidth, and VRAM all scale with GPU count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gpus import GPUSpec

COORDINATOR = "coordinator"
"""Reserved node id for the cluster coordinator (source/sink in the graph)."""


@dataclass(frozen=True)
class ComputeNode:
    """A logical compute node: ``num_gpus`` identical GPUs in one machine.

    Attributes:
        node_id: Unique identifier within a cluster. Must not collide with
            the reserved :data:`COORDINATOR` id.
        gpu: The GPU model installed in this node.
        num_gpus: GPUs per node (tensor-parallel within the node).
        region: Label for geographic grouping; used by presets and by
            network-aware heuristics/pruning.
    """

    node_id: str
    gpu: GPUSpec
    num_gpus: int = 1
    region: str = "default"

    def __post_init__(self) -> None:
        if self.node_id == COORDINATOR:
            raise ValueError(f"node id {COORDINATOR!r} is reserved")
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")

    @property
    def fp16_flops(self) -> float:
        """Aggregate dense FP16 FLOP/s across the node's GPUs."""
        return self.gpu.fp16_flops * self.num_gpus

    @property
    def vram_bytes(self) -> float:
        """Aggregate VRAM across the node's GPUs."""
        return self.gpu.vram_bytes * self.num_gpus

    @property
    def mem_bandwidth(self) -> float:
        """Aggregate memory bandwidth across the node's GPUs."""
        return self.gpu.mem_bandwidth * self.num_gpus

    @property
    def gpu_label(self) -> str:
        """Short label such as ``"T4"`` or ``"2xL4"`` for reports."""
        if self.num_gpus == 1:
            return self.gpu.name
        return f"{self.num_gpus}x{self.gpu.name}"
