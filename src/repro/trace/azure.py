"""Synthetic Azure-Conversation-like trace (paper §6.2, Fig. 5a).

The published statistics of the pruned dataset: 16657 requests, mean input
length 763 (capped at 2048), mean output length 232 (capped at 1024), with
right-skewed marginals. Log-normal distributions with the parameters below
land within a few percent of those means after capping, and reproduce the
qualitative histogram shape of Fig. 5a.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.sim.request import Request

#: Published statistics of the pruned Azure Conversation dataset.
AZURE_NUM_REQUESTS = 16657
AZURE_MEAN_INPUT = 763
AZURE_MEAN_OUTPUT = 232
AZURE_MAX_INPUT = 2048
AZURE_MAX_OUTPUT = 1024


@dataclass(frozen=True)
class AzureTraceConfig:
    """Parameters of the synthetic trace.

    Attributes:
        num_requests: Trace size.
        seed: RNG seed.
        scale: Multiplier on request lengths. Benchmarks use fractional
            scales to keep Python-simulator runtimes manageable; scaling
            both input and output preserves the prompt/decode token ratio
            that drives every relative comparison.
        input_sigma / output_sigma: Log-normal shape parameters.
    """

    num_requests: int = 1000
    seed: int = 0
    scale: float = 1.0
    input_sigma: float = 0.9
    output_sigma: float = 0.85

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")


def _lognormal_mu(target_mean: float, sigma: float) -> float:
    """``mu`` such that an (uncapped) log-normal has the target mean."""
    return math.log(target_mean) - sigma**2 / 2.0


def synthesize_azure_trace(
    config: AzureTraceConfig | None = None,
    rng: random.Random | None = None,
) -> list[Request]:
    """Generate the synthetic trace with all arrivals at time zero.

    Arrival times are assigned separately (:mod:`repro.trace.arrival`) so
    the same length sample serves both offline and online settings, exactly
    as the paper reuses one dataset with two arrival processes. Sampling
    uses ``config.seed`` (or the explicit ``rng``) and never the global
    :mod:`random` state.
    """
    config = config or AzureTraceConfig()
    if rng is None:
        rng = random.Random(config.seed)
    # Pre-cap targets are inflated so the *post-cap* means match the
    # published 763 / 232 (capping at 2048 / 1024 trims the right tail).
    input_mu = _lognormal_mu(AZURE_MEAN_INPUT * 1.145, config.input_sigma)
    output_mu = _lognormal_mu(AZURE_MEAN_OUTPUT * 1.055, config.output_sigma)
    max_input = max(1, int(AZURE_MAX_INPUT * config.scale))
    max_output = max(1, int(AZURE_MAX_OUTPUT * config.scale))

    requests = []
    for index in range(config.num_requests):
        input_len = int(rng.lognormvariate(input_mu, config.input_sigma) * config.scale)
        output_len = int(
            rng.lognormvariate(output_mu, config.output_sigma) * config.scale
        )
        input_len = min(max(input_len, 1), max_input)
        output_len = min(max(output_len, 1), max_output)
        requests.append(
            Request(
                request_id=f"azure-{index}",
                input_len=input_len,
                output_len=output_len,
                arrival_time=0.0,
            )
        )
    return requests


def trace_statistics(requests: list[Request]) -> dict[str, float]:
    """Summary statistics for Fig. 5a-style reporting.

    Raises:
        ValueError: On an empty request list (instead of a bare
            ``ZeroDivisionError`` from the mean computations).
    """
    if not requests:
        raise ValueError("cannot compute statistics of an empty trace")
    inputs = [r.input_len for r in requests]
    outputs = [r.output_len for r in requests]
    return {
        "num_requests": len(requests),
        "mean_input": sum(inputs) / len(inputs),
        "mean_output": sum(outputs) / len(outputs),
        "max_input": max(inputs),
        "max_output": max(outputs),
        "p50_input": sorted(inputs)[len(inputs) // 2],
        "p50_output": sorted(outputs)[len(outputs) // 2],
    }
