"""Arrival processes for offline and online serving (paper §6.2, Fig. 5b).

* Offline: every request is available at time zero ("requests arrive at the
  rate needed to fully utilize the cluster").
* Online: Poisson arrivals whose rate follows the Azure dataset's diurnal
  shape, with the *average* rate scaled to a fraction (the paper uses 75%)
  of the cluster's peak throughput.

Every stochastic entry point takes an explicit ``seed`` (or a pre-built
``rng``) and never touches the module-level :mod:`random` state, so a
``(generator, seed)`` pair fully reproduces a stamped trace.
"""

from __future__ import annotations

import math
import random

from repro.sim.request import Request


def _resolve_rng(seed: int, rng: random.Random | None) -> random.Random:
    """An explicit generator wins; otherwise derive one from ``seed``."""
    return rng if rng is not None else random.Random(seed)


def offline_arrivals(requests: list[Request]) -> list[Request]:
    """All requests available at time zero."""
    return [
        Request(r.request_id, r.input_len, r.output_len, 0.0) for r in requests
    ]


def poisson_arrivals(
    requests: list[Request],
    rate: float,
    seed: int = 0,
    rng: random.Random | None = None,
) -> list[Request]:
    """Homogeneous Poisson arrivals at ``rate`` requests/second."""
    if not requests:
        raise ValueError("cannot stamp arrivals on an empty request list")
    if rate <= 0 or not math.isfinite(rate):
        raise ValueError(f"arrival rate must be positive and finite, got {rate}")
    rng = _resolve_rng(seed, rng)
    now = 0.0
    out = []
    for request in requests:
        now += rng.expovariate(rate)
        out.append(Request(request.request_id, request.input_len, request.output_len, now))
    return out


def diurnal_arrivals(
    requests: list[Request],
    mean_rate: float,
    seed: int = 0,
    period: float = 1800.0,
    amplitude: float = 0.35,
    rng: random.Random | None = None,
) -> list[Request]:
    """Non-homogeneous Poisson arrivals with a sinusoidal rate.

    The instantaneous rate is
    ``mean_rate * (1 + amplitude * sin(2*pi*t/period))`` — a smooth
    approximation of the Azure arrival-rate curve in Fig. 5b — sampled by
    thinning.

    Args:
        requests: Requests to stamp, in order.
        mean_rate: Average arrivals per second.
        seed: RNG seed (ignored when ``rng`` is given).
        period: Seconds per diurnal cycle (scaled down like everything
            else in the simulated runs).
        amplitude: Relative swing of the rate around its mean (< 1).
        rng: Explicit generator, for callers threading one seed through a
            whole scenario.
    """
    if not requests:
        raise ValueError("cannot stamp arrivals on an empty request list")
    if mean_rate <= 0 or not math.isfinite(mean_rate):
        raise ValueError(
            f"mean_rate must be positive and finite, got {mean_rate}"
        )
    if not 0.0 <= amplitude < 1.0:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    rng = _resolve_rng(seed, rng)
    rate_max = mean_rate * (1.0 + amplitude)
    now = 0.0
    out = []
    for request in requests:
        # Thinning: propose at rate_max, accept with rate(t)/rate_max.
        while True:
            now += rng.expovariate(rate_max)
            rate_now = mean_rate * (
                1.0 + amplitude * math.sin(2.0 * math.pi * now / period)
            )
            if rng.random() <= rate_now / rate_max:
                break
        out.append(Request(request.request_id, request.input_len, request.output_len, now))
    return out


def rate_for_utilization(
    peak_token_throughput: float,
    requests: list[Request],
    utilization: float = 0.75,
) -> float:
    """Requests/second that loads the cluster to ``utilization``.

    The paper scales the online average arrival rate to 75% of the
    cluster's peak throughput. Peak throughput is a token rate (the
    placement's max flow); each request consumes ``input + output`` tokens
    of that capacity.
    """
    if not requests:
        raise ValueError("cannot derive an arrival rate from an empty trace")
    if peak_token_throughput <= 0 or not math.isfinite(peak_token_throughput):
        raise ValueError(
            "peak throughput must be positive and finite, got "
            f"{peak_token_throughput}"
        )
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    mean_tokens = sum(r.total_tokens for r in requests) / len(requests)
    if mean_tokens <= 0:
        raise ValueError(
            "requests carry no tokens; cannot derive an arrival rate"
        )
    return utilization * peak_token_throughput / mean_tokens
