"""Workload traces (paper §6.2, Fig. 5).

The paper evaluates on the Azure Conversation dataset, pruned to inputs
<= 2048 and outputs <= 1024 (16657 requests, mean input 763, mean output
232). The dataset itself is not redistributable here, so
:mod:`repro.trace.azure` synthesizes an equivalent trace: log-normal length
marginals calibrated to the published means and caps, plus the dataset's
diurnal arrival-rate shape for online serving.
"""

from repro.trace.azure import (
    AzureTraceConfig,
    synthesize_azure_trace,
    trace_statistics,
)
from repro.trace.arrival import (
    offline_arrivals,
    poisson_arrivals,
    diurnal_arrivals,
    rate_for_utilization,
)

__all__ = [
    "AzureTraceConfig",
    "synthesize_azure_trace",
    "trace_statistics",
    "offline_arrivals",
    "poisson_arrivals",
    "diurnal_arrivals",
    "rate_for_utilization",
]
