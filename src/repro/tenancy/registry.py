"""Tenant registry: who shares the cluster, and on what terms.

A *tenant* is one customer of the serving deployment: a stream of
requests tagged with its ``tenant_id``, an :class:`SLOClass` describing
the latency it pays for (TTFT/TBT percentile targets), a ``priority``
used by admission control (lowest priority is shed first under
overload), a ``rate_share`` entitling it to a fraction of cluster
service under the windowed fairness policy, and an optional per-layer
VRAM adapter footprint the planner must provision on top of the shared
base model (LoRA-style: the trunk's layers are counted once, each
tenant only adds its deltas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class SLOClass:
    """A latency service-level objective.

    Attributes:
        name: Human-readable class name (``interactive``, ``batch``, ...).
        ttft_target: Time-to-first-token target in seconds.
        tbt_target: Time-between-tokens target in seconds (per-request
            mean decode interval).
        percentile: Fraction of finished requests that must meet each
            target for the SLO to count as attained (e.g. ``0.95``).
    """

    name: str
    ttft_target: float
    tbt_target: float
    percentile: float = 0.95

    def __post_init__(self) -> None:
        if self.ttft_target <= 0 or self.tbt_target <= 0:
            raise ValueError(
                f"SLO targets must be positive: ttft={self.ttft_target}, "
                f"tbt={self.tbt_target}"
            )
        if not 0.0 < self.percentile <= 1.0:
            raise ValueError(
                f"percentile must be in (0, 1], got {self.percentile}"
            )


#: Latency-sensitive chat traffic: tight first token, tight streaming.
INTERACTIVE = SLOClass("interactive", ttft_target=2.0, tbt_target=0.25)
#: Default API traffic.
STANDARD = SLOClass("standard", ttft_target=8.0, tbt_target=0.75)
#: Throughput-oriented batch/offline traffic: latency barely matters.
BATCH = SLOClass("batch", ttft_target=30.0, tbt_target=3.0, percentile=0.5)

#: The built-in SLO classes, by name.
SLO_CLASSES = {slo.name: slo for slo in (INTERACTIVE, STANDARD, BATCH)}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's contract with the deployment.

    Attributes:
        tenant_id: Unique identifier; requests carry it in
            :attr:`~repro.sim.request.Request.tenant_id`.
        slo: The latency class this tenant pays for.
        priority: Admission-control rank. Under overload the *lowest*
            priority traffic is shed first; higher-priority arrivals may
            evict a lower-priority queued request.
        rate_share: Relative service entitlement under windowed fairness
            (normalized across the registry; any positive scale works).
        adapter_bytes_per_layer: Per-layer VRAM this tenant adds on top
            of the shared base model (fine-tuned adapter deltas). The
            planner provisions the base layers once plus the sum of all
            tenants' adapters — not one full copy per tenant.
    """

    tenant_id: str
    slo: SLOClass = STANDARD
    priority: int = 0
    rate_share: float = 1.0
    adapter_bytes_per_layer: float = 0.0

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if self.rate_share <= 0:
            raise ValueError(
                f"rate_share must be positive, got {self.rate_share}"
            )
        if self.adapter_bytes_per_layer < 0:
            raise ValueError(
                "adapter_bytes_per_layer must be >= 0, got "
                f"{self.adapter_bytes_per_layer}"
            )


class TenantRegistry:
    """The deployment's tenant table: id -> :class:`TenantSpec`.

    Iteration order is sorted by ``tenant_id`` so every consumer
    (fairness selector, planner, metrics) sees tenants in one
    deterministic order regardless of construction order.
    """

    def __init__(self, tenants: list[TenantSpec] | tuple[TenantSpec, ...]):
        if not tenants:
            raise ValueError("a tenant registry needs at least one tenant")
        specs = sorted(tenants, key=lambda spec: spec.tenant_id)
        seen: set[str] = set()
        for spec in specs:
            if spec.tenant_id in seen:
                raise ValueError(f"duplicate tenant_id {spec.tenant_id!r}")
            seen.add(spec.tenant_id)
        self._specs: dict[str, TenantSpec] = {
            spec.tenant_id: spec for spec in specs
        }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[TenantSpec]:
        return iter(self._specs.values())

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._specs

    @property
    def ids(self) -> tuple[str, ...]:
        """Tenant ids in the registry's deterministic (sorted) order."""
        return tuple(self._specs)

    def get(self, tenant_id: str) -> TenantSpec:
        """The spec for ``tenant_id`` (KeyError with context if unknown)."""
        try:
            return self._specs[tenant_id]
        except KeyError:
            raise KeyError(
                f"unknown tenant {tenant_id!r}; registered: {self.ids}"
            ) from None

    def shares(self) -> dict[str, float]:
        """Normalized rate shares (sum to 1.0)."""
        total = sum(spec.rate_share for spec in self)
        return {
            spec.tenant_id: spec.rate_share / total for spec in self
        }

    def priorities(self) -> dict[str, int]:
        """Tenant id -> admission priority."""
        return {spec.tenant_id: spec.priority for spec in self}

    def adapter_overhead_bytes(self) -> float:
        """Summed per-layer adapter VRAM across every tenant.

        This is what riding on one shared base costs per layer *beyond*
        the base weights — the planner adds it to the base's
        ``layer_bytes`` once, instead of provisioning a full model copy
        per tenant.
        """
        return sum(spec.adapter_bytes_per_layer for spec in self)
