"""Multi-tenant serving: tenant registry, SLO classes, windowed fairness,
and admission control.

Everything here is default-off: a :class:`~repro.sim.simulator.Simulation`
without ``tenancy=`` behaves bit-identically to the single-tenant engine.
"""

from repro.tenancy.fairness import (
    FairnessConfig,
    WindowedFairnessTracker,
    jain_index,
)
from repro.tenancy.manager import (
    AdmissionConfig,
    FairPendingQueue,
    StarvationEvent,
    TenancyConfig,
    TenantManager,
)
from repro.tenancy.registry import (
    BATCH,
    INTERACTIVE,
    SLO_CLASSES,
    STANDARD,
    SLOClass,
    TenantRegistry,
    TenantSpec,
)

__all__ = [
    "AdmissionConfig",
    "BATCH",
    "FairPendingQueue",
    "FairnessConfig",
    "INTERACTIVE",
    "SLOClass",
    "SLO_CLASSES",
    "STANDARD",
    "StarvationEvent",
    "TenancyConfig",
    "TenantManager",
    "TenantRegistry",
    "TenantSpec",
    "WindowedFairnessTracker",
    "jain_index",
]
