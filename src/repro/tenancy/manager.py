"""Runtime tenancy state: fairness tracking, selection, admission.

:class:`TenantManager` is the single mutable object the simulator talks
to. It owns the :class:`~repro.tenancy.fairness.WindowedFairnessTracker`,
per-tenant SLO pressure (recent TTFT attainment), the starvation
watchdog, and the selection policy. :class:`FairPendingQueue` is a
deque-compatible pending queue that groups waiting requests per tenant
and asks the manager which tenant to serve next — with a single tenant
it degenerates to the exact FIFO the legacy engine uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.tenancy.fairness import FairnessConfig, WindowedFairnessTracker
from repro.tenancy.registry import TenantRegistry


@dataclass(frozen=True)
class AdmissionConfig:
    """Overload admission policy.

    Attributes:
        max_pending: Queue-depth cap; arrivals beyond it are candidates
            for shedding.
        evict_lower_priority: When a higher-priority request arrives at
            a full queue, shed the lowest-priority *queued* request to
            make room instead of shedding the arrival. This is what
            "sheds lowest-priority traffic first" means under a mixed
            backlog.
    """

    max_pending: int
    evict_lower_priority: bool = True

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")


@dataclass(frozen=True)
class TenancyConfig:
    """Everything the simulator needs to run multi-tenant.

    Attach via ``Simulation(..., tenancy=TenancyConfig(registry))``.
    ``None`` (the default everywhere) keeps the engine bit-identical to
    the single-tenant legacy behaviour.
    """

    registry: TenantRegistry
    fairness: FairnessConfig = field(default_factory=FairnessConfig)
    admission: AdmissionConfig | None = None


@dataclass(frozen=True)
class StarvationEvent:
    """A backlogged tenant went a full fairness horizon without service."""

    tenant_id: str
    backlogged_since: float
    detected_at: float


class TenantManager:
    """Mutable per-run tenancy state, fed by simulator hooks.

    The simulator calls ``note_*`` at the few points where tenancy is
    observable — enqueue/serve on the pending queue, dispatch/release of
    pipeline occupancy, token delivery — and asks :meth:`select_tenant`
    when the pending queue must choose whose request runs next.
    """

    def __init__(self, config: TenancyConfig):
        self.config = config
        self.registry = config.registry
        self.fairness = config.fairness
        self._shares = self.registry.shares()
        self._priorities = self.registry.priorities()
        self.tracker = WindowedFairnessTracker(self.fairness, self._shares)
        # Open pipeline-occupancy spans: sched_id -> (tenant_id, start).
        self._spans: dict[int, tuple[str, float]] = {}
        # Recent TTFT samples per tenant, for SLO pressure in selection.
        self._ttft: dict[str, deque[float]] = {
            tid: deque(maxlen=32) for tid in self.registry.ids
        }
        # Starvation watchdog: tenant -> time it became backlogged-unserved.
        self._starve_mark: dict[str, float] = {}
        self.starvation_events: list[StarvationEvent] = []
        self.tokens_by_tenant: dict[str, int] = {
            tid: 0 for tid in self.registry.ids
        }

    # -- identity -------------------------------------------------------
    def priority_of(self, tenant_id: str) -> int:
        return self._priorities[tenant_id]

    # -- queue hooks ----------------------------------------------------
    def note_enqueue(self, tenant_id: str, now: float) -> None:
        """A request joined the pending queue for ``tenant_id``."""
        self._starve_mark.setdefault(tenant_id, now)
        self._check_starvation(now)

    def note_serve(self, tenant_id: str, now: float, still_backlogged: bool) -> None:
        """A pending request of ``tenant_id`` was taken off the queue."""
        if still_backlogged:
            self._starve_mark[tenant_id] = now
        else:
            self._starve_mark.pop(tenant_id, None)
        self._check_starvation(now)

    def note_drop(self, tenant_id: str, now: float, still_backlogged: bool) -> None:
        """A pending request left the queue without being served (shed,
        deadline-expired). Not progress — the mark is only cleared when
        the tenant has nothing left waiting."""
        if not still_backlogged:
            self._starve_mark.pop(tenant_id, None)
        self._check_starvation(now)

    def _check_starvation(self, now: float) -> None:
        horizon = self.fairness.horizon
        for tenant_id, since in list(self._starve_mark.items()):
            if now - since > horizon:
                self.starvation_events.append(
                    StarvationEvent(tenant_id, since, now)
                )
                self._starve_mark[tenant_id] = now

    # -- pipeline occupancy (T-mode service) ----------------------------
    def note_dispatch(self, sched_id: int, tenant_id: str, now: float) -> None:
        self._spans[sched_id] = (tenant_id, now)

    def note_release(self, sched_id: int, now: float) -> None:
        span = self._spans.pop(sched_id, None)
        if span is not None and self.fairness.mode == "T":
            tenant_id, start = span
            self.tracker.note_span(tenant_id, start, now)

    # -- token delivery (W-mode service) --------------------------------
    def note_token(self, tenant_id: str, when: float) -> None:
        self.tokens_by_tenant[tenant_id] += 1
        if self.fairness.mode == "W":
            self.tracker.note(tenant_id, when, 1.0)

    def note_first_token(self, tenant_id: str, ttft: float) -> None:
        self._ttft[tenant_id].append(ttft)

    # -- selection ------------------------------------------------------
    def slo_pressure(self, tenant_id: str) -> float:
        """How far below its SLO percentile the tenant's recent TTFTs are.

        0.0 when attainment meets the percentile (or no samples yet);
        grows toward the percentile itself as attainment collapses.
        """
        spec = self.registry.get(tenant_id)
        samples = self._ttft[tenant_id]
        if not samples:
            return 0.0
        attained = sum(1 for t in samples if t <= spec.slo.ttft_target)
        attainment = attained / len(samples)
        return max(0.0, spec.slo.percentile - attainment)

    def _deficits_now(self, backlogged: Iterable[str], now: float) -> dict[str, float]:
        """Fairness deficits including still-open T-mode spans."""
        if self.fairness.mode == "T" and self._spans:
            # Credit open occupancy up to `now` on a scratch copy so the
            # selector sees who is holding pipelines *right now*.
            observed = self.tracker.service_in_backlog(now)
            horizon_start = now - self.fairness.horizon
            for tenant_id, start in self._spans.values():
                observed[tenant_id] += now - max(start, horizon_start)
            return self._deficits_from(observed, backlogged)
        return self.tracker.deficits(now, backlogged)

    def _deficits_from(
        self, observed: dict[str, float], backlogged: Iterable[str]
    ) -> dict[str, float]:
        active = {tid for tid, amount in observed.items() if amount > 0}
        active.update(tid for tid in backlogged if tid in self._shares)
        out = {tid: 0.0 for tid in self._shares}
        if not active:
            return out
        entitled_total = sum(self._shares[tid] for tid in active)
        observed_total = sum(observed[tid] for tid in active)
        for tid in active:
            entitled = self._shares[tid] / entitled_total
            got = observed[tid] / observed_total if observed_total > 0 else 0.0
            out[tid] = entitled - got
        return out

    def select_tenant(self, backlogged: Iterable[str], now: float) -> str:
        """Which backlogged tenant should be served next.

        ``deficit`` scores each candidate as
        ``fairness_deficit + slo_weight * slo_pressure`` and serves the
        highest score (ties: higher priority, then tenant id).
        ``priority`` serves the highest admission priority outright —
        the deliberately unfair control that starves low-priority
        tenants under sustained high-priority load.
        """
        candidates = sorted(set(backlogged))
        if not candidates:
            raise ValueError("select_tenant called with no backlogged tenants")
        if len(candidates) == 1:
            return candidates[0]
        if self.fairness.selector == "priority":
            return min(candidates, key=lambda tid: (-self._priorities[tid], tid))
        deficits = self._deficits_now(candidates, now)
        weight = self.fairness.slo_weight
        return min(
            candidates,
            key=lambda tid: (
                -(deficits[tid] + weight * self.slo_pressure(tid)),
                -self._priorities[tid],
                tid,
            ),
        )

    # -- reporting ------------------------------------------------------
    def fairness_index(self, now: float) -> float:
        """Backlog-aware Jain index at time ``now``.

        Wraps :meth:`WindowedFairnessTracker.fairness_index` with the
        set of currently backlogged tenants (the starvation watchdog's
        marks), so a tenant with queued-but-never-served demand counts
        as a zero-service participant instead of being invisible — a
        fully starved system scores ``1/n``, not the idle system's 1.0.
        """
        return self.tracker.fairness_index(now, backlogged=self._starve_mark)

    # -- end of run -----------------------------------------------------
    def finalize(self, now: float) -> None:
        """Close the books at simulation end.

        Flushes any still-open T-mode occupancy spans and runs one last
        starvation check so tenants starved right up to the end are
        reported.
        """
        if self.fairness.mode == "T":
            for sched_id in list(self._spans):
                self.note_release(sched_id, now)
        self._check_starvation(now)


class FairPendingQueue:
    """Deque-compatible pending queue with per-tenant FIFO lanes.

    Drop-in replacement for the simulator's ``deque[Request]``: supports
    ``append``, ``popleft``, ``remove``, ``len``, truthiness, iteration,
    and ``[0]`` (the element ``popleft`` would return). Head selection
    delegates to :meth:`TenantManager.select_tenant` and is cached so
    the simulator's peek-then-pop pattern (``_retry_pending``) serves
    the tenant it peeked. With one tenant every operation reduces to a
    plain FIFO, keeping the single-tenant schedule identical to the
    legacy queue.
    """

    def __init__(self, manager: TenantManager, clock: Callable[[], float]):
        self._manager = manager
        self._clock = clock
        self._lanes: dict[str, deque] = {}
        self._order: list[str] = []  # lane creation order is sorted on use
        self._size = 0
        self._head_tenant: str | None = None

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator:
        # Snapshot so callers may mutate (remove) while iterating, as the
        # deadline sweep does. Sorted-tenant order, FIFO within a lane.
        items = []
        for tenant_id in sorted(self._lanes):
            items.extend(self._lanes[tenant_id])
        return iter(items)

    def _backlogged(self) -> list[str]:
        return [tid for tid, lane in self._lanes.items() if lane]

    def _select_head(self) -> str:
        if self._head_tenant is None or not self._lanes.get(self._head_tenant):
            self._head_tenant = self._manager.select_tenant(
                self._backlogged(), self._clock()
            )
        return self._head_tenant

    def __getitem__(self, index: int):
        if index != 0:
            raise IndexError("FairPendingQueue only supports peeking at [0]")
        if not self._size:
            raise IndexError("peek from an empty pending queue")
        return self._lanes[self._select_head()][0]

    def append(self, request) -> None:
        tenant_id = request.tenant_id
        lane = self._lanes.get(tenant_id)
        if lane is None:
            lane = self._lanes[tenant_id] = deque()
        lane.append(request)
        self._size += 1
        self._head_tenant = None
        self._manager.note_enqueue(tenant_id, self._clock())

    def popleft(self):
        if not self._size:
            raise IndexError("pop from an empty pending queue")
        tenant_id = self._select_head()
        lane = self._lanes[tenant_id]
        request = lane.popleft()
        self._size -= 1
        self._head_tenant = None
        self._manager.note_serve(tenant_id, self._clock(), bool(lane))
        return request

    def remove(self, request) -> None:
        lane = self._lanes.get(request.tenant_id)
        if lane is None:
            raise ValueError("request not in pending queue")
        lane.remove(request)  # raises ValueError if absent, like deque
        self._size -= 1
        self._head_tenant = None
        self._manager.note_drop(request.tenant_id, self._clock(), bool(lane))

    # -- admission helpers ---------------------------------------------
    def lowest_priority_queued(self):
        """The shed victim: last-queued request of the lowest-priority
        backlogged tenant (shed newest first within the victim tenant so
        older work keeps its place)."""
        backlogged = self._backlogged()
        if not backlogged:
            return None
        victim_tenant = min(
            backlogged,
            key=lambda tid: (self._manager.priority_of(tid), tid),
        )
        return self._lanes[victim_tenant][-1]
