"""Windowed fairness accounting across tenants.

Service is accumulated into fixed-width time windows and fairness is
judged over a *backlog* of the last ``N`` windows (the current window
plus the ``N - 1`` before it). Two service currencies are supported:

* **W (amount-of-work)** — tokens served per window. A tenant's
  observed share is its fraction of all tokens generated inside the
  backlog horizon.
* **T (time-based)** — seconds of pipeline occupancy per window. Each
  in-flight request holds its pipeline from dispatch to release; the
  held span is spread across the windows it overlaps.

For each *active* tenant (one that consumed service inside the backlog
or is currently backlogged) the tracker computes

    deficit_t = entitled_t - observed_t / total_observed

where ``entitled_t`` is the tenant's normalized rate share
(renormalized over active tenants only, so an idle tenant neither earns
debt nor dilutes the entitlement of the busy ones). A positive deficit
means the tenant got less than its entitlement over the backlog and the
deficit-aware selector should prefer it.

The fairness *index* reported in metrics is Jain's index over the
ratio observed/entitled per active tenant:

    J(x) = (sum x_i)^2 / (n * sum x_i^2)

1.0 means perfectly proportional service; 1/n means one tenant got
everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True)
class FairnessConfig:
    """Knobs for windowed fairness.

    Attributes:
        mode: Service currency — ``"W"`` (amount-of-work: tokens) or
            ``"T"`` (time-based: pipeline-hold seconds).
        window: Width of one accounting window, seconds.
        backlog_windows: Number of windows (including the current one)
            the deficit is computed over. ``window * backlog_windows``
            is the fairness horizon: the no-starvation invariant demands
            every backlogged tenant be served at least once per horizon.
        slo_weight: How strongly SLO pressure (distance between the
            target percentile and recent TTFT attainment) is added to
            the fairness deficit when scoring tenants.
        selector: ``"deficit"`` — the fair, deficit-aware selector — or
            ``"priority"`` — strict highest-priority-first, the
            deliberately unfair control used to prove the starvation
            invariant has teeth.
    """

    mode: str = "W"
    window: float = 2.0
    backlog_windows: int = 4
    slo_weight: float = 0.5
    selector: str = "deficit"

    def __post_init__(self) -> None:
        if self.mode not in ("W", "T"):
            raise ValueError(f"fairness mode must be 'W' or 'T', got {self.mode!r}")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.backlog_windows < 1:
            raise ValueError(
                f"backlog_windows must be >= 1, got {self.backlog_windows}"
            )
        if self.slo_weight < 0:
            raise ValueError(f"slo_weight must be >= 0, got {self.slo_weight}")
        if self.selector not in ("deficit", "priority"):
            raise ValueError(
                f"selector must be 'deficit' or 'priority', got {self.selector!r}"
            )

    @property
    def horizon(self) -> float:
        """The fairness horizon in seconds (window * backlog_windows)."""
        return self.window * self.backlog_windows


def jain_index(values: Iterable[float], any_demand: bool = False) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Ranges from ``1/n`` (one value holds everything — zeros count
    toward ``n``, that is the whole point) to ``1.0`` (perfectly even).

    The all-zero case is ambiguous and ``any_demand`` disambiguates it:
    an *idle* system (nobody asked for service) is vacuously fair and
    scores 1.0, but a fully-*starved* system (tenants had queued demand
    and got nothing) is maximally unfair and scores ``1/n``. Callers
    that know about queued demand — the windowed tracker — thread it
    through; the default preserves the idle-is-fair reading. An empty
    list always returns 1.0.
    """
    xs = list(values)
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares <= 0:
        return 1.0 / len(xs) if any_demand else 1.0
    return (total * total) / (len(xs) * squares)


class WindowedFairnessTracker:
    """Accumulates per-tenant service into fixed-width windows.

    Windows are indexed ``int(when // window)``; each tenant keeps an
    auto-extending list of per-window service amounts. Histories stay
    small (one float per window of simulated time), so the tracker keeps
    the full history rather than trimming — that also lets metrics
    rebuild the fairness-index timeline after the run.
    """

    def __init__(self, config: FairnessConfig, shares: Mapping[str, float]):
        self.config = config
        if not shares:
            raise ValueError("fairness tracker needs at least one tenant share")
        total = sum(shares.values())
        self._shares = {tid: share / total for tid, share in sorted(shares.items())}
        self._service: dict[str, list[float]] = {tid: [] for tid in self._shares}

    @property
    def tenant_ids(self) -> tuple[str, ...]:
        return tuple(self._shares)

    def _window_index(self, when: float) -> int:
        return max(0, int(when // self.config.window))

    def note(self, tenant_id: str, when: float, amount: float = 1.0) -> None:
        """Credit ``amount`` of service to ``tenant_id`` at time ``when``."""
        history = self._service[tenant_id]
        index = self._window_index(when)
        if index >= len(history):
            history.extend([0.0] * (index + 1 - len(history)))
        history[index] += amount

    def note_span(self, tenant_id: str, start: float, end: float) -> None:
        """Credit a held time span, split across the windows it overlaps."""
        if end <= start:
            return
        window = self.config.window
        index = self._window_index(start)
        cursor = start
        while cursor < end:
            boundary = (index + 1) * window
            self.note(tenant_id, cursor, min(end, boundary) - cursor)
            cursor = boundary
            index += 1

    def service_in_backlog(self, now: float) -> dict[str, float]:
        """Per-tenant service summed over the last ``backlog_windows``."""
        current = self._window_index(now)
        first = max(0, current - self.config.backlog_windows + 1)
        out: dict[str, float] = {}
        for tid, history in self._service.items():
            out[tid] = sum(history[first : current + 1])
        return out

    def deficits(
        self, now: float, backlogged: Iterable[str] = ()
    ) -> dict[str, float]:
        """Fairness deficit per *active* tenant at time ``now``.

        A tenant is active if it consumed service inside the backlog or
        is currently backlogged (has queued work). Entitled shares are
        renormalized over active tenants, so a zero-demand tenant
        contributes no fairness debt and takes no entitlement away from
        the tenants actually competing. Inactive tenants get deficit 0.
        """
        observed = self.service_in_backlog(now)
        active = {
            tid
            for tid, amount in observed.items()
            if amount > 0
        }
        active.update(tid for tid in backlogged if tid in self._shares)
        out = {tid: 0.0 for tid in self._shares}
        if not active:
            return out
        entitled_total = sum(self._shares[tid] for tid in active)
        observed_total = sum(observed[tid] for tid in active)
        for tid in active:
            entitled = self._shares[tid] / entitled_total
            got = observed[tid] / observed_total if observed_total > 0 else 0.0
            out[tid] = entitled - got
        return out

    def fairness_index(
        self, now: float, backlogged: Iterable[str] = ()
    ) -> float:
        """Jain index over observed/entitled ratios in the current backlog.

        Covers every tenant that has *ever* received service (a
        participating tenant currently starved drags the index toward
        ``1/n``) plus every currently ``backlogged`` tenant — a tenant
        with queued demand that never got served participates with
        ratio 0 rather than being excluded. Tenants with neither
        history nor backlog stay excluded so a zero-demand registration
        cannot depress the index. When the participants are all-zero
        *and* demand is queued, the index is ``1/n`` (total starvation),
        not the vacuous 1.0 an idle system earns.
        """
        observed = self.service_in_backlog(now)
        demand = {tid for tid in backlogged if tid in self._shares}
        ratios = [
            observed[tid] / self._shares[tid]
            for tid, history in self._service.items()
            if any(history) or tid in demand
        ]
        return jain_index(ratios, any_demand=bool(demand))

    def fairness_timeline(
        self, end_time: float, step: float | None = None
    ) -> list[tuple[float, float]]:
        """``(time, jain_index)`` samples over the run, one per window."""
        step = self.config.window if step is None else step
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        out: list[tuple[float, float]] = []
        t = step
        while t <= end_time + 1e-9:
            out.append((t, self.fairness_index(t)))
            t += step
        return out
