"""repro — reproduction of Helix (Mei et al., ASPLOS 2025).

Helix serves large language models on heterogeneous, geo-distributed GPU
clusters by casting joint model placement + request scheduling as a
max-flow problem: an MILP finds the placement whose cluster graph has the
largest max flow, and an IWRR scheduler routes each request along its own
pipeline following the flow solution.

Quickstart::

    from repro import (
        single_cluster_24, LLAMA_70B, HelixMilpPlanner, HelixScheduler,
        Simulation, synthesize_azure_trace, AzureTraceConfig,
    )

    cluster = single_cluster_24()
    planner = HelixMilpPlanner(cluster, LLAMA_70B, time_limit=30)
    result = planner.plan()
    scheduler = HelixScheduler(
        cluster, LLAMA_70B, result.placement, flow=result.flow
    )
    trace = synthesize_azure_trace(AzureTraceConfig(num_requests=200, scale=0.25))
    metrics = Simulation(
        cluster, LLAMA_70B, result.placement, scheduler, trace
    ).run()
    print(metrics.summary())
"""

from repro.core.errors import (
    ReproError,
    ClusterError,
    PlacementError,
    SchedulingError,
    SimulationError,
    SolverError,
)
from repro.core.placement_types import ModelPlacement, StageAssignment
from repro.models.specs import (
    ModelSpec,
    LLAMA_30B,
    LLAMA_70B,
    GPT3_175B,
    GROK_314B,
    LLAMA3_405B,
    get_model,
)
from repro.cluster import (
    GPUSpec,
    ComputeNode,
    Link,
    Cluster,
    Profiler,
    COORDINATOR,
    single_cluster_24,
    geo_distributed_24,
    high_heterogeneity_42,
    toy_cluster_fig1,
    toy_cluster_fig2,
    small_cluster_fig12,
)
from repro.flow import FlowNetwork, FlowGraph, FlowSolution
from repro.placement import (
    PlannerResult,
    HelixMilpPlanner,
    TenantArbitration,
    SwarmPlanner,
    PetalsPlanner,
    SeparatePipelinesPlanner,
    prune_cluster,
)
from repro.scheduling import (
    HelixScheduler,
    SwarmScheduler,
    RandomScheduler,
    ShortestQueueScheduler,
    FixedPipelineScheduler,
    InterleavedWeightedRoundRobin,
)
from repro.sim import (
    Simulation,
    Request,
    ServingMetrics,
    DisruptionReport,
    TenantMetrics,
    aggregate_tenant_metrics,
    goodput_timeline,
)
from repro.tenancy import (
    AdmissionConfig,
    BATCH,
    FairnessConfig,
    INTERACTIVE,
    SLOClass,
    STANDARD,
    TenancyConfig,
    TenantManager,
    TenantRegistry,
    TenantSpec,
    jain_index,
)
from repro.online import (
    NodeFailure,
    NodeRecovery,
    NodeJoin,
    LinkDegradation,
    LinkRecovery,
    NetworkPartition,
    PartitionHeal,
    ChurnConfig,
    random_churn,
    scripted_schedule,
    OnlineController,
)
from repro.trace import (
    AzureTraceConfig,
    synthesize_azure_trace,
    offline_arrivals,
    poisson_arrivals,
    diurnal_arrivals,
    rate_for_utilization,
)
from repro.bench import run_offline, run_online, make_planner, make_scheduler
from repro.scenarios import (
    SCENARIO_FAMILIES,
    Scenario,
    generate_scenario,
    scenario_matrix,
)
from repro.testkit import (
    ScenarioReport,
    Violation,
    run_scenario,
    verify_scenario,
)

__version__ = "0.1.0"
