"""Seeded scenario generation: randomized-but-reproducible test universes.

A *scenario* is everything one end-to-end serving experiment needs —
cluster, model, arrival-stamped workload, and (sometimes) a churn
schedule — generated as a pure function of ``(family, seed, size)``.
Families are topology archetypes:

* ``full_mesh`` — one region, every pair connected.
* ``geo_regions`` — 2-3 regions, fast intra-region meshes, slow
  all-pairs inter-region links (the paper's Fig. 7 shape, randomized).
* ``star`` — a hub node relays between leaves; no leaf-leaf links.
* ``sparse_partitioned`` — two sparsely-wired groups (ring backbone plus
  random chords) joined by a few slow bridge links.

Heuristic planners are topology-blind, so the star and sparse families
draw a model every node can hold alone (any placement then serves through
the coordinator links); the dense families may draw a VRAM-bound model
that forces genuine multi-stage pipelines. All randomness flows from one
:class:`random.Random` seeded with a stable string digest of the address,
never from global state: the same address always yields byte-identical
scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.cluster.cluster import Cluster
from repro.cluster.gpus import A100_40G, GPUSpec, L4, T4, V100
from repro.cluster.node import COORDINATOR
from repro.cluster.profiler import Profiler
from repro.core.units import GBIT, MBIT
from repro.models.specs import ModelSpec
from repro.online.autoscale import AutoscalerConfig
from repro.online.events import (
    ChurnConfig,
    ClusterEvent,
    NodeDrain,
    NodeFailure,
    NodeRecovery,
    random_churn,
)
from repro.online.faults import (
    FlakyLink,
    FlakyLinkEnd,
    StragglerEnd,
    StragglerStart,
    ZombieNode,
)
from repro.scenarios.workloads import WORKLOAD_KINDS, make_workload
from repro.sim.policy import RequestPolicy
from repro.sim.request import Request
from repro.sim.residency import ResidencyConfig
from repro.tenancy.fairness import FairnessConfig
from repro.tenancy.manager import AdmissionConfig, TenancyConfig
from repro.tenancy.registry import (
    BATCH,
    INTERACTIVE,
    STANDARD,
    TenantRegistry,
    TenantSpec,
)

#: The topology archetypes the generator can draw.
SCENARIO_FAMILIES = ("full_mesh", "geo_regions", "star", "sparse_partitioned")

#: The chaos family: a topology drawn from :data:`SCENARIO_FAMILIES` plus
#: a seeded gray-fault schedule (silent crashes, stragglers, flaky links,
#: zombies), failure detection on, and a drawn request-lifecycle policy.
#: Kept out of ``SCENARIO_FAMILIES`` so the classic 4-family matrices (and
#: the engine-differential guarantees swept over them) are unchanged.
CHAOS_FAMILY = "chaos"

#: The elastic family: a drawn base topology plus 1-2 *spare* nodes that
#: start out of service, layer residency on (recovery pays real weight
#: transfers), a backlog-driven autoscaler, and an elasticity flavor —
#: flash crowd, regional outage + refill, or drain-and-rejoin under load.
#: Replanning runs in the deterministic ``lns_rounds=0`` mode so elastic
#: fingerprints reproduce bit-for-bit.
ELASTIC_FAMILY = "elastic"

#: The tenant family: a drawn base topology serving 2-4 tenants with
#: skewed demand mixes, SLO classes, priorities, and windowed fairness
#: (sometimes with admission control). No churn and no lifecycle policy,
#: so per-tenant KV accounting is exact and the fairness invariants have
#: no confounders. Kept out of ``SCENARIO_FAMILIES`` like chaos/elastic.
TENANT_FAMILY = "tenant"

#: Every generatable family — chaos, elastic, and tenant included.
ALL_FAMILIES = SCENARIO_FAMILIES + (CHAOS_FAMILY, ELASTIC_FAMILY, TENANT_FAMILY)

#: Families dense enough that topology-blind heuristic placements always
#: carry flow, and may therefore draw a VRAM-bound multi-stage model.
_DENSE_FAMILIES = ("full_mesh", "geo_regions")

#: GPU models a scenario may draw, with draw weights (T4-heavy, like the
#: paper's clusters).
_GPU_POOL: tuple[tuple[GPUSpec, int], ...] = (
    (A100_40G, 1),
    (V100, 1),
    (L4, 2),
    (T4, 3),
)

#: Planner / scheduler methods a scenario may suggest. ``sp``/``sp+`` are
#: excluded: on heterogeneous draws they legitimately fail to form
#: pipelines, which is their own satellite test's concern.
_PLANNER_METHODS = ("swarm", "petals")
_SCHEDULER_METHODS = ("helix", "swarm", "random", "shortest-queue")

#: Model every test GPU can hold alone (8-12 layers, ~26 MB/layer).
_SMALL_HIDDEN = 1024
#: VRAM-bound model shape (~1.07 GB/layer: a T4 holds 7, an A100 18).
_WIDE_HIDDEN = 6656


@dataclass(frozen=True)
class ScenarioLimits:
    """Size knobs of one sweep tier.

    Attributes:
        min_nodes / max_nodes: Cluster size range.
        min_requests / max_requests: Trace size range.
        max_time: Simulation horizon in seconds.
        churn_probability: Chance a scenario carries a churn schedule.
    """

    min_nodes: int
    max_nodes: int
    min_requests: int
    max_requests: int
    max_time: float
    churn_probability: float


#: Tier-1 smoke tier: small enough that a 20+-scenario sweep stays fast.
SMOKE = ScenarioLimits(
    min_nodes=4, max_nodes=7, min_requests=14, max_requests=30,
    max_time=40.0, churn_probability=0.4,
)
#: Extended tier for the scheduled CI sweep and local soaks.
FULL = ScenarioLimits(
    min_nodes=6, max_nodes=14, min_requests=40, max_requests=120,
    max_time=120.0, churn_probability=0.5,
)

_SIZES = {"smoke": SMOKE, "full": FULL}


@dataclass
class Scenario:
    """One generated end-to-end serving experiment.

    Attributes:
        family: Topology family (member of :data:`SCENARIO_FAMILIES`).
        seed: The scenario's seed; ``(family, seed, size)`` reproduces it.
        size: Sweep tier name (``"smoke"`` or ``"full"``).
        cluster: The generated (validated) cluster. Running a scenario
            mutates the cluster (churn, availability); regenerate rather
            than re-run one instance.
        model: The served model.
        requests: Arrival-stamped trace.
        workload: Arrival flavor (member of ``WORKLOAD_KINDS``).
        churn: Churn schedule (may be empty). Chaos scenarios carry gray
            faults here.
        planner_method: Suggested placement method (the harness falls back
            along ``_PLANNER_METHODS`` if it cannot serve).
        scheduler_method: Suggested scheduling policy.
        max_time: Simulation horizon in seconds.
        detection: Run with a failure detector instead of announced
            failures (chaos scenarios).
        policy: Request-lifecycle policy (``None`` = legacy semantics).
        residency: Layer-residency config (``None`` = residency off, the
            legacy engine — elastic scenarios turn it on).
        autoscaler: Backlog-driven autoscaler config (``None`` = none).
        spares: Node ids that start out of service as the autoscaler's
            spare pool.
        tenancy: Multi-tenant config (``None`` = single-tenant legacy
            engine — tenant scenarios carry a registry, fairness, and
            sometimes admission control).
    """

    family: str
    seed: int
    size: str
    cluster: Cluster
    model: ModelSpec
    requests: list[Request]
    workload: str
    churn: list[ClusterEvent] = field(default_factory=list)
    planner_method: str = "swarm"
    scheduler_method: str = "helix"
    max_time: float = 40.0
    detection: bool = False
    policy: RequestPolicy | None = None
    residency: ResidencyConfig | None = None
    autoscaler: AutoscalerConfig | None = None
    spares: tuple[str, ...] = ()
    tenancy: TenancyConfig | None = None

    def repro_command(self) -> str:
        """The one-line command that replays this exact scenario."""
        return (
            "PYTHONPATH=src python -m repro.testkit "
            f"{self.family} {self.seed} --size {self.size}"
        )

    def describe(self) -> str:
        """One-line summary for reports and failure messages."""
        churn = f", {len(self.churn)} churn events" if self.churn else ""
        extras = ", detection on" if self.detection else ""
        if self.policy is not None:
            extras += ", lifecycle policy"
        if self.residency is not None:
            extras += ", residency on"
        if self.autoscaler is not None:
            extras += f", autoscaler ({len(self.spares)} spare(s))"
        if self.tenancy is not None:
            fairness = self.tenancy.fairness
            extras += (
                f", {len(self.tenancy.registry)} tenants "
                f"({fairness.mode}-fairness"
                f"{', admission' if self.tenancy.admission else ''})"
            )
        return (
            f"scenario {self.family}/{self.seed} ({self.size}): "
            f"{self.cluster.describe()}, {self.model.name}, "
            f"{len(self.requests)} {self.workload} requests, "
            f"planner={self.planner_method}, "
            f"scheduler={self.scheduler_method}{churn}{extras}"
        )


# ----------------------------------------------------------------------
# Cluster synthesis
# ----------------------------------------------------------------------
def _draw_nodes(
    rng: random.Random, cluster: Cluster, count: int, regions: list[str]
) -> dict[str, list[str]]:
    """Add ``count`` nodes with a weighted GPU mix, spread over regions.

    Every region is guaranteed at least one node (regions beyond ``count``
    are dropped). Returns region -> node ids.
    """
    regions = regions[:count]
    pool = [gpu for gpu, weight in _GPU_POOL for _ in range(weight)]
    by_region: dict[str, list[str]] = {region: [] for region in regions}
    counters: dict[str, int] = {}
    for index in range(count):
        gpu = rng.choice(pool)
        # First len(regions) nodes seed one region each; the rest spread.
        region = regions[index] if index < len(regions) else rng.choice(regions)
        label = gpu.name.split("-")[0].lower()
        ordinal = counters.get(label, 0)
        counters[label] = ordinal + 1
        node_id = f"{label}-{ordinal}"
        cluster.add_node(node_id, gpu, region=region)
        by_region[region].append(node_id)
    return by_region


def _intra_bandwidth(rng: random.Random) -> tuple[float, float]:
    """Fast-link bandwidth/latency draw (datacenter-grade)."""
    return rng.uniform(2.0, 20.0) * GBIT, rng.uniform(0.0005, 0.002)


def _inter_bandwidth(rng: random.Random) -> tuple[float, float]:
    """Slow-link bandwidth/latency draw (cross-region-grade)."""
    return rng.uniform(50.0, 300.0) * MBIT, rng.uniform(0.02, 0.08)


def _build_full_mesh(rng: random.Random, count: int) -> Cluster:
    cluster = Cluster(name=f"scn-mesh-{count}")
    by_region = _draw_nodes(rng, cluster, count, ["region-0"])
    bandwidth, latency = _intra_bandwidth(rng)
    cluster.connect_full_mesh(
        by_region["region-0"], bandwidth, latency, include_coordinator=True
    )
    return cluster


def _build_geo_regions(rng: random.Random, count: int) -> Cluster:
    num_regions = rng.randint(2, 3)
    cluster = Cluster(name=f"scn-geo-{count}")
    regions = [f"region-{i}" for i in range(num_regions)]
    by_region = _draw_nodes(rng, cluster, count, regions)
    fast_bw, fast_lat = _intra_bandwidth(rng)
    slow_bw, slow_lat = _inter_bandwidth(rng)
    for ids in by_region.values():
        cluster.connect_full_mesh(
            ids, fast_bw, fast_lat, include_coordinator=False
        )
    region_list = list(by_region.values())
    for i, ids_a in enumerate(region_list):
        for ids_b in region_list[i + 1:]:
            for a in ids_a:
                for b in ids_b:
                    cluster.connect(a, b, slow_bw, slow_lat)
    # Coordinator lives in region 0: fast locally, slow elsewhere.
    for a in region_list[0]:
        cluster.connect(COORDINATOR, a, fast_bw, fast_lat)
    for ids in region_list[1:]:
        for a in ids:
            cluster.connect(COORDINATOR, a, slow_bw, slow_lat)
    return cluster


def _build_star(rng: random.Random, count: int) -> Cluster:
    cluster = Cluster(name=f"scn-star-{count}")
    by_region = _draw_nodes(rng, cluster, count, ["region-0"])
    ids = by_region["region-0"]
    # The hub is the beefiest draw — highest FLOPs, ties to lowest id —
    # mirroring a lab topology where the big box fans out to the rest.
    hub = max(ids, key=lambda nid: (cluster.node(nid).gpu.fp16_flops, nid))
    bandwidth, latency = _intra_bandwidth(rng)
    for leaf in ids:
        if leaf != hub:
            cluster.connect(hub, leaf, bandwidth, latency)
        cluster.connect(COORDINATOR, leaf, bandwidth, latency)
    return cluster


def _build_sparse_partitioned(rng: random.Random, count: int) -> Cluster:
    cluster = Cluster(name=f"scn-sparse-{count}")
    by_region = _draw_nodes(
        rng, cluster, count, ["region-0", "region-1"]
    )
    fast_bw, fast_lat = _intra_bandwidth(rng)
    slow_bw, slow_lat = _inter_bandwidth(rng)
    for ids in by_region.values():
        # Ring backbone keeps each group connected; random chords thicken.
        if len(ids) > 1:
            for a, b in zip(ids, ids[1:] + ids[:1]):
                if not cluster.has_link(a, b):
                    cluster.connect(a, b, fast_bw, fast_lat)
        extra = rng.randint(0, max(0, len(ids) - 2))
        for _ in range(extra):
            a, b = rng.sample(ids, 2)
            if not cluster.has_link(a, b):
                cluster.connect(a, b, fast_bw, fast_lat)
    group_a, group_b = by_region["region-0"], by_region["region-1"]
    for _ in range(rng.randint(1, 2)):
        cluster.connect(
            rng.choice(group_a), rng.choice(group_b), slow_bw, slow_lat
        )
    for nid in cluster.node_ids:
        cluster.connect(COORDINATOR, nid, fast_bw, fast_lat)
    return cluster


_BUILDERS = {
    "full_mesh": _build_full_mesh,
    "geo_regions": _build_geo_regions,
    "star": _build_star,
    "sparse_partitioned": _build_sparse_partitioned,
}


# ----------------------------------------------------------------------
# Model synthesis
# ----------------------------------------------------------------------
def _small_model(rng: random.Random) -> ModelSpec:
    """A model every pool GPU holds alone (placements always serve)."""
    num_layers = rng.choice((8, 10, 12))
    return ModelSpec(
        name=f"scn-small-{num_layers}L",
        num_layers=num_layers,
        hidden_size=_SMALL_HIDDEN,
        num_heads=8,
        num_kv_heads=8,
        intermediate_size=2816,
    )


def _wide_model(rng: random.Random) -> ModelSpec:
    """A 30B-class per-layer footprint that forces multi-stage pipelines."""
    num_layers = rng.randint(12, 18)
    return ModelSpec(
        name=f"scn-wide-{num_layers}L",
        num_layers=num_layers,
        hidden_size=_WIDE_HIDDEN,
        num_heads=52,
        num_kv_heads=52,
        intermediate_size=17920,
    )


def _pick_model(
    rng: random.Random, family: str, cluster: Cluster, profiler: Profiler
) -> ModelSpec:
    """Draw a model the cluster can definitely serve.

    Dense families may draw the VRAM-bound shape when aggregate capacity
    comfortably covers it (1.3x headroom so petals/swarm always close the
    layer cover); everything else gets the small shape.
    """
    if family in _DENSE_FAMILIES and rng.random() < 0.5:
        wide = _wide_model(rng)
        total = sum(
            min(profiler.max_layers(node, wide), wide.num_layers)
            for node in cluster
        )
        if total >= 1.3 * wide.num_layers:
            return wide
    return _small_model(rng)


# ----------------------------------------------------------------------
# Churn synthesis
# ----------------------------------------------------------------------
def _draw_churn(
    rng: random.Random, cluster: Cluster, limits: ScenarioLimits
) -> list[ClusterEvent]:
    """A seeded failure/recovery (and sometimes link) schedule."""
    horizon = limits.max_time
    config = ChurnConfig(
        duration=horizon * 0.55,
        mean_time_to_failure=rng.uniform(horizon * 0.15, horizon * 0.4),
        mean_time_to_recovery=rng.uniform(horizon * 0.05, horizon * 0.15),
        link_mean_time_to_degrade=(
            rng.uniform(horizon * 0.2, horizon * 0.5)
            if rng.random() < 0.5 else 0.0
        ),
        link_degradation_factor=rng.uniform(0.05, 0.3),
        link_mean_time_to_repair=horizon * 0.1,
        max_concurrent_failures=1,
        start=horizon * 0.2,
    )
    link_keys = [
        key for key in cluster.links
        if COORDINATOR not in key and key[0] < key[1]
    ]
    return random_churn(
        cluster.node_ids, config,
        link_keys=rng.sample(link_keys, min(4, len(link_keys))),
        rng=rng,
    )


def _draw_gray_faults(
    rng: random.Random, cluster: Cluster, limits: ScenarioLimits
) -> list[ClusterEvent]:
    """A seeded gray-fault schedule: 1-3 faults over distinct victims.

    At most one fault takes a node fully out of service (silent crash or
    zombie) so a small cluster stays servable; stragglers and flaky links
    degrade without removing capacity. Onsets land in the middle of the
    run (after a clean baseline window, with room to recover before the
    horizon); some faults heal, some persist.
    """
    horizon = limits.max_time
    events: list[ClusterEvent] = []
    node_pool = list(cluster.node_ids)
    rng.shuffle(node_pool)
    link_pool = [
        key for key in cluster.links
        if COORDINATOR not in key and key[0] < key[1]
    ]
    rng.shuffle(link_pool)

    kinds = ["crash", "zombie", "straggler", "flaky"]
    count = rng.randint(1, 3)
    node_killed = False
    for _ in range(count):
        kind = rng.choice(kinds)
        onset = rng.uniform(horizon * 0.2, horizon * 0.6)
        if kind in ("crash", "zombie"):
            if node_killed or not node_pool:
                kind = "straggler"  # keep the cluster servable
            else:
                node_killed = True
        if kind == "crash":
            victim = node_pool.pop()
            events.append(NodeFailure(onset, victim))
            if rng.random() < 0.5:
                events.append(
                    NodeRecovery(
                        onset + rng.uniform(horizon * 0.15, horizon * 0.3),
                        victim,
                    )
                )
        elif kind == "zombie":
            victim = node_pool.pop()
            events.append(ZombieNode(onset, victim))
            if rng.random() < 0.5:
                events.append(
                    NodeRecovery(
                        onset + rng.uniform(horizon * 0.15, horizon * 0.3),
                        victim,
                    )
                )
        elif kind == "straggler":
            if not node_pool:
                continue
            victim = node_pool.pop()
            events.append(
                StragglerStart(onset, victim, slowdown=rng.uniform(2.0, 8.0))
            )
            if rng.random() < 0.6:
                events.append(
                    StragglerEnd(
                        onset + rng.uniform(horizon * 0.1, horizon * 0.25),
                        victim,
                    )
                )
        else:  # flaky link
            if not link_pool:
                continue
            src, dst = link_pool.pop()
            events.append(
                FlakyLink(
                    onset, src, dst,
                    drop_probability=rng.uniform(0.05, 0.35),
                    retransmit_delay=rng.uniform(0.02, 0.15),
                )
            )
            if rng.random() < 0.6:
                events.append(
                    FlakyLinkEnd(
                        onset + rng.uniform(horizon * 0.1, horizon * 0.25),
                        src, dst,
                    )
                )
    return sorted(events, key=lambda e: e.time)


def _add_spares(
    rng: random.Random, cluster: Cluster, count: int
) -> tuple[str, ...]:
    """Attach ``count`` spare nodes, fully linked but starting down.

    Spares live in region-0 near the coordinator on fresh fast links,
    so pulling weights from any resident peer is possible the moment the
    autoscaler (or a recovery event) brings one in.
    """
    pool = [gpu for gpu, weight in _GPU_POOL for _ in range(weight)]
    bandwidth, latency = _intra_bandwidth(rng)
    existing = list(cluster.node_ids)
    spares = []
    for index in range(count):
        gpu = rng.choice(pool)
        node_id = f"spare-{index}"
        cluster.add_node(node_id, gpu, region="region-0")
        for peer in existing:
            cluster.connect(node_id, peer, bandwidth, latency)
        cluster.connect(COORDINATOR, node_id, bandwidth, latency)
        spares.append(node_id)
    for node_id in spares:
        cluster.set_node_available(node_id, False)
    return tuple(spares)


#: Elasticity flavors the elastic family draws from.
_ELASTIC_FLAVORS = ("flash_crowd", "outage_refill", "scale_up")


def _flash_crowd_burst(
    rng: random.Random, limits: ScenarioLimits
) -> list[Request]:
    """A sustained arrival spike that drives the backlog over the
    scale-up bar long enough for the autoscaler's streak counter to act
    (several ticks, not one blip): a few seconds of dense long-decode
    arrivals."""
    burst_at = limits.max_time * rng.uniform(0.25, 0.4)
    count = rng.randint(limits.min_requests * 2, limits.min_requests * 4)
    spacing = rng.uniform(0.02, 0.05)
    return [
        Request(
            request_id=f"burst-{index}",
            input_len=rng.randint(16, 64),
            output_len=rng.randint(16, 48),
            arrival_time=burst_at + index * spacing,
        )
        for index in range(count)
    ]


def _draw_elastic_churn(
    rng: random.Random,
    cluster: Cluster,
    spares: tuple[str, ...],
    limits: ScenarioLimits,
    flavor: str,
) -> list[ClusterEvent]:
    """The scripted half of an elastic scenario's dynamics.

    ``flash_crowd`` is purely workload-driven (the autoscaler does the
    reacting); ``outage_refill`` kills a base node and brings it back
    cold; ``scale_up`` gracefully drains a base node and later rejoins
    it — with residency on the rejoin is warm only if its layers
    survived (drain retains VRAM, crash wipes it).
    """
    horizon = limits.max_time
    events: list[ClusterEvent] = []
    victims = sorted(nid for nid in cluster.node_ids if nid not in spares)
    if flavor == "outage_refill":
        victim = rng.choice(victims)
        onset = rng.uniform(horizon * 0.25, horizon * 0.45)
        events.append(NodeFailure(onset, victim))
        events.append(
            NodeRecovery(
                onset + rng.uniform(horizon * 0.15, horizon * 0.3), victim
            )
        )
    elif flavor == "scale_up":
        victim = rng.choice(victims)
        onset = rng.uniform(horizon * 0.25, horizon * 0.4)
        events.append(NodeDrain(onset, victim))
        events.append(
            NodeRecovery(
                onset + rng.uniform(horizon * 0.2, horizon * 0.35), victim
            )
        )
    return sorted(events, key=lambda e: e.time)


#: SLO classes a drawn tenant may carry.
_TENANT_SLO_POOL = (INTERACTIVE, STANDARD, BATCH)


def _draw_tenancy(rng: random.Random) -> TenancyConfig:
    """A seeded 2-4 tenant registry with skewed shares plus fairness knobs.

    Shares follow a geometric skew (each next tenant entitled to roughly
    half the previous one, jittered), so most draws have one dominant
    tenant and a tail — the regime where fairness accounting actually has
    work to do. Half the draws add admission control.
    """
    count = rng.randint(2, 4)
    tenants = []
    for index in range(count):
        tenants.append(
            TenantSpec(
                tenant_id=f"tenant-{index}",
                slo=rng.choice(_TENANT_SLO_POOL),
                priority=rng.randint(0, 2),
                rate_share=rng.uniform(1.0, 2.0) * 0.5 ** index,
            )
        )
    fairness = FairnessConfig(
        mode=rng.choice(("W", "T")),
        window=rng.uniform(1.5, 3.0),
        backlog_windows=rng.randint(3, 5),
        slo_weight=rng.uniform(0.2, 0.8),
        selector="deficit",
    )
    admission = (
        AdmissionConfig(max_pending=rng.randint(15, 40))
        if rng.random() < 0.5
        else None
    )
    return TenancyConfig(
        registry=TenantRegistry(tenants),
        fairness=fairness,
        admission=admission,
    )


def _tenant_requests(
    rng: random.Random,
    tenancy: TenancyConfig,
    limits: ScenarioLimits,
) -> tuple[list[Request], str]:
    """Per-tenant workload streams merged into one arrival-sorted trace.

    Request counts split proportionally to each tenant's rate share
    (minimum 3 so every tenant exists in the trace); each tenant draws
    its own workload flavor and its requests are retagged
    ``<tenant>:<id>`` for global uniqueness. Returns the merged trace
    plus a describing workload label (the dominant tenant's flavor).
    """
    total = rng.randint(limits.min_requests, limits.max_requests)
    shares = tenancy.registry.shares()
    merged: list[Request] = []
    dominant = ("", 0.0)
    for tenant_id in tenancy.registry.ids:
        count = max(3, round(total * shares[tenant_id]))
        kind = rng.choice(WORKLOAD_KINDS)
        if shares[tenant_id] > dominant[1]:
            dominant = (kind, shares[tenant_id])
        for request in make_workload(
            rng, kind, count, horizon=limits.max_time * 0.5
        ):
            merged.append(
                replace(
                    request,
                    request_id=f"{tenant_id}:{request.request_id}",
                    tenant_id=tenant_id,
                )
            )
    merged.sort(key=lambda r: (r.arrival_time, r.request_id))
    return merged, dominant[0]


def _draw_policy(rng: random.Random, limits: ScenarioLimits) -> RequestPolicy:
    """A request-lifecycle policy sized to the scenario horizon."""
    horizon = limits.max_time
    return RequestPolicy(
        deadline=(
            rng.uniform(horizon * 0.3, horizon * 0.6)
            if rng.random() < 0.3 else None
        ),
        ttft_timeout=rng.uniform(horizon * 0.05, horizon * 0.15),
        max_retries=rng.randint(3, 6),
        retry_backoff=rng.uniform(0.1, 0.3),
        backoff_factor=2.0,
        jitter=rng.uniform(0.0, 0.5),
        hedge_after=(
            rng.uniform(horizon * 0.04, horizon * 0.1)
            if rng.random() < 0.3 else None
        ),
        max_pending=rng.randint(20, 60) if rng.random() < 0.5 else None,
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def generate_scenario(
    family: str,
    seed: int,
    size: str = "smoke",
    profiler: Profiler | None = None,
) -> Scenario:
    """Generate the scenario at address ``(family, seed, size)``.

    Pure function of its address: the same arguments always produce an
    identical scenario (cluster topology, model, trace, churn schedule).

    Raises:
        ValueError: On an unknown family or size.
    """
    if family not in ALL_FAMILIES:
        raise ValueError(
            f"unknown scenario family {family!r}; "
            f"choose from {ALL_FAMILIES}"
        )
    try:
        limits = _SIZES[size]
    except KeyError:
        raise ValueError(
            f"unknown size {size!r}; choose from {tuple(_SIZES)}"
        ) from None
    profiler = profiler or Profiler()
    # String seeding hashes via SHA-512: stable across runs and platforms.
    rng = random.Random(f"repro-scenario:{family}:{seed}:{size}")

    if family == CHAOS_FAMILY:
        # Chaos rides a drawn base topology; the model is always the small
        # shape so losing one node never makes the placement unservable.
        base_family = rng.choice(SCENARIO_FAMILIES)
        count = rng.randint(limits.min_nodes, limits.max_nodes)
        cluster = _BUILDERS[base_family](rng, count)
        cluster.validate()
        model = _small_model(rng)
        workload = rng.choice(WORKLOAD_KINDS)
        num_requests = rng.randint(limits.min_requests, limits.max_requests)
        requests = make_workload(
            rng, workload, num_requests, horizon=limits.max_time * 0.5
        )
        return Scenario(
            family=family,
            seed=seed,
            size=size,
            cluster=cluster,
            model=model,
            requests=requests,
            workload=workload,
            churn=_draw_gray_faults(rng, cluster, limits),
            planner_method=rng.choice(_PLANNER_METHODS),
            scheduler_method=rng.choice(_SCHEDULER_METHODS),
            max_time=limits.max_time,
            detection=True,
            policy=_draw_policy(rng, limits),
        )

    if family == ELASTIC_FAMILY:
        # Elastic rides a drawn base topology plus out-of-service spares;
        # the model is always the small shape (every node, spares
        # included, can hold any interval, so replans stay servable).
        base_family = rng.choice(SCENARIO_FAMILIES)
        count = rng.randint(limits.min_nodes, limits.max_nodes)
        cluster = _BUILDERS[base_family](rng, count)
        spares = _add_spares(rng, cluster, rng.randint(1, 2))
        cluster.validate()
        model = _small_model(rng)
        workload = rng.choice(WORKLOAD_KINDS)
        num_requests = rng.randint(limits.min_requests, limits.max_requests)
        requests = make_workload(
            rng, workload, num_requests, horizon=limits.max_time * 0.5
        )
        flavor = rng.choice(_ELASTIC_FLAVORS)
        if flavor == "flash_crowd":
            requests = sorted(
                requests + _flash_crowd_burst(rng, limits),
                key=lambda r: r.arrival_time,
            )
        warm: dict[str, tuple[int, int]] = {}
        if rng.random() < 0.5:
            # Half the draws pre-stage the first spare's weights: the
            # warm-vs-cold MTTR contrast the benchmarks measure.
            warm[spares[0]] = (0, model.num_layers)
        return Scenario(
            family=family,
            seed=seed,
            size=size,
            cluster=cluster,
            model=model,
            requests=requests,
            workload=workload,
            churn=_draw_elastic_churn(rng, cluster, spares, limits, flavor),
            planner_method=rng.choice(_PLANNER_METHODS),
            scheduler_method=rng.choice(_SCHEDULER_METHODS),
            max_time=limits.max_time,
            residency=ResidencyConfig(warm=warm),
            autoscaler=AutoscalerConfig(
                interval=rng.uniform(0.5, 1.0),
                backlog_high=rng.randint(6, 12),
                high_ticks=rng.randint(1, 2),
                idle_ticks=rng.randint(6, 10),
                cooldown=rng.uniform(3.0, 6.0),
                start_after=rng.uniform(1.0, 3.0),
            ),
            spares=spares,
        )

    if family == TENANT_FAMILY:
        # Tenant rides a drawn base topology with the small model and NO
        # churn or request policy: every request eventually finishes, so
        # per-tenant KV accounting can be checked exactly against pool
        # totals without churn-induced cancellation noise.
        base_family = rng.choice(SCENARIO_FAMILIES)
        count = rng.randint(limits.min_nodes, limits.max_nodes)
        cluster = _BUILDERS[base_family](rng, count)
        cluster.validate()
        model = _small_model(rng)
        tenancy = _draw_tenancy(rng)
        requests, workload = _tenant_requests(rng, tenancy, limits)
        return Scenario(
            family=family,
            seed=seed,
            size=size,
            cluster=cluster,
            model=model,
            requests=requests,
            workload=workload,
            planner_method=rng.choice(_PLANNER_METHODS),
            scheduler_method=rng.choice(_SCHEDULER_METHODS),
            max_time=limits.max_time,
            tenancy=tenancy,
        )

    count = rng.randint(limits.min_nodes, limits.max_nodes)
    cluster = _BUILDERS[family](rng, count)
    cluster.validate()
    model = _pick_model(rng, family, cluster, profiler)

    workload = rng.choice(WORKLOAD_KINDS)
    num_requests = rng.randint(limits.min_requests, limits.max_requests)
    requests = make_workload(
        rng, workload, num_requests, horizon=limits.max_time * 0.5
    )

    churn: list[ClusterEvent] = []
    if rng.random() < limits.churn_probability:
        churn = _draw_churn(rng, cluster, limits)

    return Scenario(
        family=family,
        seed=seed,
        size=size,
        cluster=cluster,
        model=model,
        requests=requests,
        workload=workload,
        churn=churn,
        planner_method=rng.choice(_PLANNER_METHODS),
        scheduler_method=rng.choice(_SCHEDULER_METHODS),
        max_time=limits.max_time,
    )


def scenario_matrix(
    families: tuple[str, ...] = SCENARIO_FAMILIES,
    seeds: range | list[int] = range(5),
    size: str = "smoke",
) -> list[tuple[str, int, str]]:
    """Enumerate sweep addresses: every family crossed with every seed."""
    return [
        (family, seed, size) for family in families for seed in seeds
    ]
