"""Seeded workload synthesis for generated scenarios.

Every workload is a synthetic-Azure length sample (the paper's single
dataset, :mod:`repro.trace.azure`) stamped with one of the arrival
processes of §6.2 — offline, homogeneous Poisson, or the diurnal
non-homogeneous Poisson — plus an ``azure`` replay flavor that keeps the
dataset's full length marginals and diurnal shape. Workloads are pure
functions of the generator handed in, so a scenario's single seed
reproduces its trace exactly.
"""

from __future__ import annotations

import random

from repro.sim.request import Request
from repro.trace.arrival import diurnal_arrivals, offline_arrivals, poisson_arrivals
from repro.trace.azure import AzureTraceConfig, synthesize_azure_trace

#: Arrival flavors a scenario may draw.
WORKLOAD_KINDS = ("offline", "poisson", "diurnal", "azure")


def make_workload(
    rng: random.Random,
    kind: str,
    num_requests: int,
    horizon: float,
) -> list[Request]:
    """Synthesize an arrival-stamped request trace.

    Args:
        rng: The scenario's generator; every draw comes from it.
        kind: One of :data:`WORKLOAD_KINDS`.
        num_requests: Trace size.
        horizon: Target seconds within which the online flavors spread
            their arrivals (roughly half the simulation horizon, so the
            tail can drain).

    Raises:
        ValueError: On an unknown ``kind``.
    """
    if kind not in WORKLOAD_KINDS:
        raise ValueError(
            f"unknown workload kind {kind!r}; choose from {WORKLOAD_KINDS}"
        )
    # The azure flavor replays the dataset shape at a larger length scale;
    # the others trim lengths harder to keep many-seed sweeps fast.
    scale = rng.uniform(0.08, 0.15) if kind == "azure" else rng.uniform(0.02, 0.05)
    config = AzureTraceConfig(
        num_requests=num_requests,
        seed=rng.randrange(2**31),
        scale=scale,
    )
    requests = synthesize_azure_trace(config)
    if kind == "offline":
        return offline_arrivals(requests)
    rate = num_requests / max(horizon, 1e-6)
    if kind == "poisson":
        return poisson_arrivals(requests, rate=rate, rng=rng)
    # diurnal and azure: sinusoidal rate over roughly two cycles.
    return diurnal_arrivals(
        requests,
        mean_rate=rate,
        period=max(horizon / 2.0, 1.0),
        amplitude=rng.uniform(0.2, 0.45),
        rng=rng,
    )
