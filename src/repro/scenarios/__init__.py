"""Seeded scenario generation for the verification matrix.

Every scenario is addressable by ``(family, seed, size)`` — see
:func:`generate_scenario` — and reproduced exactly by
``PYTHONPATH=src python -m repro.testkit <family> <seed>``.
"""

from repro.scenarios.generator import (
    ALL_FAMILIES,
    CHAOS_FAMILY,
    ELASTIC_FAMILY,
    FULL,
    SCENARIO_FAMILIES,
    SMOKE,
    TENANT_FAMILY,
    Scenario,
    ScenarioLimits,
    generate_scenario,
    scenario_matrix,
)
from repro.scenarios.workloads import WORKLOAD_KINDS, make_workload

__all__ = [
    "ALL_FAMILIES",
    "CHAOS_FAMILY",
    "ELASTIC_FAMILY",
    "FULL",
    "SCENARIO_FAMILIES",
    "SMOKE",
    "TENANT_FAMILY",
    "Scenario",
    "ScenarioLimits",
    "WORKLOAD_KINDS",
    "generate_scenario",
    "make_workload",
    "scenario_matrix",
]
