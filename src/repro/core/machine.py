"""Machine provenance stamping for benchmark artifacts.

Every ``BENCH_*.json`` number is only comparable to another run if both
record *where* they ran: the same sweep is 4x faster on an 8-core runner
than on a 1-core container without either result being wrong. The stamp
deliberately stays tiny — CPU model, logical core count, python version,
platform string, and (when a worker pool produced the numbers) the worker
count — so artifacts diff cleanly across machines.
"""

from __future__ import annotations

import os
import platform
import sys

_CPUINFO = "/proc/cpuinfo"


def cpu_model() -> str:
    """Best-effort CPU model string (``/proc/cpuinfo`` on Linux)."""
    try:
        with open(_CPUINFO, encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    # platform.processor() is empty on many Linuxes; fall back down the
    # chain so the stamp never ends up blank.
    return platform.processor() or platform.machine() or "unknown"


def cpu_count() -> int:
    """Logical CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def machine_stamp(workers: int | None = None) -> dict:
    """The provenance dict stamped into every benchmark artifact.

    Args:
        workers: Worker-pool size that produced the numbers; ``None`` for
            single-process benchmarks (recorded as 1 — the honest answer
            for comparing against a parallel run of the same sweep).
    """
    return {
        "cpu_model": cpu_model(),
        "cpu_count": cpu_count(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workers": 1 if workers is None else int(workers),
    }
