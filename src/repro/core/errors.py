"""Exception hierarchy for the Helix reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ClusterError(ReproError):
    """Invalid cluster topology, unknown node, or malformed link."""


class PlacementError(ReproError):
    """A model placement is infeasible or violates placement invariants."""


class SchedulingError(ReproError):
    """A request could not be scheduled onto a valid pipeline."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SolverError(ReproError):
    """The MILP/LP solver failed or returned an unusable solution."""
