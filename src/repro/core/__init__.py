"""Core shared primitives for the Helix reproduction.

This package holds the small set of building blocks used across every other
subpackage: error types, unit conversion helpers, and identifier conventions.
Keeping these in one place avoids circular imports between the cluster,
placement, scheduling, and simulation layers.
"""

from repro.core.errors import (
    ReproError,
    ClusterError,
    PlacementError,
    SchedulingError,
    SimulationError,
    SolverError,
)
from repro.core.machine import cpu_count, cpu_model, machine_stamp
from repro.core.units import (
    GB,
    MB,
    KB,
    GBPS,
    MBPS,
    GBIT,
    MBIT,
    TFLOPS,
    bits_to_bytes,
    bytes_to_gb,
)

__all__ = [
    "ReproError",
    "ClusterError",
    "PlacementError",
    "SchedulingError",
    "SimulationError",
    "SolverError",
    "GB",
    "MB",
    "KB",
    "GBPS",
    "MBPS",
    "GBIT",
    "MBIT",
    "TFLOPS",
    "bits_to_bytes",
    "bytes_to_gb",
    "cpu_count",
    "cpu_model",
    "machine_stamp",
]
