"""The :class:`ModelPlacement` data type, shared by flow, placement, and sim.

A placement maps each used compute node to the contiguous interval of model
layers it holds (paper §4.1: the placement function Ψ returns a continuous
subset of the model). The type lives in ``core`` because both the flow-graph
construction and the placement planners depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import PlacementError


@dataclass(frozen=True)
class StageAssignment:
    """Layers ``[start, end)`` held by one node."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise PlacementError(
                f"invalid layer interval [{self.start}, {self.end})"
            )

    @property
    def num_layers(self) -> int:
        """Number of layers in the interval."""
        return self.end - self.start

    def holds(self, layer: int) -> bool:
        """Whether ``layer`` falls inside the interval."""
        return self.start <= layer < self.end

    def overlaps(self, other: "StageAssignment") -> bool:
        """Whether two intervals share at least one layer."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class ModelPlacement:
    """A full model placement: node id -> layer interval.

    Nodes absent from ``assignments`` hold no layers and take no part in
    serving. The placement must cover every layer of the model at least once
    to be servable; :meth:`validate` checks that plus interval bounds.

    Attributes:
        num_layers: Total layers ``L`` of the served model.
        assignments: Mapping from node id to its layer interval.
    """

    num_layers: int
    assignments: dict[str, StageAssignment] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise PlacementError(f"num_layers must be positive, got {self.num_layers}")

    # ------------------------------------------------------------------
    @classmethod
    def from_intervals(
        cls, num_layers: int, intervals: dict[str, tuple[int, int]]
    ) -> "ModelPlacement":
        """Build from plain ``{node_id: (start, end)}`` tuples."""
        assignments = {
            node_id: StageAssignment(start, end)
            for node_id, (start, end) in intervals.items()
        }
        return cls(num_layers=num_layers, assignments=assignments)

    def interval(self, node_id: str) -> StageAssignment:
        """The interval held by ``node_id``; raises if the node holds none."""
        try:
            return self.assignments[node_id]
        except KeyError:
            raise PlacementError(f"node {node_id!r} holds no layers") from None

    def holds_layers(self, node_id: str) -> bool:
        """Whether the node participates in this placement."""
        return node_id in self.assignments

    @property
    def used_nodes(self) -> list[str]:
        """Ids of nodes holding at least one layer, in insertion order."""
        return list(self.assignments)

    def holders_of(self, layer: int) -> list[str]:
        """All nodes whose interval contains ``layer``."""
        return [
            node_id
            for node_id, stage in self.assignments.items()
            if stage.holds(layer)
        ]

    def first_layer_holders(self) -> list[str]:
        """Nodes holding layer 0 (entry points from the coordinator)."""
        return self.holders_of(0)

    def last_layer_holders(self) -> list[str]:
        """Nodes holding the final layer (exit points to the coordinator)."""
        return self.holders_of(self.num_layers - 1)

    def coverage(self) -> list[int]:
        """Replication count per layer index."""
        counts = [0] * self.num_layers
        for stage in self.assignments.values():
            for layer in range(stage.start, stage.end):
                counts[layer] += 1
        return counts

    def max_pipeline_depth(self) -> int:
        """Upper bound on pipeline stages: distinct interval boundaries."""
        starts = {stage.start for stage in self.assignments.values()}
        return len(starts)

    def validate(self, max_layers_per_node: dict[str, int] | None = None) -> None:
        """Check the placement is servable.

        Args:
            max_layers_per_node: Optional per-node VRAM layer bounds; when
                given, each assignment is checked against its bound.

        Raises:
            PlacementError: If any layer is uncovered, an interval exceeds
                model bounds, or a node exceeds its VRAM bound.
        """
        if not self.assignments:
            raise PlacementError("placement assigns no layers to any node")
        for node_id, stage in self.assignments.items():
            if stage.end > self.num_layers:
                raise PlacementError(
                    f"node {node_id!r} holds layers up to {stage.end} but the "
                    f"model has only {self.num_layers}"
                )
            if max_layers_per_node is not None:
                bound = max_layers_per_node.get(node_id)
                if bound is not None and stage.num_layers > bound:
                    raise PlacementError(
                        f"node {node_id!r} holds {stage.num_layers} layers, "
                        f"exceeding its VRAM bound of {bound}"
                    )
        uncovered = [i for i, c in enumerate(self.coverage()) if c == 0]
        if uncovered:
            raise PlacementError(f"layers not covered by any node: {uncovered}")

    def describe(self) -> str:
        """Multi-line human-readable dump, sorted by start layer."""
        rows = sorted(self.assignments.items(), key=lambda kv: (kv[1].start, kv[0]))
        lines = [
            f"  {node_id}: layers [{stage.start}, {stage.end})"
            for node_id, stage in rows
        ]
        return "\n".join(lines)
