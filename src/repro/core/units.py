"""Unit constants and conversion helpers.

All internal computation uses base SI units: bytes, bytes/second, FLOP/s, and
seconds. The constants below let call sites spell quantities the way the paper
does (``10 * GBIT`` for a 10 Gb/s link, ``80 * GB`` for an H100's VRAM) while
keeping the arithmetic in plain floats.

Note the deliberate distinction between *bytes* units (``GB``, ``MB``, ``KB``)
and *bits* units (``GBIT``, ``MBIT``): network bandwidth in the paper is
always quoted in bits per second (e.g. Table 7's "123 Mbps"), while memory is
quoted in bytes.
"""

# Byte quantities (decimal, matching GPU datasheets and the paper's tables).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Bandwidths expressed in bytes/second.
GBPS = GB  # 1 gigabyte per second
MBPS = MB  # 1 megabyte per second

# Bandwidths expressed in bits/second, converted to bytes/second.
GBIT = GB / 8.0  # 1 gigabit per second == 125 MB/s
MBIT = MB / 8.0  # 1 megabit per second == 125 KB/s

# Compute rates.
TFLOPS = 1e12


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count (or bit rate) to bytes (or bytes/second)."""
    return bits / 8.0


def bytes_to_gb(num_bytes: float) -> float:
    """Convert bytes to decimal gigabytes, for reporting."""
    return num_bytes / GB
