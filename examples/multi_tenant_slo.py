"""Two tenants, one cluster: windowed fairness + SLOs under a flash crowd.

A latency-sensitive "chat" tenant (high priority, tight TTFT target) and
a throughput-oriented "batch" tenant (BATCH SLO class, low priority)
share LLaMA-30B on the Fig. 12 cluster. The planner first arbitrates
cluster throughput across the two tenants (shared base weights counted
once, per-tenant LoRA adapters on top), then the run demonstrates the
serving-side machinery:

1. batch submits steady offline work for the whole run;
2. chat idles along until a *flash crowd* hits at t=12s — arrivals jump
   to ~4x the cluster's sustainable rate for eight seconds;
3. the deficit-aware fair queue keeps batch from being starved during
   the crowd, while a tight admission cap sheds the overflow — evicting
   queued low-priority (batch) work first — so the chat requests that
   ARE admitted still meet their TTFT target.

The chat SLO is a custom class calibrated to this hardware: the Fig. 12
cluster decodes at ~0.6-0.9s per token through its cross-region
pipelines, so the stock INTERACTIVE class (0.25s TBT) is not achievable
on it at any load — the SLO a tenant can buy depends on the deployment.

The output shows the planner's per-tenant throughput split, a
fairness-index timeline (Jain index over the windowed-fairness backlog,
1.0 = perfectly proportional service), each tenant's SLO attainment,
and the shed split by priority class.

Runs end to end in well under a minute:

    python examples/multi_tenant_slo.py
"""

from repro import (
    AdmissionConfig,
    BATCH,
    FairnessConfig,
    HelixMilpPlanner,
    HelixScheduler,
    LLAMA_30B,
    Profiler,
    Request,
    Simulation,
    SLOClass,
    TenancyConfig,
    TenantRegistry,
    TenantSpec,
    aggregate_tenant_metrics,
    small_cluster_fig12,
)

TRACE_SCALE = 0.25
CROWD_START = 12.0
CROWD_END = 20.0
LAST_ARRIVAL = 40.0
HORIZON = 60.0
MIB = 2**20

#: What "interactive" can mean on this hardware (see module docstring).
CHAT_SLO = SLOClass("chat-rt", ttft_target=6.0, tbt_target=1.2, percentile=0.9)


def chat_trace() -> list[Request]:
    """2 req/s baseline, spiking to ~8 req/s during the flash crowd."""
    out = []
    t, i = 0.0, 0
    while t < LAST_ARRIVAL:
        out.append(
            Request(f"chat:{i:04d}", 128, 16, arrival_time=t, tenant_id="chat")
        )
        i += 1
        t += 0.12 if CROWD_START <= t < CROWD_END else 0.5
    return out


def batch_trace() -> list[Request]:
    """Steady 1 req/s of heavier offline work for the whole run."""
    return [
        Request(f"batch:{i:04d}", 256, 48, arrival_time=float(i),
                tenant_id="batch")
        for i in range(int(LAST_ARRIVAL))
    ]


def main() -> None:
    cluster = small_cluster_fig12()
    model = LLAMA_30B
    profiler = Profiler(kv_capacity_scale=TRACE_SCALE)
    print(f"cluster: {cluster.describe()}")

    registry = TenantRegistry([
        TenantSpec("chat", slo=CHAT_SLO, priority=2, rate_share=1.0,
                   adapter_bytes_per_layer=50 * MIB),
        TenantSpec("batch", slo=BATCH, priority=0, rate_share=1.0,
                   adapter_bytes_per_layer=50 * MIB),
    ])

    # 1. Plan once, then arbitrate the planned throughput across tenants.
    planner = HelixMilpPlanner(
        cluster, model, profiler, time_limit=8.0, mip_rel_gap=0.05
    )
    arbitration = planner.plan_tenants(registry, guarantee=0.5, burst=1.5)
    print(
        f"planned max flow: {arbitration.total_throughput:.0f} tokens/s "
        f"(adapters reserve "
        f"{arbitration.adapter_overhead_bytes / MIB:.0f} MiB/layer on top "
        f"of the shared base)"
    )
    for tenant_id, throughput in sorted(
        arbitration.per_tenant_throughput.items()
    ):
        share = arbitration.shares[tenant_id]
        print(
            f"  {tenant_id:5s} entitled {share * 100:.0f}% -> "
            f"{throughput:.0f} tok/s in the arbitrated split"
        )
    result = arbitration.result

    # 2. Serve the flash-crowd trace with fairness + admission on.
    requests = sorted(
        chat_trace() + batch_trace(),
        key=lambda r: (r.arrival_time, r.request_id),
    )
    print(
        f"\ntrace: {sum(r.tenant_id == 'chat' for r in requests)} chat + "
        f"{sum(r.tenant_id == 'batch' for r in requests)} batch requests; "
        f"flash crowd t=[{CROWD_START:.0f}s, {CROWD_END:.0f}s)"
    )
    scheduler = HelixScheduler(
        cluster, model, result.placement, profiler, flow=result.flow,
        expected_output_len=24.0,
    )
    tenancy = TenancyConfig(
        registry,
        fairness=FairnessConfig(mode="W", window=2.0, backlog_windows=6),
        # The cap is deliberately tight: at ~3 chat-sized requests/s of
        # service, every queued request is ~1/3 s of TTFT for whoever is
        # behind it. Shedding the overflow is what keeps admitted chat
        # traffic inside its 6s TTFT target during the crowd.
        admission=AdmissionConfig(max_pending=8),
    )
    sim = Simulation(
        cluster, model, result.placement, scheduler, requests,
        profiler=profiler, max_batch_tokens=2048, max_time=HORIZON,
        seed=0, tenancy=tenancy,
    )
    metrics = sim.run()
    manager = sim.tenancy
    end_time = max(min(sim.now, sim.max_time), sim.warmup + 1e-9)

    # 3. Fairness-index timeline: watch the crowd arrive and fairness hold.
    print("\nfairness index (Jain over the windowed backlog, 1.0 = fair):")
    for when, index in manager.tracker.fairness_timeline(end_time):
        bar = "#" * int(40 * index)
        marker = " <- flash crowd" if CROWD_START <= when < CROWD_END + 2 else ""
        print(f"  {when:5.0f}s {index:5.2f} {bar}{marker}")

    # 4. Per-tenant SLO attainment and the admission-control shed split.
    per_tenant = aggregate_tenant_metrics(
        sim.records, warmup=sim.warmup, end_time=end_time,
        slo_targets={
            spec.tenant_id: (
                spec.slo.ttft_target, spec.slo.tbt_target, spec.slo.percentile
            )
            for spec in registry
        },
    )
    print("\nper-tenant SLO attainment:")
    for tenant_id in sorted(per_tenant):
        print(f"  {per_tenant[tenant_id].summary()}")

    shed = dict(metrics.requests_shed_by_priority)
    print(
        f"\nadmission control: {metrics.requests_shed} shed "
        f"(by priority class: {shed or 'none'})"
    )
    for tenant_id in sorted(per_tenant):
        tm = per_tenant[tenant_id]
        rate = tm.requests_shed / tm.requests_submitted
        print(
            f"  {tenant_id:5s} shed {tm.requests_shed}/"
            f"{tm.requests_submitted} submitted ({rate * 100:.0f}%)"
        )
    print(
        f"starvation events: {len(manager.starvation_events)} "
        f"(deficit selector; a priority-only selector would starve batch)"
    )
    print(f"serving: {metrics.summary()}")


if __name__ == "__main__":
    main()
