"""Quickstart: plan a placement with the MILP, serve a trace, read metrics.

Runs on the Fig. 12 cluster (4 L4 + 6 T4 in one region) with LLaMA-30B and
a small synthetic Azure-like trace, end to end in well under a minute:

    python examples/quickstart.py
"""

from repro import (
    AzureTraceConfig,
    HelixMilpPlanner,
    HelixScheduler,
    LLAMA_30B,
    Profiler,
    Simulation,
    small_cluster_fig12,
    synthesize_azure_trace,
)
from repro.trace import offline_arrivals


def main() -> None:
    cluster = small_cluster_fig12()
    model = LLAMA_30B
    profiler = Profiler()
    print(f"cluster: {cluster.describe()}")
    print(f"model:   {model.name} ({model.num_layers} layers)")

    # 1. Plan the model placement by maximizing the cluster's max flow.
    planner = HelixMilpPlanner(
        cluster, model, profiler, time_limit=20.0, mip_rel_gap=0.02
    )
    result = planner.plan()
    print(f"\nplacement (max flow {result.max_throughput:.0f} tokens/s):")
    print(result.placement.describe())

    # 2. Wire the max-flow solution into the IWRR per-request scheduler.
    scheduler = HelixScheduler(
        cluster, model, result.placement, profiler, flow=result.flow
    )

    # 3. Serve a synthetic Azure-Conversation-like trace, offline setting.
    trace = offline_arrivals(
        synthesize_azure_trace(
            AzureTraceConfig(num_requests=150, seed=0, scale=0.25)
        )
    )
    simulation = Simulation(
        cluster, model, result.placement, scheduler, trace,
        profiler=profiler, max_time=600.0, warmup=10.0,
    )
    metrics = simulation.run()

    print(f"\nserving: {metrics.summary()}")
    print(f"decode throughput: {metrics.decode_throughput:.1f} tokens/s")
    print(f"prompt latency p50/p95: {metrics.prompt_latency.p50:.2f}s / "
          f"{metrics.prompt_latency.p95:.2f}s")
    print(f"decode latency p50: {metrics.decode_latency.p50 * 1000:.0f} ms/token")
    print(f"KV overflows: {metrics.kv_overflow_events} (0 = masking worked)")


if __name__ == "__main__":
    main()
