"""Online churn recovery: fail a planned node mid-run, replan live, recover.

The static pipeline (plan -> schedule -> serve) assumes the cluster it
planned on is the cluster it serves on. This example closes the loop with
the `repro.online` subsystem: LLaMA-30B is planned onto the Fig. 12
cluster, a flood of requests starts draining, and at t=12s the node
carrying the most max-flow is killed. The online controller

1. masks the node, requeues its in-flight requests (their KV is gone),
2. rewrites the flow capacities through the incremental evaluator and
   hot-swaps the degraded flow into the IWRR selectors (when the
   survivors can still cover the model), and
3. runs a warm-started incremental LNS replan on the surviving subcluster
   and hot-swaps the repaired placement.

Runs end to end in a few seconds:

    python examples/online_churn_recovery.py
"""

from repro import (
    AzureTraceConfig,
    HelixMilpPlanner,
    HelixScheduler,
    LLAMA_30B,
    NodeFailure,
    OnlineController,
    Profiler,
    Simulation,
    small_cluster_fig12,
    synthesize_azure_trace,
)
from repro.trace import offline_arrivals
from repro.trace.azure import AZURE_MEAN_OUTPUT

TRACE_SCALE = 0.25
FAIL_AT = 12.0
HORIZON = 36.0


def main() -> None:
    cluster = small_cluster_fig12()
    model = LLAMA_30B
    # KV capacity scales with the trace so per-node request concurrency
    # matches the full-scale system (same convention as benchmarks/).
    profiler = Profiler(kv_capacity_scale=TRACE_SCALE)
    print(f"cluster: {cluster.describe()}")

    # 1. Plan the placement as usual.
    planner = HelixMilpPlanner(
        cluster, model, profiler, time_limit=8.0, mip_rel_gap=0.05
    )
    result = planner.plan()
    print(f"planned max flow: {result.max_throughput:.0f} tokens/s")

    # 2. Pick the victim: the planned node carrying the most flow.
    node_flows = result.flow.node_flows
    victim = max(
        result.placement.used_nodes, key=lambda nid: node_flows.get(nid, 0.0)
    )
    stage = result.placement.interval(victim)
    print(
        f"victim: {victim} (layers [{stage.start}, {stage.end}), "
        f"{node_flows[victim]:.0f} tok/s of flow) fails at t={FAIL_AT:.0f}s"
    )

    # 3. Serve with an online controller watching the churn schedule.
    scheduler = HelixScheduler(
        cluster, model, result.placement, profiler, flow=result.flow,
        expected_output_len=AZURE_MEAN_OUTPUT * TRACE_SCALE,
    )
    controller = OnlineController(
        model,
        events=[NodeFailure(FAIL_AT, victim)],
        profiler=profiler,
        replan_lns_rounds=2,
        replan_time_limit=1.0,
    )
    trace = offline_arrivals(
        synthesize_azure_trace(
            AzureTraceConfig(num_requests=200, seed=0, scale=TRACE_SCALE)
        )
    )
    simulation = Simulation(
        cluster, model, result.placement, scheduler, trace,
        profiler=profiler, max_batch_tokens=2048, max_time=HORIZON,
        seed=0, controller=controller,
    )
    metrics = simulation.run()

    print("\nevent log:")
    for when, description in controller.event_log:
        print(f"  [{when:6.2f}s] {description}")
    for record in controller.replans:
        print(
            f"  [{record.sim_time:6.2f}s] replan {record.status}: "
            f"{record.wall_seconds * 1000:.0f} ms wall, repaired max flow "
            f"{record.throughput:.0f} tok/s, {record.migrated} migrated"
        )

    report = controller.report(simulation, window=3.0)
    print("\nwindowed goodput (tokens/s):")
    peak = max((rate for _, rate in report.timeline), default=1.0)
    for start, rate in report.timeline:
        bar = "#" * int(40 * rate / peak) if peak > 0 else ""
        marker = " <- failure" if start <= FAIL_AT < start + 3.0 else ""
        print(f"  {start:5.0f}s {rate:7.1f} {bar}{marker}")

    print(f"\n{report.summary()}")
    print(f"time to recovery: {report.time_to_recovery:.0f}s")
    print(f"serving: {metrics.summary()}")


if __name__ == "__main__":
    main()
