"""Build your own heterogeneous cluster and serve a model on it.

Shows the full public API surface a downstream user touches: the GPU
catalog, the cluster builder (regions, asymmetric links), the profiler,
MILP planning, and online serving with diurnal arrivals.

    python examples/custom_cluster.py
"""

from repro import (
    AzureTraceConfig,
    Cluster,
    HelixMilpPlanner,
    LLAMA_30B,
    Profiler,
    Simulation,
    make_scheduler,
    synthesize_azure_trace,
)
from repro.cluster import A100_80G, L4, T4, V100
from repro.core.units import GBIT, MBIT
from repro.trace import diurnal_arrivals, rate_for_utilization


def build_cluster() -> Cluster:
    """Two offices: a beefy HQ and a branch full of leftover GPUs."""
    cluster = Cluster(name="two-office")
    cluster.add_node("hq-a100", A100_80G, region="hq")
    cluster.add_node("hq-l4-0", L4, region="hq")
    cluster.add_node("hq-l4-1", L4, region="hq")
    cluster.add_node("branch-v100", V100, region="branch")
    for index in range(3):
        cluster.add_node(f"branch-t4-{index}", T4, region="branch")

    hq = ["hq-a100", "hq-l4-0", "hq-l4-1"]
    branch = ["branch-v100"] + [f"branch-t4-{i}" for i in range(3)]
    cluster.connect_full_mesh(hq, 25 * GBIT, 0.0005, include_coordinator=True)
    cluster.connect_full_mesh(branch, 10 * GBIT, 0.001, include_coordinator=False)
    for a in hq:
        for b in branch:
            cluster.connect(a, b, 200 * MBIT, 0.030)
    for b in branch:
        cluster.connect("coordinator", b, 200 * MBIT, 0.030)
    cluster.validate()
    return cluster


def main() -> None:
    cluster = build_cluster()
    model = LLAMA_30B
    profiler = Profiler(kv_capacity_scale=0.25)
    print(f"cluster: {cluster.describe()}")

    planner = HelixMilpPlanner(
        cluster, model, profiler, time_limit=20.0,
        lns_rounds=4, lns_window=6, lns_time_limit=6.0, mip_rel_gap=0.03,
    )
    result = planner.plan()
    print(f"\nplacement (max flow {result.max_throughput:.0f} tok/s):")
    print(result.placement.describe())

    # Online serving at 40% of the placement's peak, diurnal arrivals.
    # (This topology's WAN hops queue noticeably above ~50% load.)
    base = synthesize_azure_trace(
        AzureTraceConfig(num_requests=150, seed=5, scale=0.25)
    )
    rate = rate_for_utilization(result.max_throughput, base, utilization=0.4)
    trace = diurnal_arrivals(base, mean_rate=rate, seed=6)
    scheduler = make_scheduler("helix", cluster, model, result, profiler)
    metrics = Simulation(
        cluster, model, result.placement, scheduler, trace,
        profiler=profiler, max_time=900.0, warmup=20.0,
    ).run()

    print(f"\nonline serving at {rate:.2f} req/s: {metrics.summary()}")
    print(f"prompt latency p95: {metrics.prompt_latency.p95:.2f}s")


if __name__ == "__main__":
    main()
