"""Geo-distributed serving: Helix vs Swarm across three regions.

Reproduces the paper's motivating scenario (§6.4): the same 24 GPUs as the
single-cluster setup, but split across three regions joined by 100 Mb/s /
50 ms links. Helix's network-aware placement and max-flow scheduling avoid
the slow links; Swarm's even partition keeps crossing them. The script
reports throughput, latency, and the most congested links of each system.

    python examples/geo_distributed_serving.py
"""

from repro import (
    AzureTraceConfig,
    HelixMilpPlanner,
    LLAMA_70B,
    Profiler,
    Simulation,
    SwarmPlanner,
    geo_distributed_24,
    make_scheduler,
    synthesize_azure_trace,
)
from repro.trace import offline_arrivals

TRACE_SCALE = 0.25


def serve(cluster, model, profiler, planner_result, scheduler_name, trace):
    scheduler = make_scheduler(
        scheduler_name, cluster, model, planner_result, profiler
    )
    simulation = Simulation(
        cluster, model, planner_result.placement, scheduler, trace,
        profiler=profiler, max_time=600.0, warmup=20.0,
    )
    metrics = simulation.run()
    return metrics, simulation


def main() -> None:
    cluster = geo_distributed_24()
    model = LLAMA_70B
    # KV capacity scales with the trace scale to keep per-node request
    # concurrency representative of the full-length workload.
    profiler = Profiler(kv_capacity_scale=TRACE_SCALE)
    trace = offline_arrivals(
        synthesize_azure_trace(
            AzureTraceConfig(num_requests=200, seed=1, scale=TRACE_SCALE)
        )
    )
    print(f"cluster: {cluster.describe()} over {len(cluster.regions())} regions")

    helix = HelixMilpPlanner(
        cluster, model, profiler, prune_degree=6, time_limit=20.0,
        lns_rounds=6, lns_window=8, lns_time_limit=8.0, mip_rel_gap=0.03,
    ).plan()
    swarm = SwarmPlanner(cluster, model, profiler).plan()

    for label, planner_result, scheduler_name in (
        ("helix", helix, "helix"),
        ("swarm", swarm, "swarm"),
    ):
        metrics, simulation = serve(
            cluster, model, profiler, planner_result, scheduler_name, trace
        )
        print(f"\n=== {label} ===")
        print(f"placement max flow: {planner_result.max_throughput:.0f} tok/s, "
              f"avg pipeline depth {metrics.avg_pipeline_depth:.1f}")
        print(f"serving: {metrics.summary()}")
        print("most congested links (mean queueing delay):")
        for src, dst, delay in simulation.congestion_report(top=3):
            print(f"  {src} -> {dst}: {delay * 1000:.1f} ms")


if __name__ == "__main__":
    main()
