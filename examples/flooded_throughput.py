"""Flood fig12-small with 10,000 synthetic-Azure requests, end to end.

Plan (Helix MILP) -> simulate (the hop-table engine) -> report. The trace
is a synthetic-Azure offline flood — every request is available at t=0 and
the cluster serves at full KV-bounded concurrency, the ROADMAP's
"heavy traffic from millions of users" regime scaled to one example. On
the overhauled engine the half-million-token serving simulation itself
runs in a few seconds:

    PYTHONPATH=src python examples/flooded_throughput.py
"""

import time

from repro import (
    AzureTraceConfig,
    HelixMilpPlanner,
    HelixScheduler,
    LLAMA_30B,
    Profiler,
    Simulation,
    small_cluster_fig12,
    synthesize_azure_trace,
)
from repro.trace import offline_arrivals

NUM_REQUESTS = 10_000


def main() -> None:
    cluster = small_cluster_fig12()
    model = LLAMA_30B
    # Full-size KV so per-node concurrency matches the unscaled system.
    profiler = Profiler(kv_capacity_scale=1.0)
    print(f"cluster: {cluster.describe()}")
    print(f"model:   {model.name} ({model.num_layers} layers)")

    # 1. Plan the placement by maximizing the cluster's max flow.
    start = time.perf_counter()
    planner = HelixMilpPlanner(
        cluster, model, profiler, time_limit=8.0, mip_rel_gap=0.05
    )
    result = planner.plan()
    print(
        f"\nplanned in {time.perf_counter() - start:.1f}s "
        f"(max flow {result.max_throughput:.0f} tokens/s):"
    )
    print(result.placement.describe())

    # 2. A 10k-request synthetic-Azure flood: all available immediately.
    trace = offline_arrivals(
        synthesize_azure_trace(
            AzureTraceConfig(num_requests=NUM_REQUESTS, seed=0, scale=0.25)
        )
    )
    total_tokens = sum(r.output_len for r in trace)
    print(f"\ntrace: {len(trace):,} requests, {total_tokens:,} output tokens")

    # 3. Serve the flood through the hop-table simulation engine.
    scheduler = HelixScheduler(
        cluster, model, result.placement, profiler, flow=result.flow,
        expected_output_len=total_tokens / len(trace),
    )
    simulation = Simulation(
        cluster, model, result.placement, scheduler, trace,
        profiler=profiler, max_batch_tokens=16384, max_time=1e9, seed=0,
    )
    start = time.perf_counter()
    metrics = simulation.run()
    wall = time.perf_counter() - start

    # 4. Report: serving metrics plus the engine's own telemetry.
    generated = sum(r.tokens_generated for r in simulation.records)
    stats = simulation.engine_stats
    print(f"\nsimulated {simulation.now:,.0f}s of serving in {wall:.1f}s wall")
    print(f"  {generated / wall:,.0f} simulated tokens per wall-second")
    print(f"  {stats['events_popped']:,} events popped "
          f"({stats['events_popped'] / max(1, generated):.2f} per token), "
          f"{stats['grouped_hops']:,} hops coalesced, "
          f"{stats['fast_forwarded_tokens']:,} tokens fast-forwarded")
    print(f"\nserving: {metrics.summary()}")
    print("top congested links:")
    for src, dst, delay in simulation.congestion_report(top=3):
        print(f"  {src} -> {dst}: mean queueing {delay * 1000:.1f} ms")


if __name__ == "__main__":
    main()
