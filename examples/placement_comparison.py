"""Placement deep dive: compare every planner's max-flow throughput.

A fast, simulation-free version of the paper's Fig. 9 study: run each
placement planner on the single 24-node cluster and report the maximum
serving throughput (max flow) of the placement it finds, its pipeline
depth, and per-node layer counts for the winner.

    python examples/placement_comparison.py
"""

from repro import (
    HelixMilpPlanner,
    LLAMA_70B,
    PetalsPlanner,
    Profiler,
    SeparatePipelinesPlanner,
    SwarmPlanner,
    single_cluster_24,
)


def main() -> None:
    cluster = single_cluster_24()
    model = LLAMA_70B
    profiler = Profiler()
    print(f"cluster: {cluster.describe()}")
    print(f"model:   {model.name}\n")

    planners = {
        "swarm": SwarmPlanner(cluster, model, profiler),
        "petals": PetalsPlanner(cluster, model, profiler),
        "separate-pipelines": SeparatePipelinesPlanner(cluster, model, profiler),
        "helix (MILP)": HelixMilpPlanner(
            cluster, model, profiler, prune_degree=6, time_limit=20.0,
            lns_rounds=6, lns_window=8, lns_time_limit=8.0, mip_rel_gap=0.03,
        ),
    }

    results = {}
    for name, planner in planners.items():
        result = planner.plan()
        results[name] = result
        print(
            f"{name:22s} max flow {result.max_throughput:8.1f} tok/s   "
            f"depth<= {result.placement.max_pipeline_depth():2d}   "
            f"planned in {result.solve_time:5.1f}s"
        )

    upper_bound = planners["helix (MILP)"].compute_upper_bound()
    print(f"\ncompute-sum upper bound (§4.5): {upper_bound:.1f} tok/s")
    print(
        "note: separate-pipelines exceeds the half-VRAM rule to serve 70B "
        "replicas at all\n(paper §6.3) — its raw max flow overstates what "
        "its KV-starved nodes sustain\nin simulation; see "
        "benchmarks/bench_fig6_single_cluster.py for the end-to-end story."
    )

    best = max(results.items(), key=lambda kv: kv[1].max_throughput)
    print(f"\nbest placement ({best[0]}):")
    print(best[1].placement.describe())


if __name__ == "__main__":
    main()
