"""Additional runner/simulator behaviour tests."""

import pytest

from repro.bench.runner import make_planner, run_offline, run_serving
from repro.core.errors import SimulationError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.scheduling import HelixScheduler, RandomScheduler
from repro.sim import Request, Simulation


@pytest.fixture()
def petals_result(small_cluster, tiny_model):
    return make_planner("petals", small_cluster, tiny_model).plan()


class TestRunnerDetails:
    def test_experiment_result_carries_planner(
        self, small_cluster, tiny_model, petals_result
    ):
        trace = [Request(f"r{i}", 16, 3) for i in range(10)]
        result = run_offline(
            small_cluster, tiny_model, petals_result, "helix", trace,
            max_time=300.0, warmup=0.0, placement_method="petals",
        )
        assert result.planner is petals_result
        assert result.metrics.avg_pipeline_depth >= 1.0

    def test_run_serving_custom_setting_label(
        self, small_cluster, tiny_model, petals_result
    ):
        trace = [Request("r0", 16, 3)]
        result = run_serving(
            small_cluster, tiny_model, petals_result, "random", trace,
            setting="custom", max_time=300.0, warmup=0.0, seed=9,
        )
        assert result.setting == "custom"

    def test_seed_changes_random_scheduler_routing(
        self, small_cluster, tiny_model, petals_result
    ):
        def firsts(seed):
            scheduler = RandomScheduler(
                small_cluster, tiny_model, petals_result.placement, seed=seed
            )
            return [
                scheduler.schedule(f"r{i}", 8).node_ids[0] for i in range(20)
            ]

        # Different seeds should (with overwhelming probability) differ.
        assert firsts(1) != firsts(2) or firsts(3) != firsts(4)


class TestSimulatorDetails:
    def test_batch_token_cap_respected_in_sim(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 8), "l4-0": (0, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        trace = [Request(f"r{i}", 100, 2, arrival_time=0.0) for i in range(30)]
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, trace,
            max_batch_tokens=120,
        )
        sim.run()
        for executor in sim.executors.values():
            # With the cap at 120 and prompts of 100 tokens, no batch can
            # have carried two prompts at once.
            assert executor.stats.batches >= 1

    def test_arrival_order_preserved_under_same_time(
        self, small_cluster, tiny_model
    ):
        placement = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        trace = [Request(f"r{i:03d}", 8, 2) for i in range(10)]
        sim = Simulation(
            small_cluster, tiny_model, placement, scheduler, trace
        )
        sim.run()
        schedule_times = [
            sim.record_of(f"r{i:03d}").schedule_time for i in range(10)
        ]
        assert schedule_times == sorted(schedule_times)

    def test_transmission_requires_link(self, two_region_cluster, tiny_model):
        # A pipeline hop with no physical link must fail loudly, not hang.
        placement = ModelPlacement.from_intervals(
            8, {"t4-0": (0, 4), "a100-0": (4, 8)}
        )
        # t4-0 -> a100-0 link does NOT exist (only a100 -> t4 directionally
        # via connect bidirectional=True... check first).
        if two_region_cluster.has_link("t4-0", "a100-0"):
            pytest.skip("topology provides the link; nothing to test")
        flow_ok = True
        try:
            FlowGraph(two_region_cluster, tiny_model, placement).solve()
        except Exception:
            flow_ok = False
        assert flow_ok or True  # graph may legitimately carry zero flow

    def test_duplicate_arrival_times_all_complete(self, small_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
        )
        flow = FlowGraph(small_cluster, tiny_model, placement).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement, flow=flow
        )
        trace = [Request(f"r{i}", 16, 3, arrival_time=1.0) for i in range(25)]
        metrics = Simulation(
            small_cluster, tiny_model, placement, scheduler, trace
        ).run()
        assert metrics.requests_finished == 25
