"""The cross-request batch-level engine must match the hop-table engine.

The batch engine (``engine="batch"``) moves hot per-request state into
dense numpy arrays, advances same-channel decode cohorts with vectorized
folds, and macro-steps whole decode rounds through the vectorized
steady-state fast-forward. All of it is specified as *speed only*: these
tests replay scenarios through both engines and require exactly equal
observables, including the full-config families the plain engine matrix
cannot express (detection-mode chaos, elastic residency, tenancy).

``tests/test_sim_equivalence.py`` additionally folds the batch engine
into the classic 24-address legacy/hop/perhop matrix via
``check_sim_engines``.
"""

import pytest

from repro.cluster import A100_40G, Cluster, Profiler
from repro.core.placement_types import ModelPlacement
from repro.core.units import GBIT
from repro.flow.graph import FlowGraph
from repro.models.specs import ModelSpec
from repro.scenarios import CHAOS_FAMILY, ELASTIC_FAMILY, TENANT_FAMILY
from repro.scheduling import HelixScheduler
from repro.sim import Request, Simulation
from repro.sim.request import RequestInterner
from repro.testkit.differential import (
    _compare_observables,
    _engine_observables,
    check_batch_engine,
)

SEEDS = range(3)
FULL_CONFIG_MATRIX = [
    (family, seed)
    for family in (CHAOS_FAMILY, ELASTIC_FAMILY, TENANT_FAMILY)
    for seed in SEEDS
]


@pytest.mark.scenario
@pytest.mark.parametrize(
    "family,seed", FULL_CONFIG_MATRIX,
    ids=[f"{f}-{s}" for f, s in FULL_CONFIG_MATRIX],
)
def test_batch_engine_matches_on_full_config_address(family, seed):
    """Chaos / elastic / tenant addresses: exactly equal observables."""
    violations = check_batch_engine(family, seed, "smoke")
    assert not violations, "\n".join(str(v) for v in violations)


# ----------------------------------------------------------------------
# Scripted single-pipeline scenarios (the fast-forward regime)
# ----------------------------------------------------------------------
def _single_stage_material():
    """One A100 holding every layer: the diurnal bench's pipeline."""
    model = ModelSpec(
        name="batch-tiny-8L", num_layers=8, hidden_size=1024, num_heads=8,
        num_kv_heads=8, intermediate_size=2816,
        nominal_params=8 * (4 * 1024**2 + 3 * 1024 * 2816),
    )
    cluster = Cluster(name="batch-engine-test")
    cluster.add_node("a100-0", A100_40G, region="r0")
    cluster.connect_full_mesh(
        ["a100-0"], 10 * GBIT, 0.001, include_coordinator=True
    )
    cluster.validate()
    placement = ModelPlacement.from_intervals(8, {"a100-0": (0, 8)})
    flow = FlowGraph(cluster, model, placement).solve()
    return cluster, model, placement, flow


def _serve(requests, engine, tenancy=None, events=(), **sim_kwargs):
    cluster, model, placement, flow = _single_stage_material()
    profiler = Profiler()
    scheduler = HelixScheduler(
        cluster, model, placement, profiler, flow=flow,
        expected_output_len=float(requests[0].output_len),
    )
    sim = Simulation(
        cluster, model, placement, scheduler, list(requests),
        profiler=profiler, max_time=1e9, seed=0, engine=engine,
        tenancy=tenancy, **sim_kwargs,
    )
    for when, action in events:
        sim.schedule_event(when, action)
    metrics = sim.run()
    return sim, metrics


def _assert_engines_agree(requests, tenancy=None, events=()):
    hop = _serve(requests, "hop", tenancy=tenancy, events=events)
    batch = _serve(requests, "batch", tenancy=tenancy, events=events)
    violations = _compare_observables(
        "batch-vs-hop",
        _engine_observables(*batch),
        _engine_observables(*hop),
    )
    assert not violations, "\n".join(str(v) for v in violations)
    return hop[0], batch[0]


def test_single_request_trace_macro_steps_almost_everything():
    # Arrival at t=10 rather than t=0: very close to zero the
    # extrapolated round guess can diverge from the replayed chain by an
    # ulp within a few rounds, and the engine (correctly) falls back to
    # scalar stepping rather than commit an inexact prefix.
    requests = [Request("solo", 64, 300, 10.0)]
    _, batch = _assert_engines_agree(requests)
    # One request on an idle pipeline is one long closed window; all but
    # the boundary rounds commit through the vectorized fast-forward.
    assert batch.vec_fast_forwarded_tokens > 250
    assert batch.record_of("solo").tokens_generated == 300


def test_single_request_at_time_zero_still_matches():
    """The ulp-divergent regime: scalar fallback, still bit-identical."""
    requests = [Request("solo", 64, 300, 0.0)]
    _, batch = _assert_engines_agree(requests)
    assert batch.fast_forwarded_tokens == 299


def test_simultaneous_completions_keep_tie_order():
    """Identical flooded requests finish at the same instant.

    Completion events then tie on time and are ordered by heap sequence
    number alone; the batch engine's cohort advancement must allocate
    sequence numbers so ties break exactly as the scalar engine's.
    """
    model = ModelSpec(
        name="batch-twin-8L", num_layers=8, hidden_size=1024, num_heads=8,
        num_kv_heads=8, intermediate_size=2816,
        nominal_params=8 * (4 * 1024**2 + 3 * 1024 * 2816),
    )
    cluster = Cluster(name="batch-twin-test")
    cluster.add_node("a100-0", A100_40G, region="r0")
    cluster.add_node("a100-1", A100_40G, region="r0")
    cluster.connect_full_mesh(
        ["a100-0", "a100-1"], 10 * GBIT, 0.001, include_coordinator=True
    )
    cluster.validate()
    # Two identical single-node pipelines: symmetric request halves run
    # in lockstep on disjoint channels, finishing at the same instants.
    placement = ModelPlacement.from_intervals(
        8, {"a100-0": (0, 8), "a100-1": (0, 8)}
    )
    flow = FlowGraph(cluster, model, placement).solve()
    requests = [Request(f"r{i:02d}", 16, 40, 0.0) for i in range(8)]
    runs = {}
    for engine in ("hop", "batch"):
        scheduler = HelixScheduler(
            cluster, model, placement, flow=flow, expected_output_len=40.0
        )
        sim = Simulation(
            cluster, model, placement, scheduler, list(requests),
            max_time=1e9, seed=0, engine=engine,
        )
        metrics = sim.run()
        runs[engine] = _engine_observables(sim, metrics)
    violations = _compare_observables(
        "batch-vs-hop", runs["batch"], runs["hop"]
    )
    assert not violations, "\n".join(str(v) for v in violations)
    finishes = [row[5] for row in runs["batch"]["records"].values()]
    assert len(set(finishes)) < len(finishes)  # ties actually occurred


def test_mid_macro_step_churn_invalidates_window():
    """A failure lands inside the fast-forward window: cut and retry."""
    requests = [Request("victim", 16, 400, 0.0)]

    def fail(sim):
        sim.fail_node("a100-0")
        sim.schedule_event(
            sim.now + 5.0, lambda s: s.restore_node("a100-0")
        )

    events = [(1.0, fail)]
    hop, batch = _assert_engines_agree(requests, events=events)
    assert batch.vec_fast_forwarded_tokens > 0
    record = batch.record_of("victim")
    assert record.retries == 1
    assert record.tokens_generated == 400


def test_group_fast_forward_covers_concurrent_closed_windows():
    """Multiple live requests, all executors idle: the window still forms."""
    from repro.trace.arrival import diurnal_arrivals

    base = [Request(f"d{i:03d}", 64, 400) for i in range(60)]
    # Offered load ~0.4: arrivals overlap, so the sole-live-request
    # trigger of the hop engine never sees most of these windows.
    trace = diurnal_arrivals(base, 0.4 / 3.16, seed=0)
    hop, batch = _assert_engines_agree(trace)
    assert batch.group_fast_forwards > 0
    assert batch.vec_fast_forwarded_tokens > 10_000
    assert hop.group_fast_forwards == 0  # hop keeps the PR-5 trigger


def test_tenancy_tagged_trace_matches_and_disables_vec_paths():
    from repro.tenancy import (
        FairnessConfig, TenancyConfig, TenantRegistry, TenantSpec,
    )

    def tenancy():
        return TenancyConfig(
            TenantRegistry([
                TenantSpec("alpha", rate_share=2.0),
                TenantSpec("beta", rate_share=1.0),
            ]),
            fairness=FairnessConfig(mode="W", window=1.0),
        )

    requests = [
        Request(
            f"{'alpha' if i % 3 else 'beta'}:{i:02d}", 32, 60,
            arrival_time=i * 0.4,
            tenant_id="alpha" if i % 3 else "beta",
        )
        for i in range(30)
    ]
    hop = _serve(requests, "hop", tenancy=tenancy())
    batch = _serve(requests, "batch", tenancy=tenancy())
    violations = _compare_observables(
        "batch-vs-hop",
        _engine_observables(*batch),
        _engine_observables(*hop),
    )
    assert not violations, "\n".join(str(v) for v in violations)
    assert (
        batch[0].tenancy.tokens_by_tenant == hop[0].tenancy.tokens_by_tenant
    )
    # Per-token tenant accounting is order-sensitive; the batch engine
    # falls back to scalar stepping rather than approximate it.
    assert batch[0].vectorized_tokens == 0
    assert batch[0].vec_fast_forwarded_tokens == 0


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def test_engine_argument_is_validated():
    from repro.core.errors import SimulationError

    cluster, model, placement, flow = _single_stage_material()
    scheduler = HelixScheduler(cluster, model, placement, flow=flow)
    with pytest.raises(SimulationError, match="engine"):
        Simulation(
            cluster, model, placement, scheduler,
            [Request("r", 16, 8)], engine="bogus",
        )


def test_engine_stats_exposes_batch_telemetry():
    sim, _ = _serve([Request("solo", 64, 300, 0.0)], "batch")
    stats = sim.engine_stats
    for key in (
        "events_popped", "grouped_hops", "fast_forwarded_tokens",
        "vectorized_tokens", "vec_fast_forwarded_tokens",
        "group_fast_forwards",
    ):
        assert key in stats
    assert stats["vec_fast_forwarded_tokens"] <= stats["fast_forwarded_tokens"]


def test_request_interner_is_stable_and_dense():
    interner = RequestInterner()
    assert interner.intern("a") == 0
    assert interner.intern("b") == 1
    assert interner.intern("a") == 0  # re-interning returns the old slot
    assert len(interner) == 2
    assert "a" in interner and "c" not in interner
    assert interner.name_of(1) == "b"
    assert interner.index_of("b") == 1
    assert interner.index_of("missing") is None
