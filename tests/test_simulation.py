"""End-to-end simulation tests on small clusters."""

import pytest

from repro.core.errors import SimulationError
from repro.core.placement_types import ModelPlacement
from repro.flow.graph import FlowGraph
from repro.scheduling import HelixScheduler, RandomScheduler, ShortestQueueScheduler
from repro.sim import Request, Simulation


@pytest.fixture()
def placement8():
    return ModelPlacement.from_intervals(
        8, {"a100-0": (0, 4), "t4-1": (0, 4), "l4-0": (4, 8), "t4-0": (4, 8)}
    )


def make_simulation(cluster, model, placement, requests, **kwargs):
    flow = FlowGraph(cluster, model, placement).solve()
    scheduler = HelixScheduler(cluster, model, placement, flow=flow)
    return Simulation(cluster, model, placement, scheduler, requests, **kwargs)


class TestBasicRuns:
    def test_single_request_completes(self, small_cluster, tiny_model, placement8):
        requests = [Request("r0", input_len=32, output_len=5)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        metrics = sim.run()
        record = sim.record_of("r0")
        assert record.finished
        assert record.tokens_generated == 5
        assert len(record.token_times) == 5
        assert metrics.requests_finished == 1

    def test_token_times_strictly_increase(
        self, small_cluster, tiny_model, placement8
    ):
        requests = [Request("r0", 64, 10)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        sim.run()
        times = sim.record_of("r0").token_times
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_all_requests_complete(self, small_cluster, tiny_model, placement8):
        requests = [Request(f"r{i}", 16 + i, 4) for i in range(40)]
        metrics = make_simulation(
            small_cluster, tiny_model, placement8, requests
        ).run()
        assert metrics.requests_finished == 40
        assert metrics.requests_submitted == 40

    def test_prompt_latency_positive(self, small_cluster, tiny_model, placement8):
        requests = [Request("r0", 128, 3, arrival_time=1.0)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        sim.run()
        assert sim.record_of("r0").prompt_latency > 0

    def test_deterministic_across_runs(self, small_cluster, tiny_model, placement8):
        requests = [Request(f"r{i}", 30, 6, arrival_time=i * 0.05) for i in range(20)]
        results = []
        for _ in range(2):
            sim = make_simulation(small_cluster, tiny_model, placement8, requests)
            metrics = sim.run()
            results.append(
                (metrics.decode_throughput, metrics.prompt_latency.mean)
            )
        assert results[0] == results[1]

    def test_empty_trace_rejected(self, small_cluster, tiny_model, placement8):
        flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow
        )
        with pytest.raises(SimulationError, match="empty"):
            Simulation(
                small_cluster, tiny_model, placement8, scheduler, []
            )

    def test_max_time_truncates(self, small_cluster, tiny_model, placement8):
        requests = [Request(f"r{i}", 512, 200) for i in range(50)]
        metrics = make_simulation(
            small_cluster, tiny_model, placement8, requests, max_time=2.0
        ).run()
        assert metrics.requests_finished < 50
        assert metrics.duration <= 2.0 + 1e-9


class TestSchedulingIntegration:
    def test_pending_queue_drains_after_finishes(
        self, small_cluster, tiny_model, placement8
    ):
        flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow,
            expected_output_len=4.0,
            kv_high_water_mark=0.2,  # tight: forces queuing
        )
        requests = [Request(f"r{i}", 512, 4) for i in range(200)]
        sim = Simulation(
            small_cluster, tiny_model, placement8, scheduler, requests,
            max_time=10_000.0,
        )
        metrics = sim.run()
        assert metrics.requests_finished == 200

    def test_kv_masking_prevents_overflow(
        self, small_cluster, tiny_model, placement8
    ):
        flow = FlowGraph(small_cluster, tiny_model, placement8).solve()
        scheduler = HelixScheduler(
            small_cluster, tiny_model, placement8, flow=flow,
            expected_output_len=40.0,
        )
        requests = [Request(f"r{i}", 256, 8) for i in range(300)]
        sim = Simulation(
            small_cluster, tiny_model, placement8, scheduler, requests,
            max_time=20_000.0,
        )
        metrics = sim.run()
        assert metrics.kv_overflow_events == 0

    def test_other_schedulers_complete(self, small_cluster, tiny_model, placement8):
        for scheduler_cls in (RandomScheduler, ShortestQueueScheduler):
            scheduler = scheduler_cls(small_cluster, tiny_model, placement8)
            requests = [Request(f"r{i}", 32, 4) for i in range(30)]
            metrics = Simulation(
                small_cluster, tiny_model, placement8, scheduler, requests
            ).run()
            assert metrics.requests_finished == 30

    def test_kv_pools_empty_after_drain(self, small_cluster, tiny_model, placement8):
        requests = [Request(f"r{i}", 32, 4) for i in range(20)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        sim.run()
        for pool in sim.kv_pools.values():
            assert pool.used_tokens == 0


class TestNetworkEffects:
    def test_slow_link_shows_congestion(self, two_region_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-0": (4, 8), "t4-1": (4, 8)}
        )
        requests = [Request(f"r{i}", 256, 4) for i in range(60)]
        sim = make_simulation(two_region_cluster, tiny_model, placement, requests)
        sim.run()
        report = sim.congestion_report(top=3)
        assert report, "expected at least one used link"
        top_src, top_dst, delay = report[0]
        # The congested links are the slow cross-region hops out of a100-0.
        assert top_src == "a100-0" or top_src == "coordinator"

    def test_latency_adds_to_prompt_latency(self, two_region_cluster, tiny_model):
        placement = ModelPlacement.from_intervals(
            8, {"a100-0": (0, 4), "t4-0": (4, 8), "t4-1": (4, 8)}
        )
        requests = [Request("r0", 16, 2)]
        sim = make_simulation(two_region_cluster, tiny_model, placement, requests)
        sim.run()
        # Path crosses two 50 ms links (a100->t4, t4->coordinator).
        assert sim.record_of("r0").prompt_latency >= 0.1

    def test_utilization_reported(self, small_cluster, tiny_model, placement8):
        requests = [Request(f"r{i}", 64, 8) for i in range(50)]
        sim = make_simulation(small_cluster, tiny_model, placement8, requests)
        metrics = sim.run()
        duration = max(metrics.duration, 1e-9)
        utils = {
            nid: ex.utilization(duration) for nid, ex in sim.executors.items()
        }
        assert all(0.0 <= u <= 1.0 for u in utils.values())
        assert any(u > 0.0 for u in utils.values())
