"""Tests for the ModelPlacement data type."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import PlacementError
from repro.core.placement_types import ModelPlacement, StageAssignment


class TestStageAssignment:
    def test_interval_properties(self):
        stage = StageAssignment(2, 5)
        assert stage.num_layers == 3
        assert stage.holds(2) and stage.holds(4)
        assert not stage.holds(5) and not stage.holds(1)

    def test_invalid_interval_rejected(self):
        with pytest.raises(PlacementError):
            StageAssignment(3, 3)
        with pytest.raises(PlacementError):
            StageAssignment(-1, 2)

    @given(
        a=st.integers(0, 10), b=st.integers(1, 11),
        c=st.integers(0, 10), d=st.integers(1, 11),
    )
    def test_overlap_symmetry(self, a, b, c, d):
        if a >= b or c >= d:
            return
        s1, s2 = StageAssignment(a, b), StageAssignment(c, d)
        assert s1.overlaps(s2) == s2.overlaps(s1)
        # Overlap iff some integer layer is in both.
        expected = len(set(range(a, b)) & set(range(c, d))) > 0
        assert s1.overlaps(s2) == expected


class TestModelPlacement:
    def _placement(self):
        return ModelPlacement.from_intervals(
            8, {"n0": (0, 3), "n1": (3, 6), "n2": (6, 8), "n3": (2, 5)}
        )

    def test_holders_and_entry_exit(self):
        placement = self._placement()
        assert placement.first_layer_holders() == ["n0"]
        assert placement.last_layer_holders() == ["n2"]
        assert set(placement.holders_of(3)) == {"n1", "n3"}

    def test_coverage_counts_replicas(self):
        placement = self._placement()
        assert placement.coverage() == [1, 1, 2, 2, 2, 1, 1, 1]

    def test_validate_ok(self):
        self._placement().validate()

    def test_validate_detects_gap(self):
        placement = ModelPlacement.from_intervals(8, {"n0": (0, 3), "n1": (4, 8)})
        with pytest.raises(PlacementError, match="not covered"):
            placement.validate()

    def test_validate_detects_out_of_bounds(self):
        placement = ModelPlacement.from_intervals(8, {"n0": (0, 9)})
        with pytest.raises(PlacementError, match="only 8"):
            placement.validate()

    def test_validate_enforces_vram_bounds(self):
        placement = self._placement()
        with pytest.raises(PlacementError, match="VRAM bound"):
            placement.validate(max_layers_per_node={"n0": 2})

    def test_validate_empty_placement(self):
        placement = ModelPlacement(num_layers=4)
        with pytest.raises(PlacementError, match="no layers"):
            placement.validate()

    def test_interval_lookup_error(self):
        placement = self._placement()
        with pytest.raises(PlacementError, match="holds no layers"):
            placement.interval("ghost")

    def test_describe_sorted_by_start(self):
        text = self._placement().describe()
        assert text.index("n0") < text.index("n3") < text.index("n1")

    def test_max_pipeline_depth(self):
        assert self._placement().max_pipeline_depth() == 4

    @given(
        intervals=st.dictionaries(
            st.sampled_from([f"n{i}" for i in range(6)]),
            st.tuples(st.integers(0, 7), st.integers(1, 8)).filter(
                lambda t: t[0] < t[1]
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_coverage_matches_holders(self, intervals):
        placement = ModelPlacement.from_intervals(8, intervals)
        coverage = placement.coverage()
        for layer in range(8):
            assert coverage[layer] == len(placement.holders_of(layer))
